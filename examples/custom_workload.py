#!/usr/bin/env python
"""Build a custom workload from the component library and analyze it.

Composes a new application profile (a "document store": heavy scans, a
hot index, pointer-chased overflow chains) from the same components the
built-in suite uses, then answers the questions the paper asks of every
workload: what fraction of its misses is temporally/spatially
predictable (Fig. 6), how repetitive are its sequences (Fig. 7), and how
do the three prefetchers fare on it (Fig. 9).

Usage::

    python examples/custom_workload.py [trace_length]
"""

import sys

from repro import (
    SMSPrefetcher,
    STeMSPrefetcher,
    SimulationDriver,
    SystemConfig,
    TMSPrefetcher,
)
from repro.analysis import joint_coverage_analysis, repetition_analysis
from repro.trace import summarize_trace
from repro.workloads.base import ComposedWorkload
from repro.workloads.components import (
    ChainTraversalComponent,
    HotStructureComponent,
    NoiseComponent,
    ScanComponent,
)


def build_document_store() -> ComposedWorkload:
    base = 1 << 34
    return ComposedWorkload(
        "docstore",
        "custom",
        [
            (ScanComponent("collection-scan", 0x1000, base * 1,
                           setup_seed=101, data_blocks=16), 0.40),
            (ChainTraversalComponent("overflow-chains", 0x2000, base * 2,
                                     setup_seed=102, num_chains=6,
                                     pages_per_chain=120,
                                     layout_mode="private"), 0.20),
            (HotStructureComponent("index-root", 0x3000, base * 3,
                                   setup_seed=103, num_regions=32), 0.15),
            (NoiseComponent("cache-misses", 0x4000, base * 4), 0.25),
        ],
        description="document store: scans + overflow chains + hot index",
    )


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    system = SystemConfig.scaled()
    workload = build_document_store()
    trace = workload.generate(length, seed=7)

    print(f"custom workload '{workload.name}': {workload.description}")
    print(summarize_trace(trace).format())
    print()

    joint = joint_coverage_analysis(trace, system, skip_fraction=0.3)
    print("Fig. 6-style opportunity breakdown:")
    print("  " + joint.format())
    all_misses, triggers = repetition_analysis(trace, system,
                                               max_elements=30_000)
    print("Fig. 7-style repetition:")
    print(f"  all misses: {all_misses.format()}")
    print(f"  triggers:   {triggers.format()}")
    print()

    baseline = SimulationDriver(system, None).run(trace)
    base_misses = max(1, baseline.uncovered)
    print(f"Fig. 9-style comparison ({base_misses} baseline misses):")
    for prefetcher in (TMSPrefetcher(), SMSPrefetcher(), STeMSPrefetcher()):
        result = SimulationDriver(system, prefetcher).run(trace)
        print(f"  {prefetcher.name:<6} coverage="
              f"{result.covered / base_misses:6.1%}  overpred="
              f"{result.overpredictions / base_misses:6.1%}")


if __name__ == "__main__":
    main()
