#!/usr/bin/env python
"""Multiprocessor run: shared buffer pool, write-invalidate coherence.

Four cores execute the same OLTP application (identical buffer-pool
structure — the chains are part of the workload definition) with
different transaction interleavings. Writes by one core invalidate the
others' cached copies and staged SVB blocks, and terminate their spatial
generations — the multiprocessor behaviour §2.4 specifies ("evicted or
invalidated").

Usage::

    python examples/multicore_invalidations.py [cores] [per_core_length]
"""

import sys

from repro import STeMSPrefetcher, SystemConfig, make_workload
from repro.sim.multicore import MulticoreDriver


def main() -> None:
    cores = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000

    print(f"{cores} cores x {length} accesses of db2 (shared buffer pool)")
    traces = [
        make_workload("db2").generate(length, seed=100 + core)
        for core in range(cores)
    ]
    driver = MulticoreDriver(SystemConfig.scaled(), STeMSPrefetcher)
    result = driver.run(traces)

    print(f"aggregate STeMS coverage: {result.coverage:.1%}")
    print(f"coherence invalidations:  {result.invalidations}")
    print(f"  of which killed staged SVB blocks: {result.svb_invalidations}")
    for core, r in enumerate(result.per_core):
        print(f"  core {core}: covered={r.covered} uncovered={r.uncovered} "
              f"overpredicted={r.overpredictions}")


if __name__ == "__main__":
    main()
