#!/usr/bin/env python
"""Quickstart: run STeMS on a synthetic OLTP workload.

Generates a TPC-C-like trace, simulates the scaled memory hierarchy with
the STeMS prefetcher attached, and reports coverage, overpredictions and
the estimated speedup over a stride-prefetched baseline.

The timing runs use the streaming pipeline: the coverage driver walks a
lazy trace source and feeds each access's service classification
straight into the incremental ROB/MLP :class:`TimingModel` — one pass,
no materialized trace, no recorded service list.

Usage::

    python examples/quickstart.py [trace_length]
"""

import sys

from repro import (
    STeMSPrefetcher,
    SimulationDriver,
    StridePrefetcher,
    SystemConfig,
    make_workload,
)
from repro.prefetch.composite import CompositePrefetcher
from repro.sim.timing import TimingModel
from repro.trace import summarize_trace
from repro.workloads.registry import stream_workload


def timed_run(system, prefetcher, source, measure_from):
    """One streaming coverage+timing pass; returns the TimingResult."""
    model = TimingModel(
        system.timing, workload=source.name, measure_from=measure_from
    )
    SimulationDriver(system, prefetcher, service_consumer=model).run(source)
    return model.finalize()


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    system = SystemConfig.scaled()

    print(f"generating db2 (TPC-C) trace, {length} accesses ...")
    trace = make_workload("db2").generate(length, seed=42)
    print(summarize_trace(trace).format())
    print()

    # coverage: STeMS standalone vs the no-prefetch baseline
    baseline = SimulationDriver(system, None).run(trace)
    stems_run = SimulationDriver(system, STeMSPrefetcher()).run(trace)
    base_misses = max(1, baseline.uncovered)
    print(f"off-chip read misses (baseline): {base_misses}")
    print(f"STeMS coverage:                  {stems_run.covered / base_misses:.1%}")
    print(f"STeMS overpredictions:           "
          f"{stems_run.overpredictions / base_misses:.1%}")

    # performance: stride baseline vs stride+STeMS (Fig. 10 methodology),
    # each a single streaming pass over a fresh lazy source
    warm = int(length * 0.4)
    source = stream_workload("db2", length, seed=42)
    stride_t = timed_run(system, StridePrefetcher(), source, warm)
    full_t = timed_run(
        system, CompositePrefetcher(STeMSPrefetcher()), source, warm
    )
    print(f"speedup over stride baseline:    "
          f"{full_t.speedup_over(stride_t) - 1:+.1%}")


if __name__ == "__main__":
    main()
