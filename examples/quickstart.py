#!/usr/bin/env python
"""Quickstart: run STeMS on a synthetic OLTP workload.

Generates a TPC-C-like trace, simulates the scaled memory hierarchy with
the STeMS prefetcher attached, and reports coverage, overpredictions and
the estimated speedup over a stride-prefetched baseline.

Usage::

    python examples/quickstart.py [trace_length]
"""

import sys

from repro import (
    STeMSPrefetcher,
    SimulationDriver,
    StridePrefetcher,
    SystemConfig,
    make_workload,
    simulate_timing,
)
from repro.prefetch.composite import CompositePrefetcher
from repro.trace import summarize_trace


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    system = SystemConfig.scaled()

    print(f"generating db2 (TPC-C) trace, {length} accesses ...")
    trace = make_workload("db2").generate(length, seed=42)
    print(summarize_trace(trace).format())
    print()

    # coverage: STeMS standalone vs the no-prefetch baseline
    baseline = SimulationDriver(system, None).run(trace)
    stems_run = SimulationDriver(system, STeMSPrefetcher()).run(trace)
    base_misses = max(1, baseline.uncovered)
    print(f"off-chip read misses (baseline): {base_misses}")
    print(f"STeMS coverage:                  {stems_run.covered / base_misses:.1%}")
    print(f"STeMS overpredictions:           "
          f"{stems_run.overpredictions / base_misses:.1%}")

    # performance: stride baseline vs stride+STeMS (Fig. 10 methodology)
    warm = int(length * 0.4)
    stride_run = SimulationDriver(
        system, StridePrefetcher(), record_service=True
    ).run(trace)
    stride_t = simulate_timing(trace, stride_run.service, system.timing,
                               measure_from=warm)
    full_run = SimulationDriver(
        system, CompositePrefetcher(STeMSPrefetcher()), record_service=True
    ).run(trace)
    full_t = simulate_timing(trace, full_run.service, system.timing,
                             measure_from=warm)
    print(f"speedup over stride baseline:    "
          f"{full_t.speedup_over(stride_t) - 1:+.1%}")


if __name__ == "__main__":
    main()
