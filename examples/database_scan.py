#!/usr/bin/env python
"""The paper's motivating scenario (Fig. 2): a DSS index scan.

A decision-support query scans database pages that have never been
touched before — every page is a compulsory miss, so temporal streaming
(TMS) has nothing to replay, while the fixed per-page layout makes the
scan ideal for spatial prediction. STeMS covers it with *spatial-only
streams* (§4.2). This script runs all three predictors on the TPC-H Q2
workload and shows exactly that asymmetry, including the STeMS internal
counters that prove spatial-only streams are doing the work.

Usage::

    python examples/database_scan.py [trace_length]
"""

import sys

from repro import (
    SMSPrefetcher,
    STeMSPrefetcher,
    SimulationDriver,
    SystemConfig,
    TMSPrefetcher,
    make_workload,
)


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    system = SystemConfig.scaled()
    trace = make_workload("qry2").generate(length, seed=42)

    baseline = SimulationDriver(system, None).run(trace)
    base_misses = max(1, baseline.uncovered)
    print(f"TPC-H Q2 ({length} accesses): "
          f"{base_misses} baseline off-chip read misses")
    print()
    print(f"{'predictor':<8} {'coverage':>9} {'overpred':>9}")

    stems = STeMSPrefetcher()
    for prefetcher in (TMSPrefetcher(), SMSPrefetcher(), stems):
        result = SimulationDriver(system, prefetcher).run(trace)
        print(f"{prefetcher.name:<8} "
              f"{result.covered / base_misses:>9.1%} "
              f"{result.overpredictions / base_misses:>9.1%}")

    print()
    print("STeMS internals:")
    print(f"  spatial-only streams started: "
          f"{int(stems.stats.get('spatial_only_streams'))}")
    print(f"  reconstructed streams:        "
          f"{int(stems.stats.get('reconstructed_streams'))}")
    print(f"  RMOB appends / filtered:      "
          f"{int(stems.stats.get('rmob_appends'))} / "
          f"{int(stems.stats.get('rmob_filtered'))}")
    print()
    print("expected shape: TMS near zero (compulsory misses), SMS high, "
          "STeMS ~ SMS via spatial-only streams.")


if __name__ == "__main__":
    main()
