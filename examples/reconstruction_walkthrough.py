#!/usr/bin/env python
"""Walk through the paper's Figures 3 and 5: decomposing a miss order
into temporal and spatial components and reconstructing it.

The observed miss order is

    A, A+4, B, A+2, B+6, A-1, C, D, D+1, D+2

which decomposes into the trigger sequence A:0, B:1, C:3, D:0 (address,
delta) and the spatial sequences A: (+4,0)(+2,1)(-1,1), B: (+6,1),
D: (+1,0)(+2,0). This script builds exactly that state in a real PST,
runs the reconstruction engine and shows that the total order reappears.

Usage::

    python examples/reconstruction_walkthrough.py
"""

from repro import DEFAULT_ADDRESS_MAP as AMAP
from repro.common.config import STeMSConfig
from repro.prefetch.sms.generations import SequenceElement
from repro.prefetch.stems.pst import PatternSequenceTable
from repro.prefetch.stems.reconstruction import Reconstructor
from repro.prefetch.tms.cmob import MissEntry


def main() -> None:
    # choose concrete regions/offsets: A at offset 10 so A-1 is in-region
    A = AMAP.block_in_region(10, 10)
    B = AMAP.block_in_region(20, 3)
    C = AMAP.block_in_region(30, 0)
    D = AMAP.block_in_region(40, 5)
    names = {
        A: "A", A + 4: "A+4", A + 2: "A+2", A - 1: "A-1",
        B: "B", B + 6: "B+6", C: "C",
        D: "D", D + 1: "D+1", D + 2: "D+2",
    }

    pst = PatternSequenceTable(STeMSConfig(), AMAP.blocks_per_region)

    def teach(index, pairs):
        pst.train(index, [
            SequenceElement(offset=o, delta=d, offchip=True) for o, d in pairs
        ])

    print("pattern sequence table (index -> (offset, delta) sequence):")
    teach((0x1, 10), [(14, 0), (12, 1), (9, 1)])   # A: +4, +2, -1
    teach((0x2, 3), [(9, 1)])                      # B: +6
    teach((0x4, 5), [(6, 0), (7, 0)])              # D: +1, +2
    print("  PC1: (+4,0) (+2,1) (-1,1)")
    print("  PC2: (+6,1)")
    print("  PC4: (+1,0) (+2,0)")
    print()

    print("region miss order buffer (address, PC, delta):")
    entries = [
        MissEntry(block=A, pc=0x1, delta=0),
        MissEntry(block=B, pc=0x2, delta=1),
        MissEntry(block=C, pc=0x3, delta=3),
        MissEntry(block=D, pc=0x4, delta=0),
    ]
    for entry in entries:
        print(f"  {names[entry.block]:<4} PC{entry.pc:x}  delta={entry.delta}")
    print()

    recon = Reconstructor(pst, AMAP)
    result = recon.reconstruct(entries, include_first=True)
    print("reconstructed total predicted miss order:")
    print("  " + " ".join(names[b] for b in result.blocks))
    print()
    print(f"placements: {result.placed_original} original, "
          f"{result.placed_adjacent} adjacent, {result.dropped} dropped")

    expected = [A, A + 4, B, A + 2, B + 6, A - 1, C, D, D + 1, D + 2]
    assert result.blocks == expected, "reconstruction must match Fig. 3"
    print("matches the paper's observed miss order - reconstruction works.")


if __name__ == "__main__":
    main()
