#!/usr/bin/env python
"""Compare all predictors (stride, TMS, SMS, naive hybrid, STeMS) on any
workload of the suite: coverage, overpredictions, accuracy and speedup.

Usage::

    python examples/prefetcher_shootout.py [workload] [trace_length]
    python examples/prefetcher_shootout.py em3d 150000
"""

import sys

from repro import (
    NaiveHybridPrefetcher,
    SMSPrefetcher,
    STeMSPrefetcher,
    SimulationDriver,
    StridePrefetcher,
    SystemConfig,
    TMSPrefetcher,
    WORKLOAD_NAMES,
    make_workload,
    simulate_timing,
)
from repro.prefetch.composite import CompositePrefetcher


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "apache"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 120_000
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"choose from {WORKLOAD_NAMES}")

    system = SystemConfig.scaled()
    trace = make_workload(workload).generate(length, seed=42)
    warm = int(length * 0.4)

    baseline = SimulationDriver(system, None).run(trace)
    base_misses = max(1, baseline.uncovered)
    stride_run = SimulationDriver(
        system, StridePrefetcher(), record_service=True
    ).run(trace)
    stride_timing = simulate_timing(
        trace, stride_run.service, system.timing, measure_from=warm
    )

    print(f"workload {workload}: {base_misses} baseline off-chip read misses")
    print(f"{'predictor':<8} {'coverage':>9} {'overpred':>9} "
          f"{'accuracy':>9} {'speedup':>9}")
    print(f"{'stride':<8} {stride_run.covered / base_misses:>9.1%} "
          f"{stride_run.overpredictions / base_misses:>9.1%} "
          f"{stride_run.accuracy:>9.1%} {'+0.0%':>9}")

    factories = {
        "tms": TMSPrefetcher,
        "sms": SMSPrefetcher,
        "hybrid": NaiveHybridPrefetcher,
        "stems": STeMSPrefetcher,
    }
    for name, factory in factories.items():
        coverage_run = SimulationDriver(system, factory()).run(trace)
        timing_run = SimulationDriver(
            system, CompositePrefetcher(factory()), record_service=True
        ).run(trace)
        timing = simulate_timing(
            trace, timing_run.service, system.timing, measure_from=warm
        )
        print(f"{name:<8} {coverage_run.covered / base_misses:>9.1%} "
              f"{coverage_run.overpredictions / base_misses:>9.1%} "
              f"{coverage_run.accuracy:>9.1%} "
              f"{timing.speedup_over(stride_timing) - 1:>+9.1%}")


if __name__ == "__main__":
    main()
