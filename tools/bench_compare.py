#!/usr/bin/env python
"""Perf-trajectory comparator: fail CI on a large throughput regression.

Each perf-touching PR's CI run emits a ``BENCH_<pr>.json`` record
(``benchmarks/faults_smoke.py --bench-out``); the previous PR's record
is committed at the repo root. This script diffs the two and fails when
any job kind's replay throughput (``accesses_per_second``) dropped by
more than the threshold (default 30%) — machine noise on shared CI
runners is real, so the gate is deliberately loose; it catches
cliff-edge regressions, not percentage points. Wall-time and recovery
counters are printed for context but never gate.

A perf-optimisation PR can additionally *require* an improvement:
``--require-speedup KIND:FACTOR`` (repeatable) fails unless the current
record's ``KIND`` throughput is at least ``FACTOR`` times the baseline's
— the positive gate that keeps a claimed speedup from silently eroding.

Usage::

    python tools/bench_compare.py --current BENCH_7.json --baseline BENCH_6.json
    python tools/bench_compare.py --current BENCH_7.json --baseline BENCH_6.json --threshold 0.5
    python tools/bench_compare.py --current BENCH_8.json --baseline BENCH_7.json --require-speedup coverage:1.5

Exit code: ``0`` within threshold (or nothing comparable), ``1`` on a
regression beyond it or an unmet required speedup, ``2`` on unusable
inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_record(path: Path) -> dict:
    try:
        record = json.loads(path.read_text())
    except OSError as error:
        raise SystemExit(f"bench_compare: cannot read {path}: {error}")
    except ValueError as error:
        raise SystemExit(f"bench_compare: {path} is not JSON: {error}")
    if not isinstance(record, dict) or "kinds" not in record:
        raise SystemExit(
            f"bench_compare: {path} is not a faults_smoke bench record"
        )
    return record


def compare(baseline: dict, current: dict,
            threshold: float) -> "tuple[list[str], list[str]]":
    """Returns ``(report_lines, regression_lines)``."""
    lines = []
    regressions = []
    base_kinds = baseline.get("kinds", {})
    cur_kinds = current.get("kinds", {})
    for kind in sorted(base_kinds):
        base = base_kinds[kind].get("accesses_per_second")
        cur = cur_kinds.get(kind, {}).get("accesses_per_second")
        if not base or not cur:
            regressions.append(
                f"{kind}: missing from the current record"
                if cur is None else f"{kind}: unusable throughput numbers"
            )
            continue
        change = (cur - base) / base
        line = (
            f"{kind:<12} {base:>12.1f} → {cur:>12.1f} acc/s "
            f"({change:+.1%})"
        )
        if change < -threshold:
            regressions.append(
                f"{kind}: throughput fell {-change:.1%} "
                f"(threshold {threshold:.0%})"
            )
            line += "  REGRESSION"
        lines.append(line)
    for kind in sorted(set(cur_kinds) - set(base_kinds)):
        cur = cur_kinds[kind].get("accesses_per_second")
        lines.append(f"{kind:<12} {'(new)':>12} → {cur:>12.1f} acc/s")
    base_wall = baseline.get("clean_wall_seconds")
    cur_wall = current.get("clean_wall_seconds")
    if base_wall and cur_wall:
        lines.append(
            f"{'clean wall':<12} {base_wall:>11.1f}s → {cur_wall:>11.1f}s "
            "(informational)"
        )
    return lines, regressions


def parse_speedup_spec(spec: str) -> "tuple[str, float]":
    """``KIND:FACTOR`` → ``(kind, factor)``; raises ValueError when malformed."""
    kind, sep, factor_text = spec.partition(":")
    if not sep or not kind:
        raise ValueError(f"expected KIND:FACTOR, got {spec!r}")
    factor = float(factor_text)  # ValueError propagates with the bad text
    if factor <= 0:
        raise ValueError(f"speedup factor must be positive, got {factor}")
    return kind, factor


def check_speedups(baseline: dict, current: dict,
                   specs: "list[tuple[str, float]]",
                   ) -> "tuple[list[str], list[str]]":
    """Returns ``(report_lines, failure_lines)`` for required speedups."""
    lines = []
    failures = []
    base_kinds = baseline.get("kinds", {})
    cur_kinds = current.get("kinds", {})
    for kind, factor in specs:
        base = base_kinds.get(kind, {}).get("accesses_per_second")
        cur = cur_kinds.get(kind, {}).get("accesses_per_second")
        if not base or not cur:
            failures.append(
                f"{kind}: cannot verify required {factor:g}x speedup "
                "(missing throughput numbers)"
            )
            continue
        achieved = cur / base
        line = (
            f"{kind:<12} required {factor:g}x, achieved {achieved:.2f}x "
            f"({base:.1f} → {cur:.1f} acc/s)"
        )
        if achieved < factor:
            failures.append(
                f"{kind}: required {factor:g}x speedup, "
                f"achieved only {achieved:.2f}x"
            )
            line += "  UNMET"
        lines.append(line)
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, metavar="BENCH_N.json",
                        help="this PR's bench record")
    parser.add_argument("--baseline", required=True, metavar="BENCH_M.json",
                        help="the previous committed bench record")
    parser.add_argument(
        "--threshold", type=float, default=0.30, metavar="FRACTION",
        help="maximum tolerated per-kind throughput drop "
        "(default: 0.30 = 30%%)",
    )
    parser.add_argument(
        "--require-speedup", action="append", default=[],
        metavar="KIND:FACTOR",
        help="fail unless KIND throughput improved by at least FACTOR "
        "(e.g. coverage:1.5); repeatable",
    )
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be a fraction in (0, 1)")
    try:
        speedup_specs = [
            parse_speedup_spec(spec) for spec in args.require_speedup
        ]
    except ValueError as error:
        parser.error(f"--require-speedup: {error}")

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        # the first PR of a new bench family has no baseline to honor —
        # unless this PR claims a speedup, which needs a baseline to
        # be measured against
        if speedup_specs:
            print(
                f"bench_compare: no baseline at {baseline_path} to verify "
                "--require-speedup against", file=sys.stderr,
            )
            return 2
        print(f"bench_compare: no baseline at {baseline_path}; "
              "nothing to compare (pass)")
        return 0
    baseline = load_record(baseline_path)
    current = load_record(Path(args.current))
    lines, regressions = compare(baseline, current, args.threshold)
    speedup_lines, unmet = check_speedups(baseline, current, speedup_specs)
    tag_base = baseline.get("pr", "?")
    tag_cur = current.get("pr", "?")
    print(f"bench_compare: PR {tag_base} baseline vs PR {tag_cur} current")
    for line in lines:
        print(f"  {line}")
    for line in speedup_lines:
        print(f"  {line}")
    if regressions or unmet:
        for failure in regressions + unmet:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: all kinds within {args.threshold:.0%} of the baseline"
          + ("; required speedups met" if speedup_specs else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
