#!/usr/bin/env python
"""Doc-sanity check: documentation code must actually run.

Two guarantees, enforced in CI and by ``tests/test_docs.py``:

1. every fenced ``python`` code block in ``README.md`` and ``docs/*.md``
   executes cleanly (fresh interpreter per block, ``src/`` on the path);
2. every example and source module byte-compiles
   (``python -m compileall``).

Console blocks (``$ ...``) are not executed — they document CLI usage —
but doc drift there is caught separately: every ``--flag`` mentioned in
a console block must exist in the experiments CLI parser.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

FENCE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)


def doc_files() -> list:
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def python_blocks(path: Path) -> list:
    return [
        body
        for language, body in FENCE.findall(path.read_text())
        if language == "python"
    ]


def console_flags(path: Path) -> set:
    """CLI long flags referenced by console/shell blocks in ``path``."""
    flags = set()
    for language, body in FENCE.findall(path.read_text()):
        if language not in ("console", "sh", "bash", "shell"):
            continue
        for line in body.splitlines():
            if "repro.experiments" not in line and "repro-experiments" not in line:
                continue
            flags.update(re.findall(r"(--[a-z][a-z-]*)", line))
    return flags


def run_block(source: str, label: str) -> bool:
    result = subprocess.run(
        [sys.executable, "-c", source],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        cwd=ROOT,
    )
    if result.returncode != 0:
        print(f"FAIL {label}:\n{result.stderr}", file=sys.stderr)
        return False
    print(f"ok   {label}")
    return True


def known_cli_flags() -> set:
    sys.path.insert(0, str(SRC))
    from repro.experiments.runner import build_parser

    flags = set()
    for action in build_parser()._actions:
        flags.update(o for o in action.option_strings if o.startswith("--"))
    return flags


def main() -> int:
    ok = True

    # 1. fenced python blocks execute
    for path in doc_files():
        for i, block in enumerate(python_blocks(path), 1):
            ok &= run_block(block, f"{path.relative_to(ROOT)} python block {i}")

    # 2. examples and sources byte-compile
    for target in ("examples", "src"):
        result = subprocess.run(
            [sys.executable, "-m", "compileall", "-q", str(ROOT / target)],
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            print(f"FAIL compileall {target}:\n{result.stderr}", file=sys.stderr)
            ok = False
        else:
            print(f"ok   compileall {target}")

    # 3. documented CLI flags exist
    known = known_cli_flags()
    for path in doc_files():
        unknown = console_flags(path) - known
        if unknown:
            print(
                f"FAIL {path.relative_to(ROOT)}: console blocks reference "
                f"unknown experiment CLI flags: {sorted(unknown)}",
                file=sys.stderr,
            )
            ok = False
        else:
            print(f"ok   CLI flags in {path.relative_to(ROOT)}")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
