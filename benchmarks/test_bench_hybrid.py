"""Benchmark: §5.5 — naive TMS||SMS hybrid vs STeMS overpredictions."""

from repro.experiments import hybrid


def test_hybrid(benchmark, quick_config, engine):
    rows = benchmark.pedantic(hybrid.run, args=(quick_config,),
                              kwargs={"engine": engine},
                              rounds=1, iterations=1)
    print()
    print(hybrid.format_table(rows))
    assert rows
