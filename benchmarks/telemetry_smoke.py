#!/usr/bin/env python
"""Telemetry smoke check: ``basic`` mode is ≤2% overhead and bit-exact.

Runs the reference two-figure sweep (fig9 coverage + fig10 timing) over
one warm trace store under ``REPRO_TELEMETRY=off`` and ``=basic`` and
asserts:

* the exported rows are **byte-equal** (telemetry observes the run, it
  never participates in it);
* the ``basic``-mode CPU time is within ``--threshold`` (2%) of the
  ``off``-mode CPU time — the zero-cost-when-off design means the
  instrumented hot paths pay one ``None`` check when off, and at
  ``basic`` only a ``perf_counter()`` pair per chunk.

The gate compares **best-of-N process time**, not wall medians: on a
shared CI box, wall (and even per-run CPU) time swings ±10% with
scheduler and frequency noise, which would drown a 2% effect.  The
minimum of many alternating runs converges on the true compute cost of
each mode; rounds alternate off/basic so drift hits both equally.

``--bench-out BENCH_<pr>.json`` augments the perf-trajectory record the
earlier smoke benchmarks wrote (creating a minimal record when run
standalone) with a ``telemetry`` section carrying both medians and the
measured overhead.

Used by CI; also runnable by hand::

    python benchmarks/telemetry_smoke.py
    python benchmarks/telemetry_smoke.py --bench-out BENCH_10.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.engine import Engine, JobGraph  # noqa: E402
from repro.experiments import fig9, fig10  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.sim.export import write_json  # noqa: E402
from repro.telemetry import ENV_VAR, MODE_BASIC, MODE_OFF  # noqa: E402

from faults_smoke import pr_number_from_bench_out  # noqa: E402

FIGURES = (("fig9", fig9), ("fig10", fig10))


def declare(config: ExperimentConfig) -> "tuple[JobGraph, dict]":
    graph = JobGraph()
    plans = {name: module.declare(config, graph)
             for name, module in FIGURES}
    return graph, plans


def run_sweep(config: ExperimentConfig, store_dir: str,
              mode: str) -> "dict[str, bytes]":
    """One serial warm sweep under ``mode``; per-figure export bytes."""
    os.environ[ENV_VAR] = mode
    graph, plans = declare(config)
    engine = Engine(jobs=1, trace_store=store_dir)
    results = engine.run(graph)
    exports = {}
    for name, module in FIGURES:
        rows = module.export_rows(module.collect(config, plans[name], results))
        path = Path(store_dir) / f"{name}-{mode}.json"
        write_json(rows, path)
        exports[name] = path.read_bytes()
        path.unlink()
    return exports


def time_sweeps(config: ExperimentConfig, store_dir: str,
                repeat: int) -> "tuple[float, float, int, int]":
    """Alternating off/basic warm-sweep CPU timings; best-of per mode.

    Serial (``jobs=1``) on purpose: the overhead being measured lives
    in the in-process hot path (phase timers, span bookkeeping), and
    pool scheduling noise at ``jobs>1`` would bury a 2% effect.
    """
    cpu = {MODE_OFF: [], MODE_BASIC: []}
    n_jobs = accesses = 0
    for _ in range(repeat):
        for mode in (MODE_OFF, MODE_BASIC):
            os.environ[ENV_VAR] = mode
            graph, _ = declare(config)
            n_jobs = sum(1 for _ in graph)
            accesses = sum(job.length for job in graph)
            engine = Engine(jobs=1, trace_store=store_dir)
            started = time.process_time()
            engine.run(graph)
            cpu[mode].append(time.process_time() - started)
    return (min(cpu[MODE_OFF]), min(cpu[MODE_BASIC]), n_jobs, accesses)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=10_000,
                        help="trace length per workload (default: 10k)")
    parser.add_argument("--workloads", nargs="+", default=["db2", "qry2"],
                        help="workload subset (default: db2 qry2)")
    parser.add_argument("--repeat", type=int, default=14,
                        help="timing rounds; each round times both modes "
                        "and the per-mode minima are compared "
                        "(default: 14)")
    parser.add_argument("--threshold", type=float, default=0.02,
                        help="maximum tolerated basic-vs-off overhead "
                        "as a fraction (default: 0.02 = 2%%)")
    parser.add_argument("--bench-out", default=None, metavar="PATH",
                        help="BENCH_<pr>.json record to augment with the "
                        "telemetry section (created if absent)")
    args = parser.parse_args(argv)
    if args.bench_out and pr_number_from_bench_out(args.bench_out) is None:
        parser.error(
            f"--bench-out {args.bench_out!r} must be named BENCH_<pr>.json"
        )

    config = ExperimentConfig.small()
    config.trace_length = args.length
    config.workloads = list(args.workloads)

    ambient = os.environ.get(ENV_VAR)
    failures = []
    try:
        with tempfile.TemporaryDirectory(
            prefix="repro-telemetry-"
        ) as store_dir:
            # warm the store (recording pass; mode irrelevant to state)
            run_sweep(config, store_dir, MODE_OFF)

            exports_off = run_sweep(config, store_dir, MODE_OFF)
            exports_basic = run_sweep(config, store_dir, MODE_BASIC)
            for name, _ in FIGURES:
                if exports_basic[name] != exports_off[name]:
                    failures.append(
                        f"{name}: telemetry=basic export differs from "
                        "telemetry=off — instrumentation changed results"
                    )

            cpu_off, cpu_basic, n_jobs, accesses = time_sweeps(
                config, store_dir, args.repeat
            )
    finally:
        if ambient is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = ambient

    overhead = (cpu_basic - cpu_off) / cpu_off
    print(f"[telemetry] cpu best-of-{args.repeat}: off {cpu_off:.3f}s, "
          f"basic {cpu_basic:.3f}s "
          f"({overhead:+.1%} overhead, gate ≤{args.threshold:.0%})")
    if overhead > args.threshold:
        failures.append(
            f"basic-mode overhead {overhead:.1%} exceeds the "
            f"{args.threshold:.0%} gate"
        )

    if args.bench_out:
        path = Path(args.bench_out)
        if path.is_file():
            record = json.loads(path.read_text())
        else:
            record = {
                "bench": "telemetry_smoke",
                "pr": pr_number_from_bench_out(args.bench_out),
                "kinds": {},
            }
        record["telemetry"] = {
            "jobs": n_jobs,
            "accesses": accesses,
            "workloads": config.workloads,
            "trace_length": config.trace_length,
            "repeat": args.repeat,
            "statistic": "best-of process_time",
            "cpu_seconds_off": round(cpu_off, 3),
            "cpu_seconds_basic": round(cpu_basic, 3),
            "overhead": round(overhead, 4),
            "threshold": args.threshold,
        }
        path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"[bench record augmented at {path}]", file=sys.stderr)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: telemetry=basic bit-identical to off over {n_jobs} jobs; "
          f"{overhead:+.1%} overhead within the {args.threshold:.0%} gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
