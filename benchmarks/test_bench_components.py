"""Micro-benchmarks of the core mechanisms (throughput, not figures)."""

import random

from repro.analysis.sequitur import Sequitur
from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.common.config import STeMSConfig, SystemConfig
from repro.memsys.hierarchy import Hierarchy
from repro.prefetch.sms.generations import SequenceElement
from repro.prefetch.stems.pst import PatternSequenceTable
from repro.prefetch.stems.reconstruction import Reconstructor
from repro.prefetch.tms.cmob import MissEntry
from repro.workloads.registry import make_workload

AMAP = DEFAULT_ADDRESS_MAP


def test_hierarchy_throughput(benchmark):
    rng = random.Random(5)
    blocks = [rng.randrange(1 << 20) for _ in range(50_000)]

    def run():
        h = Hierarchy(SystemConfig.scaled())
        for block in blocks:
            h.access(block)
        return h

    h = benchmark.pedantic(run, rounds=1, iterations=1)
    assert h.stats.get("accesses") == 50_000


def test_sequitur_throughput(benchmark):
    rng = random.Random(5)
    unit = [rng.randrange(4096) for _ in range(500)]
    sequence = unit * 20

    def run():
        return Sequitur.build(sequence)

    grammar = benchmark.pedantic(run, rounds=1, iterations=1)
    assert grammar.expand() == sequence


def test_reconstruction_throughput(benchmark):
    config = STeMSConfig()
    pst = PatternSequenceTable(config, AMAP.blocks_per_region)
    rng = random.Random(7)
    for pc in range(64):
        elements = [
            SequenceElement(offset=o, delta=rng.randrange(3), offchip=True)
            for o in rng.sample(range(1, 32), 6)
        ]
        pst.train((pc, 0), elements)
    entries = [
        MissEntry(block=AMAP.block_in_region(r, 0), pc=r % 64, delta=1)
        for r in range(32)
    ]
    recon = Reconstructor(pst, AMAP)

    def run():
        return [recon.reconstruct(entries) for _ in range(200)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[0].blocks


def test_trace_generation_throughput(benchmark):
    def run():
        return make_workload("db2").generate(30_000, seed=1)

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(trace) >= 30_000
