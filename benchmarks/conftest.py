"""Shared fixtures for the benchmark harness.

Every paper table/figure has one benchmark that regenerates it on the
small preset and prints the resulting rows, so ``pytest benchmarks/
--benchmark-only`` doubles as a quick reproduction run. Ablation benches
cover the design choices DESIGN.md calls out (placement window, counter
vs bit-vector history, stream lookahead).

Figure benchmarks run through a shared serial :class:`Engine` (no disk
cache, so every round re-simulates and timings stay honest); traces are
reused across benchmarks via the engine layer's per-process memo exactly
as they are in a real ``all`` invocation.
"""

from __future__ import annotations

import pytest

from repro.engine import Engine
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    cfg = ExperimentConfig.small()
    cfg.workloads = ["apache", "db2", "qry2", "em3d"]
    # em3d needs two full iterations (~88k accesses) to train temporally
    cfg.trace_length = 100_000
    return cfg


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    cfg = ExperimentConfig.small()
    cfg.workloads = ["db2", "qry2"]
    return cfg


@pytest.fixture(scope="session")
def engine() -> Engine:
    """Serial, uncached engine shared by the figure benchmarks."""
    return Engine(jobs=1, cache_dir=None)
