"""Benchmark: Figure 10 — speedup over the stride baseline."""

from repro.experiments import fig10


def test_fig10(benchmark, config, engine):
    results = benchmark.pedantic(
        fig10.run, args=(config,), kwargs={"engine": engine}, rounds=1, iterations=1
    )
    print()
    print(fig10.format_table(results))
    for rows in results.values():
        for row in rows:
            assert row.speedup > 0
