"""Ablation benchmarks for the design choices DESIGN.md calls out:

* reconstruction placement window (0 / 2 / 4) — §4.3 reports that +-2
  placement lets 99% of addresses be placed;
* 2-bit counter vs bit-vector spatial history — §4.3 reports counters
  halve overpredictions at equal coverage;
* stream lookahead (4 / 8 / 12) — §4.3 uses 8 commercial, 12 scientific.
"""

import pytest

from repro.common.config import SMSConfig, STeMSConfig
from repro.prefetch.sms.sms import SMSPrefetcher
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.sim.driver import SimulationDriver


@pytest.mark.parametrize("window", [0, 2, 4])
def test_placement_window_ablation(benchmark, quick_config, window):
    trace = quick_config.trace("db2")

    def run():
        pf = STeMSPrefetcher(STeMSConfig(placement_window=window))
        return SimulationDriver(quick_config.system, pf).run(trace), pf

    result, pf = benchmark.pedantic(run, rounds=1, iterations=1)
    placed = pf.stats.get("recon_placed_original") + pf.stats.get(
        "recon_placed_adjacent"
    )
    total = placed + pf.stats.get("recon_dropped")
    print(f"\nwindow={window}: coverage={result.coverage:.1%} "
          f"placed={placed / max(1, total):.1%}")
    assert result.covered > 0


@pytest.mark.parametrize("use_counters", [False, True])
def test_counter_vs_bitvector_ablation(benchmark, quick_config, use_counters):
    trace = quick_config.trace("db2")

    def run():
        pf = SMSPrefetcher(SMSConfig(use_counters=use_counters))
        return SimulationDriver(quick_config.system, pf).run(trace)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    label = "2-bit counters" if use_counters else "bit vectors"
    print(f"\n{label}: coverage={result.coverage:.1%} "
          f"overpredictions={result.overprediction_rate:.1%}")
    assert result.covered > 0


@pytest.mark.parametrize("lookahead", [4, 8, 12])
def test_lookahead_ablation(benchmark, quick_config, lookahead):
    trace = quick_config.trace("db2")

    def run():
        pf = STeMSPrefetcher(STeMSConfig(lookahead=lookahead))
        return SimulationDriver(quick_config.system, pf).run(trace)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nlookahead={lookahead}: coverage={result.coverage:.1%} "
          f"overpredictions={result.overprediction_rate:.1%}")
    assert result.covered > 0
