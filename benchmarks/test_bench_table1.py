"""Benchmark: Table 1 rendering (configuration + workload construction)."""

from repro.experiments import table1


def test_table1(benchmark, config):
    lines = benchmark(table1.run, config)
    print()
    print(table1.format_table(lines))
    assert any("L1d" in line for line in lines)
