"""Benchmark: Figure 8 — correlation distance within generations."""

from repro.experiments import fig8


def test_fig8(benchmark, config, engine):
    results = benchmark.pedantic(
        fig8.run, args=(config,), kwargs={"engine": engine}, rounds=1, iterations=1
    )
    print()
    print(fig8.format_table(results))
    for result in results.values():
        assert result.total_pairs > 0
