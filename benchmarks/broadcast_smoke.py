#!/usr/bin/env python
"""Broadcast smoke check: one walk feeds every worker; exports byte-equal.

Runs the reference two-figure sweep (fig9 coverage + fig10 timing) at
``--jobs N`` over one shared warm trace store twice — ``--broadcast on``
and ``--broadcast off`` — and asserts:

* the exported rows are **byte-equal** (broadcast is an execution
  optimisation, never a semantic change);
* the broadcast run performed **exactly one trace walk per trace key**
  (``EngineStats``: ``store_hits == len(keys)``, zero generation
  passes, one wave per multi-job key), where the off run replays once
  per job.

Then measures the warm full-sweep wall time under both modes (median
of ``--repeat`` runs) and records the multi-worker throughput as the
``multiworker_sweep`` kind:

* ``--bench-out BENCH_<pr>.json`` **augments** the perf-trajectory
  record :mod:`benchmarks.kernel_smoke` wrote earlier in the CI run
  (creating a minimal record when run standalone), so one file carries
  the whole PR's perf story;
* ``--bench-out-off`` writes a small baseline record with the *off*
  numbers for the same kind — CI feeds both to ``tools/bench_compare.py
  --require-speedup multiworker_sweep:FACTOR``, the positive gate that
  keeps the broadcast win from silently eroding. The wall win comes
  from bundling: each wave runs at most ``--jobs`` consumer processes,
  and within a bundle the in-process fan-out shares one chunk decode
  and one vectorized pre-pass across all of its jobs.

Used by CI; also runnable by hand::

    python benchmarks/broadcast_smoke.py --jobs 4
    python benchmarks/broadcast_smoke.py --jobs 4 \
        --bench-out BENCH_9.json --bench-out-off BENCH_9_broadcast_off.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.engine import Engine, JobGraph  # noqa: E402
from repro.experiments import fig9, fig10  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.sim.export import write_json  # noqa: E402

from faults_smoke import pr_number_from_bench_out  # noqa: E402

FIGURES = (("fig9", fig9), ("fig10", fig10))


def declare(config: ExperimentConfig) -> "tuple[JobGraph, dict]":
    graph = JobGraph()
    plans = {name: module.declare(config, graph)
             for name, module in FIGURES}
    return graph, plans


def run_sweep(config: ExperimentConfig, store_dir: str, jobs: int,
              broadcast: str) -> "tuple[dict[str, bytes], Engine]":
    """One full sweep; returns per-figure exported rows as JSON bytes."""
    graph, plans = declare(config)
    engine = Engine(jobs=jobs, trace_store=store_dir, broadcast=broadcast)
    results = engine.run(graph)
    exports = {}
    for name, module in FIGURES:
        rows = module.export_rows(module.collect(config, plans[name], results))
        # serialize exactly as the runner's --export json does
        path = Path(store_dir) / f"{name}-{broadcast}.json"
        write_json(rows, path)
        exports[name] = path.read_bytes()
        path.unlink()
    return exports, engine


def time_sweep(config: ExperimentConfig, store_dir: str, jobs: int,
               broadcast: str, repeat: int) -> "tuple[float, int, int]":
    """Median-of-``repeat`` warm-sweep wall time; also (jobs, accesses).

    Median, not best: the two modes are compared as a CI ratio gate,
    and a single lucky scheduling window for either mode would swing a
    best-of statistic far more than the few-percent effect being
    measured.
    """
    walls = []
    n_jobs = accesses = 0
    for _ in range(repeat):
        graph, _ = declare(config)
        n_jobs = sum(1 for _ in graph)
        accesses = sum(job.length for job in graph)
        engine = Engine(jobs=jobs, trace_store=store_dir,
                        broadcast=broadcast)
        started = time.perf_counter()
        engine.run(graph)
        walls.append(time.perf_counter() - started)
    return statistics.median(walls), n_jobs, accesses


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=20_000,
                        help="trace length per workload (default: 20k)")
    parser.add_argument("--workloads", nargs="+", default=["db2", "qry2"],
                        help="workload subset (default: db2 qry2)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="engine workers (default: 4)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timing runs per mode; the median is kept "
                        "(default: 5)")
    parser.add_argument("--bench-out", default=None, metavar="PATH",
                        help="BENCH_<pr>.json record to augment with the "
                        "multiworker_sweep kind (created if absent)")
    parser.add_argument("--bench-out-off", default=None, metavar="PATH",
                        help="also write a baseline record carrying the "
                        "broadcast-off numbers for the same kind")
    args = parser.parse_args(argv)
    if args.bench_out and pr_number_from_bench_out(args.bench_out) is None:
        parser.error(
            f"--bench-out {args.bench_out!r} must be named BENCH_<pr>.json"
        )

    config = ExperimentConfig.small()
    config.trace_length = args.length
    config.workloads = list(args.workloads)

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-broadcast-") as store_dir:
        # warm the store once (also exercises the cold broadcast path:
        # the readers record during this first walk)
        exports_on, engine_on = run_sweep(
            config, store_dir, args.jobs, "on"
        )
        print(f"[broadcast on  (cold)] {engine_on.stats.format()}")

        # parity: a warm broadcast run against a warm independent-replay
        # run — exports must be byte-equal
        exports_on, engine_on = run_sweep(config, store_dir, args.jobs, "on")
        print(f"[broadcast on  (warm)] {engine_on.stats.format()}")
        exports_off, engine_off = run_sweep(
            config, store_dir, args.jobs, "off"
        )
        print(f"[broadcast off (warm)] {engine_off.stats.format()}")
        for name, _ in FIGURES:
            if exports_on[name] != exports_off[name]:
                failures.append(
                    f"{name}: broadcast-on export differs from broadcast-off"
                )

        # the cost model: the warm broadcast sweep walks each trace key
        # exactly once, however many jobs share it
        graph, _ = declare(config)
        keys = {job.trace_key for job in graph}
        stats = engine_on.stats
        if stats.generation_passes != 0 or stats.store_hits != len(keys):
            failures.append(
                "broadcast sweep did not cost one walk per key: "
                f"{stats.generation_passes} generated, {stats.store_hits} "
                f"store hits for {len(keys)} keys"
            )
        if stats.broadcast_waves != len(keys):
            failures.append(
                f"expected {len(keys)} broadcast waves, "
                f"got {stats.broadcast_waves}"
            )
        if stats.broadcast_fallbacks:
            failures.append(
                f"{stats.broadcast_fallbacks} consumer(s) degraded to "
                "independent replay on a healthy run"
            )

        # throughput: warm store, full sweep, both modes
        wall_on, n_jobs, accesses = time_sweep(
            config, store_dir, args.jobs, "on", args.repeat
        )
        wall_off, _, _ = time_sweep(
            config, store_dir, args.jobs, "off", args.repeat
        )

    total = accesses * 1  # each job walks its own trace-length accesses
    ratio = wall_off / wall_on
    print(f"[multiworker] jobs={args.jobs} on {wall_on:.2f}s, "
          f"off {wall_off:.2f}s ({ratio:.2f}x)")

    def sweep_kind(wall: float) -> dict:
        return {
            "jobs": n_jobs,
            "accesses": total,
            "wall_seconds": round(wall, 3),
            "accesses_per_second": round(total / wall, 1),
        }

    if args.bench_out:
        path = Path(args.bench_out)
        if path.is_file():
            record = json.loads(path.read_text())
        else:
            record = {
                "bench": "broadcast_smoke",
                "pr": pr_number_from_bench_out(args.bench_out),
                "kinds": {},
            }
        record.setdefault("kinds", {})["multiworker_sweep"] = sweep_kind(
            wall_on
        )
        record["broadcast"] = {
            "jobs": args.jobs,
            "workloads": config.workloads,
            "trace_length": config.trace_length,
            "repeat": args.repeat,
            "statistic": "median",
            "wall_seconds_off": round(wall_off, 3),
            "speedup_vs_off": round(ratio, 2),
        }
        path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"[bench record augmented at {path}]", file=sys.stderr)
    if args.bench_out_off:
        off_record = {
            "bench": "broadcast_smoke",
            "pr": pr_number_from_bench_out(args.bench_out),
            "mode": "broadcast_off_baseline",
            "kinds": {"multiworker_sweep": sweep_kind(wall_off)},
        }
        Path(args.bench_out_off).write_text(
            json.dumps(off_record, indent=2) + "\n"
        )
        print(f"[off-baseline record written to {args.bench_out_off}]",
              file=sys.stderr)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: broadcast sweep byte-equal to independent replay at "
          f"--jobs {args.jobs}; {len(keys)} walks for {n_jobs} jobs; "
          f"{ratio:.2f}x vs off")
    return 0


if __name__ == "__main__":
    sys.exit(main())
