#!/usr/bin/env python
"""Peak-RSS smoke check: streaming keeps memory flat as traces grow.

Runs one driver + timing job (the paper's most demanding single-trace
pipeline: coverage classification feeding the incremental ROB/MLP
model) at a short and a long trace length, each in a fresh subprocess,
and compares peak RSS. Under streaming execution the long run must stay
within ``--ratio`` of the short one — peak memory independent of trace
length — while a materialized run grows linearly (try
``--materialize`` to see the difference).

Used by CI; also runnable by hand::

    python benchmarks/memory_smoke.py
    python benchmarks/memory_smoke.py --length 4000000 --ratio 1.5
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

_CHILD = """
import json, resource, sys
sys.path.insert(0, {src!r})
from repro.engine import execute_job
from repro.experiments.config import ExperimentConfig

cfg = ExperimentConfig()
cfg.trace_length = {length}
result = execute_job(cfg.timing_job({workload!r}, "stride"),
                     materialize={materialize})
print(json.dumps({{
    "cycles": result.cycles,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}}))
"""


def measure(workload: str, length: int, materialize: bool) -> dict:
    """Run one timing job in a fresh interpreter; return its report."""
    code = _CHILD.format(
        src=str(SRC), length=length, workload=workload, materialize=materialize
    )
    out = subprocess.run(
        [sys.executable, "-c", code], check=True, capture_output=True, text=True
    )
    return json.loads(out.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="db2")
    parser.add_argument("--length", type=int, default=1_000_000,
                        help="long-trace access count (default: 1M)")
    parser.add_argument("--baseline-length", type=int, default=125_000,
                        help="short-trace access count (default: 125k)")
    parser.add_argument("--ratio", type=float, default=1.5,
                        help="max allowed long/short peak-RSS ratio")
    parser.add_argument("--materialize", action="store_true",
                        help="measure the compatibility path instead "
                        "(expected to fail the ratio check)")
    args = parser.parse_args(argv)

    short = measure(args.workload, args.baseline_length, args.materialize)
    long_ = measure(args.workload, args.length, args.materialize)
    ratio = long_["peak_rss_kb"] / max(1, short["peak_rss_kb"])
    mode = "materialized" if args.materialize else "streaming"
    print(
        f"[{mode}] {args.workload}: "
        f"{args.baseline_length} accesses -> {short['peak_rss_kb']} kB peak, "
        f"{args.length} accesses -> {long_['peak_rss_kb']} kB peak "
        f"(ratio {ratio:.2f}, limit {args.ratio:.2f})"
    )
    if ratio > args.ratio:
        print(
            f"FAIL: peak RSS grew {ratio:.2f}x over a "
            f"{args.length / args.baseline_length:.0f}x longer trace",
            file=sys.stderr,
        )
        return 1
    print("OK: peak memory is independent of trace length")
    return 0


if __name__ == "__main__":
    sys.exit(main())
