#!/usr/bin/env python
"""Trace-plane smoke check: shared traces beat per-job generation.

Declares a two-figure sweep (fig9 coverage + fig10 timing — many jobs
per workload trace) into one graph and runs it with a shared trace
store, asserting the sweep's economics:

1. the engine performs **fewer generation passes than executed jobs**
   (one pass per distinct trace key, fanned out / replayed to the rest);
2. a second engine over the same store performs **zero** generation
   passes (pure replay);
3. both runs' results are **bit-identical** to a no-store engine's.

Used by CI; also runnable by hand::

    python benchmarks/tracestore_smoke.py
    python benchmarks/tracestore_smoke.py --jobs 2 --length 30000
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.engine import Engine, JobGraph  # noqa: E402
from repro.experiments import fig9, fig10  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402


def declare(config: ExperimentConfig) -> JobGraph:
    graph = JobGraph()
    fig9.declare(config, graph)
    fig10.declare(config, graph)
    return graph


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=20_000,
                        help="trace length per workload (default: 20k)")
    parser.add_argument("--workloads", nargs="+", default=["db2", "qry2"],
                        help="workload subset (default: db2 qry2)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="engine worker processes (default: serial)")
    args = parser.parse_args(argv)

    config = ExperimentConfig.small()
    config.trace_length = args.length
    config.workloads = list(args.workloads)

    reference = Engine(jobs=args.jobs).run(declare(config))

    with tempfile.TemporaryDirectory(prefix="repro-traces-") as store_dir:
        cold = Engine(jobs=args.jobs, trace_store=store_dir)
        cold_results = cold.run(declare(config))
        print(f"[cold store] {cold.stats.format()}")

        warm = Engine(jobs=args.jobs, trace_store=store_dir)
        warm_results = warm.run(declare(config))
        print(f"[warm store] {warm.stats.format()}")

    failures = []
    keys = len({(w, config.trace_length, config.seed)
                for w in config.workloads})
    if cold.stats.generation_passes >= cold.stats.executed:
        failures.append(
            f"cold run generated {cold.stats.generation_passes} traces for "
            f"{cold.stats.executed} jobs (expected fewer passes than jobs)"
        )
    if cold.stats.generation_passes > keys:
        failures.append(
            f"cold run generated {cold.stats.generation_passes} traces for "
            f"{keys} distinct trace keys (expected at most one per key)"
        )
    if warm.stats.generation_passes != 0:
        failures.append(
            f"warm run generated {warm.stats.generation_passes} traces "
            f"(expected pure replay)"
        )
    if dict(cold_results) != dict(reference):
        failures.append("cold-store results differ from the no-store run")
    if dict(warm_results) != dict(reference):
        failures.append("warm-store results differ from the no-store run")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {cold.stats.executed} jobs over {keys} trace keys ran with "
        f"{cold.stats.generation_passes} generation passes (then 0 on replay)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
