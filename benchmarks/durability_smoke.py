#!/usr/bin/env python
"""Durability smoke check: crash → resume must be bit-identical.

The crash-at-any-point contract, asserted end to end with real process
death (the ``kill_at_job`` injector calls ``os._exit`` — no cleanup, no
journal sealing, a faithful SIGKILL stand-in):

1. a **clean** run of the reference fig9 sweep exports its rows;
2. the same sweep on a fresh cache is **killed** at a deterministic job
   dispatch (``REPRO_FAULT_INJECT=kill_at_job@index=N``) — the process
   dies with exit 86 and an unsealed journal;
3. ``--resume last`` finishes the run: the journal shows which jobs are
   already durable, only the remainder re-executes, and the exported
   rows must equal the clean run's **byte for byte**;
4. ``repro-fsck`` over the crashed-and-resumed cache and trace store
   must find no damage (the torn state a crash leaves behind is either
   valid or detected).

Both serial and ``--jobs 2`` engines are exercised. Used by CI; also
runnable by hand::

    python benchmarks/durability_smoke.py
    python benchmarks/durability_smoke.py --length 20000 --kill-index 7
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.engine.faultinject import ENV_VAR, KILL_EXIT_CODE  # noqa: E402
from repro.engine.journal import load_run, runs_root  # noqa: E402


def runner_cmd(*extra: str) -> "list[str]":
    return [sys.executable, "-m", "repro.experiments", *extra]


def run(cmd: "list[str]", env_extra: "dict[str, str] | None" = None,
        check: "int | None" = 0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_VAR, None)
    env.update(env_extra or {})
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if check is not None and proc.returncode != check:
        raise AssertionError(
            f"{' '.join(cmd)} exited {proc.returncode} (wanted {check})\n"
            f"stderr:\n{proc.stderr}"
        )
    return proc


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=8_000,
                        help="trace length per workload (default: 8k)")
    parser.add_argument("--workloads", nargs="+",
                        default=["apache", "em3d"],
                        help="workload subset — two trace keys, so the "
                        "kill lands after one fan-out group completed "
                        "(default: apache em3d)")
    parser.add_argument("--kill-index", type=int, default=5,
                        help="1-based job dispatch the injected kill "
                        "fires at (default: 5)")
    args = parser.parse_args(argv)

    failures: "list[str]" = []
    with tempfile.TemporaryDirectory(prefix="repro-durab-") as tmp:
        tmp_path = Path(tmp)
        traces = str(tmp_path / "traces")
        sweep = [
            "fig9", "--small", "--workloads", *args.workloads,
            "--length", str(args.length), "--trace-store", traces,
        ]

        clean_out = tmp_path / "clean-out"
        run(runner_cmd(
            *sweep, "--cache-dir", str(tmp_path / "clean-cache"),
            "--export", "json", "--export-dir", str(clean_out),
        ))
        baseline = (clean_out / "fig9.json").read_bytes()
        print(f"[clean    ] exported {len(baseline)} bytes")

        for jobs in (1, 2):
            mode = f"jobs={jobs}"
            cache = str(tmp_path / f"cache-{jobs}")
            if jobs > 1:
                # the parallel supervisor dispatches its whole batch up
                # front (a mid-batch kill finds nothing durable yet), so
                # pre-warm half the sweep: the crash then lands on a run
                # with prior durable state, which resume must honor
                run(runner_cmd(
                    "fig9", "--small", "--workloads", args.workloads[0],
                    "--length", str(args.length), "--trace-store", traces,
                    "--cache-dir", cache,
                ))
                kill_index = 2
            else:
                kill_index = args.kill_index
            killed = run(
                runner_cmd(*sweep, "--cache-dir", cache, "--jobs",
                           str(jobs)),
                env_extra={ENV_VAR: f"kill_at_job@index={kill_index}"},
                check=None,
            )
            if killed.returncode != KILL_EXIT_CODE:
                failures.append(
                    f"{mode}: injected kill exited {killed.returncode}, "
                    f"expected {KILL_EXIT_CODE}\n{killed.stderr}"
                )
                continue
            crashed = [r for r in
                       (load_run(p) for p in
                        sorted(runs_root(cache).iterdir()))
                       if r.status() == "crashed"]
            if len(crashed) != 1:
                failures.append(
                    f"{mode}: expected exactly one crashed run, found "
                    f"{len(crashed)}"
                )
                continue
            record = crashed[0]
            durable = len(record.completed)
            scheduled = len(record.scheduled)
            print(f"[{mode:<9}] killed at dispatch {kill_index}: "
                  f"{durable}/{scheduled} jobs journaled durable")
            if not 0 < durable < scheduled:
                failures.append(
                    f"{mode}: expected a partial journal, got "
                    f"{durable}/{scheduled}"
                )
            resume_out = tmp_path / f"resume-out-{jobs}"
            resumed = run(runner_cmd(
                *sweep, "--cache-dir", cache, "--jobs", str(jobs),
                "--resume", "last",
                "--export", "json", "--export-dir", str(resume_out),
            ))
            if "[resume" not in resumed.stderr:
                failures.append(f"{mode}: resume banner missing")
            recovered = (resume_out / "fig9.json").read_bytes()
            if recovered != baseline:
                failures.append(
                    f"{mode}: resumed export differs from the clean run"
                )
            else:
                print(f"[{mode:<9}] resumed export bit-identical "
                      f"({len(recovered)} bytes)")
            fsck = run(
                [sys.executable, "-m", "repro.tools.fsck",
                 "--cache-dir", cache, "--trace-store", traces, "--quiet"],
                check=None,
            )
            if fsck.returncode != 0:
                failures.append(
                    f"{mode}: post-resume fsck found damage\n{fsck.stdout}"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: crash → resume reproduced the clean run bit-for-bit "
          "(serial and jobs=2), fsck clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
