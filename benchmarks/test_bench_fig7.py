"""Benchmark: Figure 7 — Sequitur repetition of misses vs triggers."""

from repro.experiments import fig7


def test_fig7(benchmark, config, engine):
    results = benchmark.pedantic(
        fig7.run, args=(config,), kwargs={"engine": engine}, rounds=1, iterations=1
    )
    print()
    print(fig7.format_table(results))
    for all_misses, triggers in results.values():
        assert all_misses.total > 0
        assert triggers.total > 0
