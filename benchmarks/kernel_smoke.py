#!/usr/bin/env python
"""Kernel smoke check: vector and python walks agree; vector is faster.

Runs the reference two-figure sweep (fig9 coverage + fig10 timing) under
both trace-walk kernels (``--kernel=python`` and ``--kernel=vector``,
see :mod:`repro.kernels`) over one shared warm trace store and asserts
the results are **bit-identical** — the vector kernel is an
optimisation, never a semantic change.

Then measures replay throughput per job kind for each kernel and logs
the speedup ratio. The measurement uses the engine's serial fan-out
(``--jobs 1`` default): one chunk decode + pre-pass feeds every
consumer of a trace key, which is precisely the fast path the kernel
layer batches (a worker pool instead re-decodes per process and
measures multiprocessing overhead, not the kernel). Each measurement
takes the best of ``--repeat`` runs so scheduler noise on shared CI
runners does not mask the kernels' real relative cost.

Also emits the perf-trajectory record (ROADMAP item 5): the headline
``kinds`` table carries the *vector* kernel's throughput — the default
kernel whenever numpy is installed — alongside both kernels' numbers
and the ratio. The record's PR number is parsed from the
``--bench-out`` filename (``BENCH_<pr>.json``);
``tools/bench_compare.py --require-speedup`` gates on it.

Used by CI; also runnable by hand::

    python benchmarks/kernel_smoke.py
    python benchmarks/kernel_smoke.py --bench-out BENCH_8.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.engine import Engine, JobGraph  # noqa: E402
from repro.experiments import fig9, fig10  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.kernels import KERNEL_PYTHON, KERNEL_VECTOR, vector_available  # noqa: E402

from faults_smoke import pr_number_from_bench_out  # noqa: E402


def declare(config: ExperimentConfig) -> JobGraph:
    graph = JobGraph()
    fig9.declare(config, graph)
    fig10.declare(config, graph)
    return graph


def _kind_throughput(config: ExperimentConfig, store_dir: str, jobs: int,
                     kernel: str, repeat: int,
                     ) -> "dict[str, dict[str, float]]":
    """Best-of-``repeat`` accesses/sec per job kind over the warm store."""
    by_kind: "dict[str, list]" = {}
    for job in declare(config):
        by_kind.setdefault(job.kind, []).append(job)
    out: "dict[str, dict[str, float]]" = {}
    for kind, kind_jobs in sorted(by_kind.items()):
        best = None
        for _ in range(repeat):
            graph = JobGraph()
            for job in kind_jobs:
                graph.add(job)
            engine = Engine(jobs=jobs, trace_store=store_dir, kernel=kernel)
            started = time.perf_counter()
            engine.run(graph)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        accesses = sum(job.length for job in kind_jobs)
        out[kind] = {
            "jobs": len(kind_jobs),
            "accesses": accesses,
            "wall_seconds": round(best, 3),
            "accesses_per_second": round(accesses / best, 1),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=20_000,
                        help="trace length per workload (default: 20k)")
    parser.add_argument("--workloads", nargs="+", default=["db2", "qry2"],
                        help="workload subset (default: db2 qry2)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="engine workers; 1 = serial fan-out, the "
                        "kernel's shared-decode fast path (default: 1)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing runs per kind/kernel; best is kept "
                        "(default: 3)")
    parser.add_argument("--bench-out", default=None, metavar="PATH",
                        help="also write the perf-trajectory JSON record")
    args = parser.parse_args(argv)
    if args.bench_out and pr_number_from_bench_out(args.bench_out) is None:
        # catch CI filename drift at the source: an unparseable name
        # would emit a record with "pr": null and break the trajectory
        parser.error(
            f"--bench-out {args.bench_out!r} must be named BENCH_<pr>.json"
        )

    config = ExperimentConfig.small()
    config.trace_length = args.length
    config.workloads = list(args.workloads)

    if not vector_available():
        print("[kernel_smoke: numpy not installed — the vector kernel "
              "will fall back to the python decode path and the speedup "
              "ratio will be ~1.0]", file=sys.stderr)

    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-kernel-") as store_dir:
        # parity: the whole sweep, both kernels, one recorded trace set
        results = {}
        for kernel in (KERNEL_PYTHON, KERNEL_VECTOR):
            engine = Engine(jobs=args.jobs, trace_store=store_dir,
                            kernel=kernel)
            started = time.perf_counter()
            results[kernel] = dict(engine.run(declare(config)))
            wall = time.perf_counter() - started
            print(f"[{kernel:<7}] {engine.stats.format()} ({wall:.1f}s)")
        if results[KERNEL_PYTHON] != results[KERNEL_VECTOR]:
            differing = sorted(
                str(key) for key in results[KERNEL_PYTHON]
                if results[KERNEL_PYTHON][key] != results[KERNEL_VECTOR].get(key)
            )
            failures.append(
                "vector-kernel results differ from the python walk "
                f"({len(differing)} job(s): {', '.join(differing[:3])} ...)"
            )

        # throughput: the store is warm now; time each kernel per kind
        kinds = {
            kernel: _kind_throughput(
                config, store_dir, args.jobs, kernel, args.repeat
            )
            for kernel in (KERNEL_PYTHON, KERNEL_VECTOR)
        }

    speedup = {}
    for kind in sorted(kinds[KERNEL_PYTHON]):
        base = kinds[KERNEL_PYTHON][kind]["accesses_per_second"]
        fast = kinds[KERNEL_VECTOR][kind]["accesses_per_second"]
        speedup[kind] = round(fast / base, 2)
        print(f"[speedup  ] {kind:<10} python {base:>9.1f} acc/s → "
              f"vector {fast:>9.1f} acc/s ({speedup[kind]:.2f}x)")

    record = {
        "bench": "kernel_smoke",
        "pr": pr_number_from_bench_out(args.bench_out),
        "sweep": {
            "figures": ["fig9", "fig10"],
            "workloads": config.workloads,
            "trace_length": config.trace_length,
            "jobs": args.jobs,
            "fanout": "serial" if args.jobs == 1 else "pool",
            "repeat": args.repeat,
            "statistic": "best",
        },
        # headline table (bench_compare reads this): the vector kernel,
        # which is the default whenever numpy is installed
        "kinds": kinds[KERNEL_VECTOR],
        "kernels": kinds,
        "speedup": speedup,
        "vector_available": vector_available(),
    }
    print(json.dumps(record, indent=2))
    if args.bench_out:
        Path(args.bench_out).write_text(json.dumps(record, indent=2) + "\n")
        print(f"[bench record written to {args.bench_out}]", file=sys.stderr)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: vector kernel bit-identical to the python walk on the "
          "reference sweep; speedup "
          + ", ".join(f"{kind} {ratio:.2f}x" for kind, ratio in speedup.items()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
