#!/usr/bin/env python
"""Fault-plane smoke check: an injected sweep must finish bit-identical.

Runs the reference two-figure sweep (fig9 coverage + fig10 timing) twice:

1. **clean** — no injection, ``--jobs N``, cold trace store; and
2. **injected** — the same sweep under
   ``REPRO_FAULT_INJECT=worker_crash:0.2,trace_corrupt:1``: workers are
   killed mid-batch and every freshly recorded trace entry has payload
   bytes flipped on disk.

The robustness contract asserted here:

* the injected run **completes** (no job exhausts its retries);
* its results are **bit-identical** to the clean run's;
* the damaged entries are **quarantined on disk** (``quarantine/`` with
  reason files), not deleted;
* the recovery counters (retries/requeues/respawns and quarantines) are
  **nonzero** — the faults really fired and were really recovered.

Also emits the perf-trajectory record (ROADMAP item 5): accesses/sec
per job kind, store hit rate, and wall times for the reference sweep,
written as JSON. The record's PR number is parsed from the
``--bench-out`` filename (``BENCH_<pr>.json``), so each perf-touching
PR names its own baseline; ``tools/bench_compare.py`` diffs consecutive
records.

Used by CI; also runnable by hand::

    python benchmarks/faults_smoke.py --jobs 4
    python benchmarks/faults_smoke.py --jobs 4 --bench-out BENCH_7.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.engine import Engine, JobGraph, RetryPolicy  # noqa: E402
from repro.engine.faultinject import ENV_VAR  # noqa: E402
from repro.experiments import fig9, fig10  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402

FAULT_SPEC = "worker_crash:0.2,trace_corrupt:1"


def pr_number_from_bench_out(path) -> "int | None":
    """The PR number encoded in a ``BENCH_<pr>.json`` filename.

    Keeps the emitted record self-identifying without hardcoding the
    current PR in this script: CI names the output file, the record
    follows. Returns None for a non-conforming (or absent) filename.
    """
    import re

    if not path:
        return None
    match = re.fullmatch(r"BENCH_(\d+)\.json", Path(path).name)
    return int(match.group(1)) if match else None


def declare(config: ExperimentConfig) -> JobGraph:
    graph = JobGraph()
    fig9.declare(config, graph)
    fig10.declare(config, graph)
    return graph


def _accesses_per_kind(graph: JobGraph) -> "dict[str, int]":
    totals: "dict[str, int]" = {}
    for job in graph:
        totals[job.kind] = totals.get(job.kind, 0) + job.length
    return totals


def _kind_throughput(config: ExperimentConfig, store_dir: str,
                     jobs: int) -> "dict[str, dict[str, float]]":
    """Per-kind accesses/sec over the warm store (replay throughput)."""
    by_kind: "dict[str, list]" = {}
    for job in declare(config):
        by_kind.setdefault(job.kind, []).append(job)
    out: "dict[str, dict[str, float]]" = {}
    for kind, kind_jobs in sorted(by_kind.items()):
        graph = JobGraph()
        for job in kind_jobs:
            graph.add(job)
        engine = Engine(jobs=jobs, trace_store=store_dir)
        started = time.perf_counter()
        engine.run(graph)
        elapsed = time.perf_counter() - started
        accesses = sum(job.length for job in kind_jobs)
        out[kind] = {
            "jobs": len(kind_jobs),
            "accesses": accesses,
            "wall_seconds": round(elapsed, 3),
            "accesses_per_second": round(accesses / elapsed, 1),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=20_000,
                        help="trace length per workload (default: 20k)")
    parser.add_argument("--workloads", nargs="+", default=["db2", "qry2"],
                        help="workload subset (default: db2 qry2)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="engine worker processes (default: 4)")
    parser.add_argument("--retries", type=int, default=6,
                        help="retry budget for the injected run (default: 6)")
    parser.add_argument("--bench-out", default=None, metavar="PATH",
                        help="also write the perf-trajectory JSON record")
    args = parser.parse_args(argv)

    config = ExperimentConfig.small()
    config.trace_length = args.length
    config.workloads = list(args.workloads)

    ambient = os.environ.pop(ENV_VAR, None)
    if ambient:
        print(f"[ignoring ambient {ENV_VAR}={ambient!r}]", file=sys.stderr)

    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-clean-") as clean_dir:
        clean = Engine(jobs=args.jobs, trace_store=clean_dir)
        clean_results = clean.run(declare(config))
    clean_wall = time.perf_counter() - started
    print(f"[clean    ] {clean.stats.format()} ({clean_wall:.1f}s)")

    failures = []
    if clean.stats.degraded:
        failures.append("clean run reported fault-recovery work")

    os.environ[ENV_VAR] = FAULT_SPEC
    try:
        started = time.perf_counter()
        with tempfile.TemporaryDirectory(prefix="repro-faulty-") as store_dir:
            injected = Engine(
                jobs=args.jobs, trace_store=store_dir,
                retry=RetryPolicy(attempts=max(1, args.retries),
                                  backoff=0.01),
            )
            injected_results = injected.run(declare(config))
            quarantined = sorted(
                (Path(store_dir) / "quarantine").glob("*.trace")
            )
            reasons = sorted(
                (Path(store_dir) / "quarantine").glob("*.reason.txt")
            )
        injected_wall = time.perf_counter() - started
        print(f"[injected ] {injected.stats.format()} ({injected_wall:.1f}s)")
    finally:
        del os.environ[ENV_VAR]

    job_failures = injected_results.failures()
    if job_failures:
        failures.extend(
            f"injected run lost a job permanently: {f.summary()}"
            for f in job_failures
        )
    if dict(injected_results) != dict(clean_results):
        failures.append("injected-run results differ from the clean run")
    if not quarantined:
        failures.append("no quarantined trace shards on disk")
    if len(reasons) < len(quarantined):
        failures.append("quarantined shards are missing reason files")
    if injected.stats.retries + injected.stats.requeued == 0:
        failures.append("injected run recorded no retry/requeue work")
    if injected.stats.quarantined == 0:
        failures.append("injected run recorded no quarantines")

    # perf trajectory: replay throughput per job kind over a warm store
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as bench_dir:
        warmup = Engine(jobs=args.jobs, trace_store=bench_dir)
        warmup.run(declare(config))
        kinds = _kind_throughput(config, bench_dir, args.jobs)
    store_ops = injected.stats.store_hits + injected.stats.store_misses
    record = {
        "bench": "faults_smoke",
        "pr": pr_number_from_bench_out(args.bench_out),
        "sweep": {
            "figures": ["fig9", "fig10"],
            "workloads": config.workloads,
            "trace_length": config.trace_length,
            "jobs": args.jobs,
        },
        "kinds": kinds,
        "clean_wall_seconds": round(clean_wall, 3),
        "injected_wall_seconds": round(injected_wall, 3),
        "injected": {
            "spec": FAULT_SPEC,
            "store_hit_rate": round(
                injected.stats.store_hits / store_ops, 3
            ) if store_ops else None,
            "retries": injected.stats.retries,
            "requeued": injected.stats.requeued,
            "pool_respawns": injected.stats.pool_respawns,
            "quarantined": injected.stats.quarantined,
            "replay_fallbacks": injected.stats.replay_fallbacks,
        },
    }
    print(json.dumps(record, indent=2))
    if args.bench_out:
        Path(args.bench_out).write_text(json.dumps(record, indent=2) + "\n")
        print(f"[bench record written to {args.bench_out}]", file=sys.stderr)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: injected sweep ({FAULT_SPEC}) matched the clean sweep "
        f"bit-for-bit; {len(quarantined)} shard(s) quarantined, "
        f"{injected.stats.retries + injected.stats.requeued} jobs "
        "retried/requeued"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
