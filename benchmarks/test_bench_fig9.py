"""Benchmark: Figure 9 — coverage/overprediction comparison."""

from repro.experiments import fig9


def test_fig9(benchmark, config, engine):
    results = benchmark.pedantic(
        fig9.run, args=(config,), kwargs={"engine": engine}, rounds=1, iterations=1
    )
    print()
    print(fig9.format_table(results))
    for rows in results.values():
        assert {r.predictor for r in rows} == {"tms", "sms", "stems"}
