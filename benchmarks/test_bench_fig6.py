"""Benchmark: Figure 6 — joint TMS/SMS predictability classification."""

from repro.experiments import fig6


def test_fig6(benchmark, config, engine):
    results = benchmark.pedantic(
        fig6.run, args=(config,), kwargs={"engine": engine}, rounds=1, iterations=1
    )
    print()
    print(fig6.format_table(results))
    assert set(results) == set(config.workloads)
