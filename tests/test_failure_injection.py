"""Failure-injection and degenerate-configuration tests.

The predictors must degrade gracefully — never crash, never mis-account —
when their structures are starved (single stream queue, one-entry AGT,
minimal reconstruction buffer, wrapped RMOB) or when the input is
adversarial (pure writes, a single hot block, alternating thrash).
"""

import random

import pytest

from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.common.config import (
    CacheConfig,
    SMSConfig,
    STeMSConfig,
    SystemConfig,
    TMSConfig,
)
from repro.prefetch.hybrid import NaiveHybridPrefetcher
from repro.prefetch.sms.sms import SMSPrefetcher
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.prefetch.tms.tms import TMSPrefetcher
from repro.sim.driver import SimulationDriver
from repro.trace.container import Trace

AMAP = DEFAULT_ADDRESS_MAP


def run(prefetcher, trace, system=None):
    return SimulationDriver(system or SystemConfig.tiny(), prefetcher).run(trace)


def repeating_chain_trace(n_blocks=200, repeats=4, seed=3):
    rng = random.Random(seed)
    blocks = rng.sample(range(100000, 900000), n_blocks)
    trace = Trace("chain")
    for _ in range(repeats):
        for b in blocks:
            trace.append(pc=0x9, address=b * 64)
    return trace


def paged_trace(pages=150, repeats=2, offsets=(0, 3, 7, 11)):
    trace = Trace("paged")
    for _ in range(repeats):
        for page in range(pages):
            for step, off in enumerate(offsets):
                trace.append(pc=0x100 + step * 4,
                             address=AMAP.block_in_region(3000 + page, off) * 64)
    return trace


class TestStarvedSTeMS:
    def test_single_stream_queue(self):
        config = STeMSConfig(stream_queues=1)
        result = run(STeMSPrefetcher(config), paged_trace())
        assert result.covered > 0  # degraded, not dead

    def test_one_entry_agt(self):
        config = STeMSConfig(agt_entries=1)
        result = run(STeMSPrefetcher(config), paged_trace())
        assert result.reads == result.covered + result.uncovered + \
            result.l1_hits + result.l2_hits

    def test_tiny_reconstruction_buffer(self):
        config = STeMSConfig(reconstruction_entries=4, reconstruction_batch=2)
        result = run(STeMSPrefetcher(config), repeating_chain_trace())
        assert result.accesses == 800

    def test_tiny_rmob_wraps(self):
        config = STeMSConfig(rmob_entries=32)
        result = run(STeMSPrefetcher(config), repeating_chain_trace())
        # 200-miss loop outruns a 32-entry RMOB: almost nothing coverable
        assert result.coverage < 0.2

    def test_zero_initial_fetch_recovers_via_resync(self):
        config = STeMSConfig(initial_fetch=0)
        result = run(STeMSPrefetcher(config), paged_trace())
        # nothing is fetched at allocation, but the first demand miss that
        # lands in a stream's pending window re-syncs it into action
        assert result.accesses == 1200
        assert result.covered > 0

    def test_pst_single_entry(self):
        config = STeMSConfig(pst_entries=1)
        result = run(STeMSPrefetcher(config), paged_trace())
        assert result.accesses > 0


class TestStarvedTMS:
    def test_tiny_cmob(self):
        result = run(TMSPrefetcher(TMSConfig(cmob_entries=16)),
                     repeating_chain_trace())
        assert result.coverage < 0.2

    def test_single_queue_thrash(self):
        result = run(TMSPrefetcher(TMSConfig(stream_queues=1)),
                     repeating_chain_trace())
        assert result.accesses == 800


class TestAdversarialInputs:
    def test_pure_write_trace(self):
        trace = Trace("writes")
        for i in range(500):
            trace.append(pc=0x1, address=i * 64, is_write=True)
        for prefetcher in (TMSPrefetcher(), SMSPrefetcher(),
                           STeMSPrefetcher(), NaiveHybridPrefetcher()):
            result = run(prefetcher, trace)
            assert result.covered == 0
            assert result.uncovered == 0  # writes are not read misses

    def test_single_hot_block(self):
        trace = Trace("hot")
        for i in range(1000):
            trace.append(pc=0x1, address=4096)
        result = run(STeMSPrefetcher(), trace)
        assert result.uncovered == 1  # the compulsory miss only
        assert result.l1_hits == 999

    def test_cache_thrash_alternation(self):
        """Two blocks aliasing to one direct-mapped set: constant misses."""
        system = SystemConfig(
            l1=CacheConfig(size_bytes=64, associativity=1),
            l2=CacheConfig(size_bytes=128, associativity=1),
        )
        trace = Trace("thrash")
        for i in range(400):
            trace.append(pc=0x1, address=(i % 2) * 128 * 64)
        result = run(STeMSPrefetcher(), trace, system=system)
        assert result.accesses == 400

    def test_svb_one_entry(self):
        system = SystemConfig(
            l1=CacheConfig(size_bytes=4096, associativity=2),
            l2=CacheConfig(size_bytes=32768, associativity=4),
            svb_entries=1,
        )
        result = run(STeMSPrefetcher(), paged_trace(), system=system)
        # a 1-entry SVB evicts nearly everything before use
        assert result.overpredictions >= 0
        assert result.accesses > 0

    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_minuscule_traces(self, length):
        trace = Trace("tiny")
        for i in range(length):
            trace.append(pc=0x1, address=i * 64)
        for prefetcher in (TMSPrefetcher(), SMSPrefetcher(), STeMSPrefetcher()):
            result = run(prefetcher, trace)
            assert result.accesses == length
