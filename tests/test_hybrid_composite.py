"""Tests for the naive hybrid and the stride+X composite."""

from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.common.config import SystemConfig
from repro.memsys.hierarchy import ServiceLevel
from repro.prefetch.base import AccessEvent, TARGET_L1, TARGET_SVB
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.hybrid import NaiveHybridPrefetcher
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.prefetch.tms.tms import TMSPrefetcher
from repro.sim.driver import SimulationDriver
from repro.trace.container import Trace
from repro.trace.events import MemoryAccess

AMAP = DEFAULT_ADDRESS_MAP


def event(i, block, pc=0x1):
    access = MemoryAccess(index=i, pc=pc, address=block * 64)
    return AccessEvent(access=access, block=block, level=ServiceLevel.MEMORY)


class TestNaiveHybrid:
    def test_requests_carry_per_engine_targets(self):
        pf = NaiveHybridPrefetcher()
        # train both constituents, then trigger both kinds of predictions
        blocks = [AMAP.block_in_region(r, 0) for r in (1, 2, 3)]
        for i, b in enumerate(blocks):
            pf.on_access(event(i, b))
            pf.on_access(event(100 + i, AMAP.block_in_region(i + 1, 5)))
        pf.on_l1_eviction(AMAP.block_in_region(1, 5))
        pf.pop_requests()
        pf.on_access(event(50, blocks[0]))  # TMS stream + SMS trigger
        requests = pf.pop_requests()
        targets = {r.target for r in requests}
        assert TARGET_SVB in targets  # TMS side produced stream fetches

    def test_both_engines_observe(self):
        pf = NaiveHybridPrefetcher()
        pf.on_access(event(0, 5))
        assert pf.tms.cmob.appends == 1
        assert pf.sms.agt.generations_started == 1

    def test_runs_in_driver(self):
        trace = Trace("h")
        for repeat in range(2):
            for region in range(100):
                for off in (0, 3, 7):
                    trace.append(pc=0x10 + off, address=AMAP.block_in_region(
                        1000 + region, off) * 64)
        result = SimulationDriver(SystemConfig.tiny(), NaiveHybridPrefetcher()).run(trace)
        assert result.covered > 0

    def test_svb_discard_forwarded_to_tms(self):
        pf = NaiveHybridPrefetcher()
        pf.on_svb_discard(5, 3)  # no stream: must not raise


class TestComposite:
    def test_name_and_target(self):
        pf = CompositePrefetcher(TMSPrefetcher())
        assert pf.name == "stride+tms"
        assert pf.install_target == TARGET_SVB

    def test_stride_requests_target_l1(self):
        pf = CompositePrefetcher(STeMSPrefetcher())
        for i, b in enumerate([100, 101, 102]):
            pf.on_access(event(i, b, pc=0x99))
        requests = pf.pop_requests()
        stride_reqs = [r for r in requests if r.target == TARGET_L1]
        assert stride_reqs, "stride engine must produce L1-bound requests"

    def test_composite_in_driver_beats_nothing(self):
        trace = Trace("c")
        for i in range(400):
            trace.append(pc=0x7, address=i * 64)
        baseline = SimulationDriver(SystemConfig.tiny(), None).run(trace)
        result = SimulationDriver(
            SystemConfig.tiny(), CompositePrefetcher(TMSPrefetcher())
        ).run(trace)
        assert result.covered > 0  # the stride engine covers the scan
        assert baseline.uncovered > result.uncovered

    def test_finish_propagates(self):
        pf = CompositePrefetcher(STeMSPrefetcher())
        pf.on_access(event(0, AMAP.block_in_region(1, 0)))
        pf.finish()  # must not raise
