"""Telemetry plane: registry semantics, spans, mode switching, the
runner's ``metrics.json``/``trace.json`` artifacts, ``repro-report``,
and fsck's handling of telemetry files.

Cross-process folding parity (serial vs pool vs broadcast counters) has
its own tests here plus path-specific ones in ``test_engine.py`` and
``test_broadcast.py``.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.config import SystemConfig
from repro.engine import (
    Engine,
    JobGraph,
    PrefetcherSpec,
    RunJournal,
    SimJob,
    find_run,
    runs_root,
)
from repro.engine.engine import _STAT_FIELDS, EngineStats
from repro.engine.faultinject import ENV_VAR as FAULT_ENV
from repro.engine.faultinject import KILL_EXIT_CODE
from repro.experiments.runner import main as runner_main
from repro.telemetry import (
    ENV_VAR,
    HISTOGRAM_BUCKET_BOUNDS,
    HISTOGRAM_LOG2_MAX,
    HISTOGRAM_LOG2_MIN,
    METRICS_NAME,
    METRICS_VERSION,
    MODE_BASIC,
    MODE_OFF,
    MODE_TRACE,
    TRACE_NAME,
    AttemptSpan,
    Histogram,
    MetricsRegistry,
    RunTelemetry,
    bucket_index,
    chrome_trace,
    phases_active,
    process_registry,
    resolve_telemetry,
    telemetry_enabled,
)
from repro.tools.fsck import main as fsck_main
from repro.tools.report import main as report_main

SRC = Path(__file__).resolve().parent.parent / "src"
WORKLOADS = ("apache", "em3d")
LENGTH = 2500
SEED = 1


@pytest.fixture(autouse=True)
def _no_ambient_overrides(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv(FAULT_ENV, raising=False)


def build_graph() -> "tuple[JobGraph, list[SimJob]]":
    graph = JobGraph()
    jobs = []
    system = SystemConfig.tiny()
    for workload in WORKLOADS:
        for kind in ("none", "stride", "sms"):
            spec = PrefetcherSpec(kind=kind) if kind != "none" else None
            job = SimJob(kind="coverage", workload=workload, length=LENGTH,
                         seed=SEED, system=system, prefetcher=spec)
            jobs.append(graph.add(job))
    return graph, jobs


# -- histogram buckets (pinned: comparable across every metrics.json) --------


class TestHistogramBuckets:
    def test_bounds_are_pinned(self):
        # changing any of these breaks cross-PR comparability — the
        # bounds are part of the metrics.json format, not an impl detail
        assert HISTOGRAM_LOG2_MIN == -20
        assert HISTOGRAM_LOG2_MAX == 40
        assert len(HISTOGRAM_BUCKET_BOUNDS) == 62
        assert HISTOGRAM_BUCKET_BOUNDS[0] == 2.0 ** -20
        assert HISTOGRAM_BUCKET_BOUNDS[-2] == 2.0 ** 40
        assert HISTOGRAM_BUCKET_BOUNDS[-1] == math.inf

    def test_bucket_index_edges(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(2.0 ** -30) == 0  # below range clamps low
        # an exact power of two lands on its own boundary
        assert HISTOGRAM_BUCKET_BOUNDS[bucket_index(1.0)] == 1.0
        assert HISTOGRAM_BUCKET_BOUNDS[bucket_index(1.5)] == 2.0
        # beyond the top boundary lands in the +inf bucket
        assert bucket_index(2.0 ** 50) == len(HISTOGRAM_BUCKET_BOUNDS) - 1

    def test_every_value_is_counted_by_its_bound(self):
        for value in (1e-9, 0.003, 1.0, 7.3, 2.0 ** 41):
            index = bucket_index(value)
            assert value <= HISTOGRAM_BUCKET_BOUNDS[index]
            if index > 0:
                assert value > HISTOGRAM_BUCKET_BOUNDS[index - 1]

    def test_round_trip_through_json(self):
        hist = Histogram()
        for value in (0.001, 0.2, 0.2, 3.4, 1e12):
            hist.observe(value)
        thawed = Histogram.from_dict(
            json.loads(json.dumps(hist.as_dict()))
        )
        assert thawed.counts == hist.counts
        assert thawed.sum == pytest.approx(hist.sum)
        assert thawed.count == hist.count == 5


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2)
        registry.set_gauge("g", 7)
        assert registry.counter("a") == 3
        assert registry.counter("missing") == 0
        assert registry.gauge("g") == 7
        assert registry.counters("a") == {"a": 3}

    def test_delta_since_reports_only_changes(self):
        registry = MetricsRegistry()
        registry.inc("inherited", 10)
        registry.observe("h", 1.0)
        snap = registry.snapshot()
        registry.inc("inherited", 2)
        registry.inc("fresh")
        registry.observe("h", 1.0)
        delta = registry.delta_since(snap)
        assert delta["counters"] == {"inherited": 2, "fresh": 1}
        assert delta["histograms"]["h"]["count"] == 1

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        a.observe("h", 0.5)
        b.observe("h", 0.5)
        b.set_gauge("g", 9)
        a.merge(b.data())
        assert a.counter("n") == 3
        assert a.histogram("h").count == 2
        assert a.gauge("g") == 9

    def test_fold_of_deltas_equals_single_registry(self):
        # the cross-process contract: parent.merge(worker.delta) must
        # reproduce what a single shared registry would have counted
        parent = MetricsRegistry()
        parent.inc("work", 5)
        worker = MetricsRegistry.from_dict(parent.data())  # fork copies
        snap = worker.snapshot()
        worker.inc("work", 3)
        worker.observe("h", 0.1)
        parent.merge(worker.delta_since(snap))
        assert parent.counter("work") == 8
        assert parent.histogram("h").count == 1

    def test_as_dict_round_trip_with_version(self):
        registry = MetricsRegistry()
        registry.inc("c", 4)
        registry.observe("h", 2.5)
        payload = json.loads(json.dumps(registry.as_dict()))
        assert payload["version"] == METRICS_VERSION
        assert payload["histogram_log2"] == [
            HISTOGRAM_LOG2_MIN, HISTOGRAM_LOG2_MAX
        ]
        thawed = MetricsRegistry.from_dict(payload)
        assert thawed.counter("c") == 4
        assert thawed.histogram("h").as_dict() == (
            registry.histogram("h").as_dict()
        )


# -- mode switch -------------------------------------------------------------


class TestModeResolution:
    def test_default_is_basic(self):
        assert resolve_telemetry() == MODE_BASIC

    def test_environment_selects(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "trace")
        assert resolve_telemetry() == MODE_TRACE

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "off")
        assert resolve_telemetry("trace") == MODE_TRACE

    @pytest.mark.parametrize("bad", ["loud", "ON AIR", "1"])
    def test_unknown_mode_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_telemetry(bad)

    def test_phase_timer_is_none_when_off(self, monkeypatch):
        assert phases_active() is not None
        assert telemetry_enabled()
        monkeypatch.setenv(ENV_VAR, MODE_OFF)
        assert phases_active() is None
        assert not telemetry_enabled()


# -- EngineStats as a registry view ------------------------------------------


class TestEngineStatsView:
    def test_attribute_api_backed_by_registry(self):
        registry = MetricsRegistry()
        stats = EngineStats(registry)
        assert stats.executed == 0
        stats.executed += 2
        stats.retries = 5
        assert registry.counter("engine.executed") == 2
        assert registry.counter("engine.retries") == 5
        assert stats.as_dict()["executed"] == 2

    def test_every_legacy_field_is_viewed(self):
        stats = EngineStats()
        for name in _STAT_FIELDS:
            assert getattr(stats, name) == 0

    def test_unknown_initial_field_rejected(self):
        with pytest.raises(TypeError):
            EngineStats(bogus=1)

    def test_engine_stats_share_the_run_registry(self):
        engine = Engine()
        engine.stats.retries += 1
        assert engine.telemetry.registry.counter("engine.retries") == 1


# -- spans and the Chrome trace rendering ------------------------------------


class TestSpans:
    def test_round_trip(self):
        span = AttemptSpan(job_hash="ab" * 32, label="cov:db2:stems",
                           kind="coverage", attempt=2, worker="worker-9",
                           queued=10.0, start=11.0, end=12.5, status="ok",
                           wall_s=1.5, cpu_s=1.4, detail={"kernel": "vector"})
        thawed = AttemptSpan.from_dict(
            json.loads(json.dumps(span.to_dict()))
        )
        assert thawed == span

    def test_chrome_trace_one_track_per_worker(self):
        spans = [
            AttemptSpan(job_hash="a" * 64, label="j1", kind="coverage",
                        worker="worker-1", start=100.0, end=101.0,
                        status="ok", wall_s=1.0),
            AttemptSpan(job_hash="b" * 64, label="j2", kind="coverage",
                        worker="worker-2", start=100.5, end=101.5,
                        status="ok", wall_s=1.0),
            AttemptSpan(job_hash="c" * 64, label="j3", kind="timing",
                        worker="worker-1", start=101.0, end=102.0,
                        status="failed", wall_s=1.0),
        ]
        trace = chrome_trace(spans, "run-1")
        events = trace["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        assert names == {"main", "worker-1", "worker-2"}
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 3
        # the two worker-1 spans share a tid; worker-2 has its own
        by_worker = {}
        for event, span in zip(slices, spans):
            by_worker.setdefault(span.worker, set()).add(event["tid"])
        assert all(len(tids) == 1 for tids in by_worker.values())
        assert by_worker["worker-1"] != by_worker["worker-2"]
        # timestamps are relative to the earliest start, microseconds
        assert min(e["ts"] for e in slices) == 0
        assert all(e["dur"] == pytest.approx(1e6) for e in slices)

    def test_unstarted_spans_are_skipped(self):
        spans = [AttemptSpan(job_hash="a" * 64, label="j", kind="coverage")]
        trace = chrome_trace(spans, "run")
        assert [e for e in trace["traceEvents"] if e["ph"] == "X"] == []


class TestRunTelemetryWrite:
    def _collect(self, mode) -> RunTelemetry:
        telemetry = RunTelemetry(mode=mode)
        _, jobs = build_graph()
        for job in jobs[:2]:
            telemetry.job_scheduled(job)
            telemetry.attempt_started(job.job_hash, 1)
            telemetry.job_finished(job, ok=True)
        return telemetry

    def test_off_writes_nothing(self, tmp_path):
        assert self._collect(MODE_OFF).write(tmp_path) == []
        assert list(tmp_path.iterdir()) == []

    def test_basic_writes_metrics_only(self, tmp_path):
        written = self._collect(MODE_BASIC).write(tmp_path, "run-1")
        assert [p.name for p in written] == [METRICS_NAME]
        payload = json.loads((tmp_path / METRICS_NAME).read_text())
        assert payload["run"] == "run-1"
        assert payload["mode"] == MODE_BASIC
        assert payload["counters"]["jobs.completed.coverage"] == 2
        assert payload["counters"]["walk.accesses.coverage"] == 2 * LENGTH
        assert len(payload["spans"]) == 2
        assert payload["histograms"]["job.wall_seconds"]["count"] == 2

    def test_trace_mode_adds_chrome_trace(self, tmp_path):
        written = self._collect(MODE_TRACE).write(tmp_path, "run-1")
        assert [p.name for p in written] == [METRICS_NAME, TRACE_NAME]
        trace = json.loads((tmp_path / TRACE_NAME).read_text())
        assert len([e for e in trace["traceEvents"] if e["ph"] == "X"]) == 2

    def test_open_spans_written_as_open(self, tmp_path):
        telemetry = RunTelemetry(mode=MODE_BASIC)
        _, jobs = build_graph()
        telemetry.job_scheduled(jobs[0])
        telemetry.attempt_started(jobs[0].job_hash, 1)
        telemetry.write(tmp_path)  # crash-shaped: span never closed
        payload = json.loads((tmp_path / METRICS_NAME).read_text())
        assert [s["status"] for s in payload["spans"]] == ["open"]

    def test_counters_always_fold_even_when_off(self):
        # EngineStats reads jobs.* through the same registry, so the
        # path-invariant counters must not depend on the mode
        telemetry = RunTelemetry(mode=MODE_OFF)
        _, jobs = build_graph()
        telemetry.job_finished(jobs[0], ok=True)
        assert telemetry.registry.counter("jobs.completed.coverage") == 1
        assert telemetry.spans == []


# -- cross-process folding parity --------------------------------------------


def _invariant_counters(engine: Engine) -> "dict[str, float]":
    """The counters every execution path must agree on byte-for-byte.

    (store_hits / generation_passes legitimately differ between replay
    and broadcast, and phase seconds are wall time — only the job
    outcome and access counters are path-invariant.)
    """
    registry = engine.telemetry.registry
    return {**registry.counters("jobs."), **registry.counters("walk.")}


class TestFoldingParity:
    def test_serial_pool_broadcast_fold_identically(self, tmp_path):
        baseline = None
        for name, kwargs in (
            ("serial", dict(jobs=1)),
            ("pool", dict(jobs=2)),
            ("broadcast", dict(jobs=2, broadcast="on")),
        ):
            graph, _ = build_graph()
            engine = Engine(trace_store=tmp_path / f"store-{name}",
                            **kwargs)
            engine.run(graph)
            counters = _invariant_counters(engine)
            assert counters["jobs.completed.coverage"] == 6
            assert counters["walk.accesses.coverage"] == 6 * LENGTH
            if baseline is None:
                baseline = counters
            else:
                assert counters == baseline, name

    def test_pool_worker_phase_timers_fold_into_parent(self, tmp_path):
        graph, _ = build_graph()
        engine = Engine(jobs=2, trace_store=tmp_path / "store")
        engine.run(graph)
        registry = engine.telemetry.registry
        walk = registry.counter("phase.walk_step.seconds")
        assert walk > 0
        assert registry.counter("phase.walk_step.calls") > 0
        assert registry.counter("phase.finalize.calls") > 0

    def test_cached_jobs_counted_as_cached(self, tmp_path):
        graph, _ = build_graph()
        Engine(cache_dir=tmp_path / "cache").run(graph)
        graph2, _ = build_graph()
        engine = Engine(cache_dir=tmp_path / "cache")
        engine.run(graph2)
        counters = _invariant_counters(engine)
        assert counters["jobs.cached.coverage"] == 6
        assert "jobs.completed.coverage" not in counters

    def test_phase_timers_off_leave_registry_untouched(self, monkeypatch,
                                                       tmp_path):
        monkeypatch.setenv(ENV_VAR, MODE_OFF)
        before = process_registry().snapshot()
        graph, _ = build_graph()
        engine = Engine(trace_store=tmp_path / "store")
        engine.run(graph)
        delta = process_registry().delta_since(before)
        assert not any(name.startswith("phase.")
                       for name in delta["counters"])


# -- runner integration ------------------------------------------------------


def _runner_argv(tmp_path, *extra: str) -> "list[str]":
    return [
        "fig7", "--small", "--workloads", "apache",
        "--cache-dir", str(tmp_path / "cache"), *extra,
    ]


def _run_dir(tmp_path) -> Path:
    return find_run(runs_root(tmp_path / "cache"), "last").directory


class TestRunnerIntegration:
    def test_basic_writes_metrics_json(self, tmp_path, capsys):
        assert runner_main(_runner_argv(tmp_path)) == 0
        run_dir = _run_dir(tmp_path)
        assert (run_dir / METRICS_NAME).is_file()
        assert not (run_dir / TRACE_NAME).exists()
        err = capsys.readouterr().err
        assert "[engine:" in err
        assert METRICS_NAME in err

    def test_trace_mode_writes_trace_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_VAR, MODE_TRACE)
        assert runner_main(_runner_argv(tmp_path)) == 0
        trace = json.loads((_run_dir(tmp_path) / TRACE_NAME).read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_off_mode_writes_nothing_keeps_oneliner(self, tmp_path,
                                                    monkeypatch, capsys):
        monkeypatch.setenv(ENV_VAR, MODE_OFF)
        assert runner_main(_runner_argv(tmp_path)) == 0
        run_dir = _run_dir(tmp_path)
        assert not (run_dir / METRICS_NAME).exists()
        err = capsys.readouterr().err
        # the legacy stderr contract survives: one engine line, no
        # telemetry notes
        assert "[engine:" in err
        assert "telemetry" not in err

    def test_invalid_mode_exits_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(ENV_VAR, "loud")
        assert runner_main(_runner_argv(tmp_path)) == 2
        assert "telemetry" in capsys.readouterr().err

    def test_export_stdout_is_pure_table(self, tmp_path, capsys):
        # satellite 1: stats/notes go to stderr, never interleaved with
        # the exported table on stdout
        assert runner_main(_runner_argv(
            tmp_path, "--export", "json",
            "--export-dir", str(tmp_path / "out"),
        )) == 0
        captured = capsys.readouterr()
        assert "[engine:" not in captured.out
        assert "rows exported" not in captured.out
        assert "rows exported" in captured.err


# -- repro-report ------------------------------------------------------------


class TestReportTool:
    def test_clean_run(self, tmp_path, capsys):
        assert runner_main(_runner_argv(tmp_path)) == 0
        capsys.readouterr()
        rc = report_main(["last", "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out
        assert "repetition" in out       # the per-kind table
        assert "phase breakdown" in out
        assert "journal-only" not in out

    def test_json_mode(self, tmp_path, capsys):
        assert runner_main(_runner_argv(tmp_path)) == 0
        capsys.readouterr()
        assert report_main([
            "last", "--cache-dir", str(tmp_path / "cache"), "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "clean"
        assert report["jobs"]["scheduled"] == 1
        assert report["jobs"]["completed"] == 1
        assert report["kinds"]["repetition"]["accesses"] > 0
        assert report["timings_from"] == "spans"

    def test_degraded_run_shows_faults(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv(FAULT_ENV, "job_fail:1")
        assert runner_main(_runner_argv(tmp_path, "--retries", "2")) == 1
        capsys.readouterr()
        assert report_main([
            "last", "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        out = capsys.readouterr().out
        assert "degraded" in out
        assert "faults:" in out

    def test_crashed_run_falls_back_to_journal(self, tmp_path, capsys):
        # an engine run whose process "died": journal unsealed, no
        # metrics.json (the runner only writes it at run end)
        root = runs_root(tmp_path / "cache")
        graph, jobs = build_graph()
        journal = RunJournal.create(
            root, header={"argv": ["fig9"], "experiments": ["fig9"]},
            fsync=False,
        )
        with Engine(cache_dir=tmp_path / "cache", journal=journal) as engine:
            engine.run(graph)
        journal.close()  # no finish(): unsealed
        manifest_path = root / journal.run_id / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["pid"] = 2 ** 22 + 1  # beyond any real pid here
        manifest_path.write_text(json.dumps(manifest))

        rc = report_main([journal.run_id,
                          "--cache-dir", str(tmp_path / "cache")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "crashed" in out
        assert "journal-only" in out
        assert f"{len(jobs)} scheduled" in out
        # journal t-timestamps still give wall times
        assert "(wall times from journal)" in out

    def test_resumed_run_pair(self, tmp_path, capsys):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env.pop(FAULT_ENV, None)
        env.pop(ENV_VAR, None)
        argv = [
            sys.executable, "-m", "repro.experiments", "fig9", "--small",
            "--workloads", "apache", "em3d", "--length", "2000",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace-store", str(tmp_path / "traces"),
        ]
        killed = subprocess.run(
            argv, env={**env, FAULT_ENV: "kill_at_job@index=5"},
            capture_output=True, text=True,
        )
        assert killed.returncode == KILL_EXIT_CODE, killed.stderr
        crashed = find_run(runs_root(tmp_path / "cache"), "last")

        resumed = subprocess.run(
            argv + ["--resume", "last"], env=env,
            capture_output=True, text=True,
        )
        assert resumed.returncode == 0, resumed.stderr

        # the crashed run reports journal-only and names its successor
        assert report_main([crashed.run_id,
                            "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "crashed" in out and "resumed by" in out
        assert "journal-only" in out
        # the resuming run has full telemetry and cache-sourced jobs
        assert report_main(["last",
                            "--cache-dir", str(tmp_path / "cache"),
                            "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["resumed_from"] == crashed.run_id
        assert report["telemetry"] is True
        assert report["jobs"]["from_cache"] > 0
        assert report["jobs"]["incomplete"] == 0

    def test_unknown_run_exits_2(self, tmp_path, capsys):
        (tmp_path / "cache").mkdir()
        assert report_main(
            ["nope", "--cache-dir", str(tmp_path / "cache")]
        ) == 2
        assert "repro-report" in capsys.readouterr().err


# -- fsck: telemetry files are derived data, never damage --------------------


class TestFsckTelemetry:
    def _run(self, tmp_path) -> Path:
        assert runner_main(_runner_argv(tmp_path)) == 0
        return _run_dir(tmp_path)

    def test_valid_telemetry_is_silent(self, tmp_path, capsys):
        self._run(tmp_path)
        capsys.readouterr()
        assert fsck_main(["--cache-dir", str(tmp_path / "cache")]) == 0
        assert "telemetry" not in capsys.readouterr().out

    def test_torn_metrics_is_a_note_not_damage(self, tmp_path, capsys):
        run_dir = self._run(tmp_path)
        (run_dir / METRICS_NAME).write_text('{"torn')
        capsys.readouterr()
        assert fsck_main(["--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "[note] telemetry" in out
        assert "0 damaged" in out
        assert (run_dir / METRICS_NAME).is_file()  # untouched

    def test_repair_quarantines_unparseable(self, tmp_path, capsys):
        run_dir = self._run(tmp_path)
        (run_dir / METRICS_NAME).write_text('{"torn')
        capsys.readouterr()
        assert fsck_main(
            ["--cache-dir", str(tmp_path / "cache"), "--repair"]
        ) == 0
        out = capsys.readouterr().out
        assert "[repaired] telemetry" in out
        assert not (run_dir / METRICS_NAME).exists()
        assert list((run_dir / "quarantine").iterdir())

    def test_orphaned_telemetry_noted(self, tmp_path, capsys):
        orphan = tmp_path / "cache" / "runs" / "ghost"
        orphan.mkdir(parents=True)
        (orphan / METRICS_NAME).write_text("{}")
        capsys.readouterr()
        fsck_main(["--cache-dir", str(tmp_path / "cache")])
        assert "orphaned" in capsys.readouterr().out
