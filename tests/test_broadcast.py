"""Broadcast plane tests (:mod:`repro.tracestore.broadcast`).

The anchor invariant: under ``--jobs N`` with a trace store, jobs
sharing a trace key consume ONE reader process's walk over a
shared-memory ring — and the results are **bit-identical** to
independent replay (``--broadcast off``) in every scenario: healthy
runs, ring wraparound and slow-consumer backpressure, reader death
mid-stream (consumers degrade to replay), injected worker crashes and
trace corruption, and kill/interrupt → ``--resume``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
import zlib
from pathlib import Path

import pytest

from repro.engine import Engine, JobGraph, RetryPolicy
from repro.engine.faultinject import ENV_VAR as FAULT_ENV, KILL_EXIT_CODE
from repro.experiments import fig9, fig10
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EXPERIMENTS
from repro.kernels import CHUNK_RECORDS
from repro.tracestore import TraceStore, read_accesses
from repro.tracestore.broadcast import (
    ENV_VAR as BROADCAST_ENV,
    KIND_DATA,
    KIND_DONE,
    MODE_AUTO,
    ChunkCursor,
    ChunkRing,
    replay_fallback,
    resolve_broadcast,
)

SRC = Path(__file__).resolve().parent.parent / "src"

#: 2 full chunks + a partial third: exercises multi-slot streams
LENGTH = 2 * CHUNK_RECORDS + 1_808
KEY = ("db2", LENGTH, 7)


@pytest.fixture(autouse=True)
def _no_ambient_overrides(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)
    monkeypatch.delenv(BROADCAST_ENV, raising=False)


# -- mode resolution ----------------------------------------------------------


class TestResolveBroadcast:
    def test_default_is_auto(self):
        assert resolve_broadcast(None) == MODE_AUTO

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(BROADCAST_ENV, "off")
        assert resolve_broadcast("on") == "on"

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv(BROADCAST_ENV, "off")
        assert resolve_broadcast(None) == "off"

    @pytest.mark.parametrize("bad", ["turbo", "ON AIR", "1"])
    def test_unknown_mode_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_broadcast(bad)

    def test_engine_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            Engine(broadcast="bogus")


# -- the ring itself (threads stand in for processes) -------------------------


def _payloads(count: int, size: int = 1_000) -> "list[bytes]":
    return [bytes([i % 251]) * (size + i) for i in range(count)]


def _drain(consumer) -> "tuple[list[bytes], int]":
    """Consume until DONE; returns (payloads, done_record_count)."""
    got = []
    while True:
        kind, first_record, payload, crc = consumer.next_item()
        if kind == KIND_DONE:
            return got, first_record
        assert kind == KIND_DATA
        assert zlib.crc32(payload) == crc
        got.append(payload)


class TestChunkRing:
    def test_wraparound_delivers_in_order_to_every_consumer(self):
        payloads = _payloads(20)  # 20 chunks through a 4-slot ring
        ring = ChunkRing(consumers=3, slots=4, slot_payload=2_000)
        received = {}

        def consume(index, delay):
            consumer = ring.consumer(index)
            got = []
            while True:
                kind, first, payload, crc = consumer.next_item()
                if kind == KIND_DONE:
                    received[index] = (got, first)
                    return
                assert zlib.crc32(payload) == crc
                got.append((first, payload))
                time.sleep(delay)

        threads = [
            threading.Thread(target=consume, args=(i, delay))
            for i, delay in enumerate([0.0, 0.002, 0.01])  # one slow
        ]
        for thread in threads:
            thread.start()
        producer = ring.producer()
        for i, payload in enumerate(payloads):
            assert producer.send(i * 10, payload, zlib.crc32(payload))
        producer.finish(12_345)
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        ring.close()
        expected = [(i * 10, p) for i, p in enumerate(payloads)]
        for index in range(3):
            got, done_count = received[index]
            assert got == expected, f"consumer {index} saw a torn stream"
            assert done_count == 12_345

    def test_slow_consumer_exerts_backpressure(self):
        ring = ChunkRing(consumers=1, slots=4, slot_payload=2_000)
        payloads = _payloads(7)
        producer = ring.producer()
        sent = []

        def produce():
            for i, payload in enumerate(payloads):
                producer.send(i, payload, zlib.crc32(payload))
                sent.append(i)
            producer.finish(len(payloads))

        thread = threading.Thread(target=produce)
        thread.start()
        deadline = time.monotonic() + 10
        while len(sent) < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.5)
        # nobody is consuming: the producer must stall at ring capacity
        # instead of overwriting slots the consumer still needs
        assert len(sent) == 4
        got, done_count = _drain(ring.consumer(0))
        thread.join(timeout=10)
        assert len(sent) == len(payloads)
        assert got == payloads
        assert done_count == len(payloads)
        ring.close()

    def test_detached_consumer_never_blocks_the_producer(self):
        ring = ChunkRing(consumers=2, slots=2, slot_payload=2_000)
        payloads = _payloads(6)
        ring.detach(1)  # consumer 1 is dead before the stream starts
        producer = ring.producer()
        received = {}
        thread = threading.Thread(
            target=lambda: received.update({0: _drain(ring.consumer(0))})
        )
        thread.start()
        for i, payload in enumerate(payloads):
            assert producer.send(i, payload, zlib.crc32(payload))
        producer.finish(len(payloads))
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert received[0][0] == payloads
        ring.close()


# -- the cursor's degrade ladder ---------------------------------------------


class TestChunkCursor:
    def test_aborted_stream_degrades_to_replay(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        store.record(KEY)
        expected = list(read_accesses(store.path_for(KEY)))

        ring = ChunkRing(consumers=1, slots=4)
        producer = ring.producer()
        producer.fail()  # the reader died before sending anything
        cursor = ChunkCursor(
            ring.consumer(0), replay_fallback(str(tmp_path / "store"), KEY)
        )
        assert list(cursor) == expected
        assert cursor.degraded and cursor.complete
        assert cursor.accounting() == {
            "broadcast_chunks": 0, "bytes_shared": 0, "broadcast_fallbacks": 1,
        }
        ring.close()

    def test_cold_fallback_regenerates_from_cursor_position(self, tmp_path):
        # no stored entry at all: the fallback regenerates and skips
        # the records the cursor already consumed
        fallback = replay_fallback(str(tmp_path / "empty"), KEY)
        from repro.workloads.registry import stream_workload

        expected = [a for a in stream_workload(*KEY) if a.index >= 5_000]
        got = [a for chunk in fallback(5_000) for a in chunk.accesses]
        assert got == expected
        assert fallback.stats["generated"] == 1


# -- chunk-index metadata without payload decode ------------------------------


class TestOpenEntry:
    def test_spans_cover_the_entry(self, tmp_path):
        store = TraceStore(tmp_path)
        store.record(KEY)
        info = store.open_entry(KEY)
        count = sum(1 for _ in read_accesses(store.path_for(KEY)))
        assert info.record_count == count
        assert info.chunk_count == (count + CHUNK_RECORDS - 1) // CHUNK_RECORDS
        spans = info.record_spans()
        assert spans[0] == (0, CHUNK_RECORDS)
        assert spans[-1][1] == count
        # spans tile the record range exactly
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start

    def test_missing_key_raises(self, tmp_path):
        from repro.tracestore import TraceFormatError

        with pytest.raises(TraceFormatError):
            TraceStore(tmp_path).open_entry(KEY)


# -- engine integration: the one-walk cost model ------------------------------


def _config() -> ExperimentConfig:
    config = ExperimentConfig.small()
    config.trace_length = 6_000
    config.workloads = ["db2", "qry2"]
    return config


def _declare() -> JobGraph:
    graph = JobGraph()
    config = _config()
    fig9.declare(config, graph)
    fig10.declare(config, graph)
    return graph


def _sweep(store, jobs, broadcast, **engine_kwargs):
    engine = Engine(jobs=jobs, trace_store=store, broadcast=broadcast,
                    **engine_kwargs)
    return dict(engine.run(_declare())), engine.stats


class TestBroadcastSweep:
    def test_warm_sweep_walks_each_key_exactly_once(self, tmp_path):
        store = tmp_path / "store"
        off, _ = _sweep(store, 4, "off")  # also warms the store
        on, stats = _sweep(store, 4, "on")
        assert on == off
        jobs = list(_declare())
        keys = {job.trace_key for job in jobs}
        assert stats.generation_passes == 0
        assert stats.store_hits == len(keys)  # ONE walk per key
        assert stats.broadcast_waves == len(keys)
        assert stats.passes_saved == len(jobs)
        assert stats.broadcast_chunks > 0 and stats.bytes_shared > 0
        assert stats.broadcast_fallbacks == 0
        assert not stats.degraded

    def test_cold_sweep_costs_one_generation_per_key(self, tmp_path):
        off, _ = _sweep(tmp_path / "off", 4, "off")
        on, stats = _sweep(tmp_path / "on", 4, "on")
        assert on == off
        keys = {job.trace_key for job in _declare()}
        assert stats.generation_passes == len(keys)
        assert stats.store_hits == 0
        assert stats.broadcast_waves == len(keys)

    def test_telemetry_counters_broadcast_equals_off(self, tmp_path):
        # the bundle consumers ship one metrics delta per bundle; the
        # folded path-invariant counters must match independent replay
        def invariant(store, broadcast):
            engine = Engine(jobs=4, trace_store=store, broadcast=broadcast)
            engine.run(_declare())
            registry = engine.telemetry.registry
            return engine, {**registry.counters("jobs."),
                            **registry.counters("walk.")}

        _, off = invariant(tmp_path / "off", "off")
        engine, on = invariant(tmp_path / "on", "on")
        assert on == off
        # the ring-wait accounting came home in the consumer envelopes
        assert engine.telemetry.registry.counter(
            "broadcast.ring_wait_seconds"
        ) > 0

    def test_reader_death_degrades_bit_identically(self, tmp_path,
                                                   monkeypatch):
        store = tmp_path / "store"
        off, _ = _sweep(store, 2, "off")
        monkeypatch.setenv(FAULT_ENV, "reader_kill@after=1")
        on, stats = _sweep(store, 2, "on")
        assert on == off
        assert stats.broadcast_fallbacks > 0
        assert stats.degraded
        assert not any(
            hasattr(v, "summary") for v in on.values()
        ), "reader death must never fail a job"

    def test_worker_crash_under_broadcast(self, tmp_path, monkeypatch):
        store = tmp_path / "store"
        off, _ = _sweep(store, 2, "off")
        monkeypatch.setenv(
            FAULT_ENV, "worker_crash:0.5@seed=3@max_attempt=1"
        )
        on, stats = _sweep(
            store, 2, "on", retry=RetryPolicy(attempts=3, backoff=0.01)
        )
        assert on == off
        assert stats.retries > 0 or stats.requeued > 0

    def test_trace_corrupt_under_broadcast(self, tmp_path, monkeypatch):
        clean, _ = _sweep(tmp_path / "clean", 2, "off")
        monkeypatch.setenv(FAULT_ENV, "trace_corrupt:1")
        retry = RetryPolicy(attempts=4, backoff=0.01)
        # cold run: readers record during the walk; the published
        # entries are damaged *after* the clean stream was broadcast
        first, _ = _sweep(tmp_path / "store", 2, "on", retry=retry)
        assert first == clean
        # warm run over the damaged store: the reader's pre-broadcast
        # CRC check aborts the wave, the entry is quarantined, and
        # consumers converge through fallback regeneration
        second, stats = _sweep(tmp_path / "store", 2, "on", retry=retry)
        assert second == clean
        assert stats.degraded


class TestParityEveryExperiment:
    """All nine experiments, broadcast vs independent replay."""

    @pytest.fixture(scope="class")
    def shared_store(self, tmp_path_factory):
        # one warm store for every case: the first run records, the
        # rest replay/broadcast the same entries
        return str(tmp_path_factory.mktemp("broadcast-store"))

    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_experiment_parity(self, name, jobs, shared_store):
        module = EXPERIMENTS[name]
        config = _config()
        off = module.run(config, engine=Engine(
            jobs=jobs, trace_store=shared_store, broadcast="off"
        ))
        on = module.run(config, engine=Engine(
            jobs=jobs, trace_store=shared_store, broadcast="on"
        ))
        assert on == off


# -- durable runs with broadcast active ---------------------------------------


def _runner_env(**extra: str) -> "dict[str, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(FAULT_ENV, None)
    env.pop(BROADCAST_ENV, None)
    env.update(extra)
    return env


def _sweep_args(tmp_path: Path, cache: str) -> "list[str]":
    return [
        sys.executable, "-m", "repro.experiments", "fig9", "--small",
        "--workloads", "apache", "em3d", "--length", "2000",
        "--jobs", "2", "--broadcast", "on",
        "--cache-dir", str(tmp_path / cache),
        "--trace-store", str(tmp_path / "traces"),
    ]


def _wait_for_journal(cache_dir: Path, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if list((cache_dir / "runs").glob("*/journal.jsonl")):
            return
        time.sleep(0.05)
    raise AssertionError("runner never created a journal")


class TestBroadcastDurability:
    def _baseline(self, tmp_path: Path) -> bytes:
        clean = subprocess.run(
            _sweep_args(tmp_path, "clean-cache") + [
                "--export", "json",
                "--export-dir", str(tmp_path / "clean-out"),
            ],
            env=_runner_env(), capture_output=True, text=True,
        )
        assert clean.returncode == 0, clean.stderr
        return (tmp_path / "clean-out" / "fig9.json").read_bytes()

    def test_kill_then_resume_is_bit_identical(self, tmp_path):
        baseline = self._baseline(tmp_path)
        # pre-warm half the sweep so the kill lands on a run with prior
        # durable state (cache-sourced completions on resume)
        warm = subprocess.run(
            [a if a != "em3d" else "apache"
             for a in _sweep_args(tmp_path, "cache")],
            env=_runner_env(), capture_output=True, text=True,
        )
        assert warm.returncode == 0, warm.stderr
        killed = subprocess.run(
            _sweep_args(tmp_path, "cache"),
            env=_runner_env(**{FAULT_ENV: "kill_at_job@index=2"}),
            capture_output=True, text=True,
        )
        assert killed.returncode == KILL_EXIT_CODE, killed.stderr
        resumed = subprocess.run(
            _sweep_args(tmp_path, "cache") + [
                "--resume", "last",
                "--export", "json",
                "--export-dir", str(tmp_path / "resume-out"),
            ],
            env=_runner_env(), capture_output=True, text=True,
        )
        assert resumed.returncode == 0, resumed.stderr
        recovered = (tmp_path / "resume-out" / "fig9.json").read_bytes()
        assert recovered == baseline

    def test_sigint_mid_wave_resumes_bit_identically(self, tmp_path):
        baseline = self._baseline(tmp_path)
        # stall every consumer so the SIGINT lands mid-wave, with the
        # reader and consumer processes alive
        proc = subprocess.Popen(
            _sweep_args(tmp_path, "cache"),
            env=_runner_env(**{FAULT_ENV: "stall:1@secs=1"}),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        )
        _wait_for_journal(tmp_path / "cache")
        time.sleep(0.6)
        proc.send_signal(signal.SIGINT)
        stderr = proc.communicate(timeout=120)[1]
        assert proc.returncode == 3, stderr
        resumed = subprocess.run(
            _sweep_args(tmp_path, "cache") + [
                "--resume", "last",
                "--export", "json",
                "--export-dir", str(tmp_path / "resume-out"),
            ],
            env=_runner_env(), capture_output=True, text=True,
        )
        assert resumed.returncode == 0, resumed.stderr
        recovered = (tmp_path / "resume-out" / "fig9.json").read_bytes()
        assert recovered == baseline
