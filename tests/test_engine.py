"""Tests for the job-graph simulation engine: hashing, dedup, caching,
parallel-vs-serial equality, and the streaming trace layer it feeds on."""

import pytest

from repro.common.config import SystemConfig
from repro.engine import (
    Engine,
    JobGraph,
    PrefetcherSpec,
    ResultCache,
    SimJob,
    execute_job,
)
from repro.experiments import fig9
from repro.experiments.config import ExperimentConfig
from repro.sim.driver import SimulationDriver
from repro.workloads.registry import make_workload, stream_workload

LENGTH = 8_000
SEED = 11


@pytest.fixture(scope="module")
def system() -> SystemConfig:
    return SystemConfig.tiny()


def coverage_job(system, kind="none", workload="db2", **overrides) -> SimJob:
    spec = PrefetcherSpec.make(kind, **overrides) if kind != "none" else None
    return SimJob.make("coverage", workload, LENGTH, SEED, system, spec)


class TestJobHashing:
    def test_hash_is_stable_and_content_based(self, system):
        a = coverage_job(system, "stems")
        b = coverage_job(system, "stems")
        assert a is not b
        assert a.job_hash == b.job_hash

    def test_hash_distinguishes_every_field(self, system):
        base = coverage_job(system, "stems")
        assert base.job_hash != coverage_job(system, "tms").job_hash
        assert base.job_hash != coverage_job(system, "stems", workload="qry2").job_hash
        assert base.job_hash != coverage_job(system, "stems", lookahead=16).job_hash
        other_system = SystemConfig.scaled()
        assert base.job_hash != coverage_job(other_system, "stems").job_hash
        timing = SimJob.make("timing", "db2", LENGTH, SEED, system,
                             PrefetcherSpec.make("stems"))
        assert base.job_hash != timing.job_hash

    def test_override_order_is_canonical(self, system):
        a = PrefetcherSpec.make("stems", lookahead=4, rmob_entries=1024)
        b = PrefetcherSpec.make("stems", rmob_entries=1024, lookahead=4)
        assert a == b

    def test_unknown_kind_rejected(self, system):
        with pytest.raises(ValueError):
            SimJob.make("bogus", "db2", LENGTH, SEED, system)

    def test_unknown_prefetcher_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown prefetcher kind"):
            PrefetcherSpec.make("stims")

    def test_overrides_rejected_for_unconfigurable_kinds(self):
        with pytest.raises(ValueError, match="does not take config overrides"):
            PrefetcherSpec.make("ghb", depth=8)
        # the configurable kinds still accept them
        PrefetcherSpec.make("stems", lookahead=16)


class TestJobGraph:
    def test_dedup_returns_canonical_instance(self, system):
        graph = JobGraph()
        first = graph.add(coverage_job(system))
        second = graph.add(coverage_job(system))
        assert first is second
        assert len(graph) == 1
        assert graph.requested == 2
        assert graph.deduplicated == 1

    def test_distinct_jobs_kept(self, system):
        graph = JobGraph()
        graph.add(coverage_job(system, "tms"))
        graph.add(coverage_job(system, "sms"))
        assert len(graph) == 2
        assert graph.deduplicated == 0


class TestEngineCache:
    def test_miss_then_hit(self, system, tmp_path):
        graph = JobGraph()
        job = graph.add(coverage_job(system, "stride"))
        first = Engine(cache_dir=tmp_path)
        r1 = first.run(graph)
        assert first.stats.executed == 1
        assert first.stats.cache_hits == 0

        second = Engine(cache_dir=tmp_path)
        r2 = second.run(graph)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == 1
        assert r2[job] == r1[job]

    def test_no_cache_dir_always_executes(self, system):
        graph = JobGraph()
        graph.add(coverage_job(system, "stride"))
        engine = Engine()
        engine.run(graph)
        engine.run(graph)
        assert engine.stats.executed == 2

    def test_corrupt_entry_is_a_miss(self, system, tmp_path):
        graph = JobGraph()
        job = graph.add(coverage_job(system, "stride"))
        Engine(cache_dir=tmp_path).run(graph)
        cache = ResultCache(tmp_path)
        cache.path_for(job).write_text("{not json")
        engine = Engine(cache_dir=tmp_path)
        engine.run(graph)
        assert engine.stats.executed == 1

    def test_stale_package_version_is_a_miss(self, system, tmp_path):
        import json

        graph = JobGraph()
        job = graph.add(coverage_job(system, "stride"))
        Engine(cache_dir=tmp_path).run(graph)
        cache = ResultCache(tmp_path)
        path = cache.path_for(job)
        document = json.loads(path.read_text())
        document["repro"] = "0.0.0-older"
        path.write_text(json.dumps(document))
        engine = Engine(cache_dir=tmp_path)
        engine.run(graph)
        assert engine.stats.executed == 1

    def test_use_cache_false_disables(self, system, tmp_path):
        graph = JobGraph()
        graph.add(coverage_job(system, "stride"))
        Engine(cache_dir=tmp_path).run(graph)
        engine = Engine(cache_dir=tmp_path, use_cache=False)
        engine.run(graph)
        assert engine.stats.executed == 1


class TestCacheSharding:
    def test_entries_live_in_two_hex_shards(self, system, tmp_path):
        graph = JobGraph()
        job = graph.add(coverage_job(system, "stride"))
        Engine(cache_dir=tmp_path).run(graph)
        path = ResultCache(tmp_path).path_for(job)
        assert path.is_file()
        assert path.parent.name == job.job_hash[:2]
        assert path.parent.parent == tmp_path

    def test_flat_legacy_entry_migrates_transparently(self, system, tmp_path):
        graph = JobGraph()
        job = graph.add(coverage_job(system, "stride"))
        first = Engine(cache_dir=tmp_path)
        result = first.run(graph)[job]
        cache = ResultCache(tmp_path)
        sharded = cache.path_for(job)
        flat = tmp_path / sharded.name  # demote to the pre-sharding layout
        sharded.rename(flat)

        engine = Engine(cache_dir=tmp_path)
        assert engine.run(graph)[job] == result
        assert engine.stats.cache_hits == 1
        assert engine.stats.executed == 0
        assert sharded.is_file() and not flat.exists()

    def test_readonly_legacy_cache_served_in_place(
        self, system, tmp_path, monkeypatch
    ):
        import shutil

        graph = JobGraph()
        job = graph.add(coverage_job(system, "stride"))
        result = Engine(cache_dir=tmp_path).run(graph)[job]
        cache = ResultCache(tmp_path)
        sharded = cache.path_for(job)
        flat = tmp_path / sharded.name
        sharded.rename(flat)
        shutil.rmtree(sharded.parent)

        def denied(*args, **kwargs):
            raise PermissionError(13, "read-only cache")

        # a read-only cache directory: migration must fail gracefully
        # and the flat entry must still be served from where it is
        monkeypatch.setattr("repro.engine.cache.os.replace", denied)
        assert cache.load(job) == result
        assert flat.is_file() and not sharded.exists()

    def test_sqlite_index_catalogs_entries(self, system, tmp_path):
        cache = ResultCache(tmp_path, index=True)
        job = coverage_job(system, "stride")
        cache.store(job, execute_job(job))
        assert list(cache.indexed_hashes()) == [job.job_hash]
        assert cache.entry_count() == 1
        assert (tmp_path / "index.sqlite").is_file()
        # the index is optional: a plain cache still counts via shards
        assert ResultCache(tmp_path).entry_count() == 1


class TestParallelEqualsSerial:
    def test_coverage_results_identical(self, system):
        graph = JobGraph()
        jobs = [
            graph.add(coverage_job(system, kind, workload=workload))
            for workload in ("db2", "qry2")
            for kind in ("none", "stride", "stems")
        ]
        serial = Engine(jobs=1).run(graph)
        parallel = Engine(jobs=2).run(graph)
        for job in jobs:
            assert parallel[job] == serial[job], job.label()

    def test_fig9_through_parallel_engine(self):
        cfg = ExperimentConfig.small()
        cfg.trace_length = LENGTH
        cfg.workloads = ["db2"]
        serial = fig9.run(cfg, engine=Engine(jobs=1))
        parallel = fig9.run(cfg, engine=Engine(jobs=2))
        assert serial == parallel

    def test_telemetry_counters_fold_identically(self, system):
        # the pool workers ship metric deltas home in their result
        # envelopes; the folded path-invariant counters must match what
        # the serial path counts in-process
        def sweep(jobs):
            graph = JobGraph()
            for workload in ("db2", "qry2"):
                for kind in ("none", "stride", "stems"):
                    graph.add(coverage_job(system, kind, workload=workload))
            engine = Engine(jobs=jobs)
            engine.run(graph)
            registry = engine.telemetry.registry
            return {**registry.counters("jobs."),
                    **registry.counters("walk.")}

        assert sweep(1) == sweep(2)


class TestExecuteJobKinds:
    def test_each_kind_returns_its_result_type(self, system):
        cfg = ExperimentConfig.small()
        cfg.trace_length = LENGTH
        cfg.seed = SEED
        cfg.system = system
        jobs = {
            "coverage": cfg.coverage_job("db2", "stride"),
            "timing": cfg.timing_job("db2", "stride"),
            "joint": cfg.joint_job("db2"),
            "repetition": cfg.repetition_job("db2"),
            "correlation": cfg.correlation_job("db2"),
        }
        results = {name: execute_job(job) for name, job in jobs.items()}
        assert results["coverage"].accesses >= LENGTH
        assert results["timing"].cycles > 0
        assert 0.99 < sum((results["joint"].both, results["joint"].tms_only,
                           results["joint"].sms_only, results["joint"].neither)) < 1.01
        all_misses, triggers = results["repetition"]
        assert all_misses.total > 0 and triggers.total > 0
        assert results["correlation"].total_pairs >= 0


class TestStreamingTraces:
    def test_stream_materialize_matches_generate(self):
        materialized = make_workload("qry2").generate(LENGTH, seed=SEED)
        source = stream_workload("qry2", LENGTH, seed=SEED)
        assert source.materialize().accesses == materialized.accesses

    def test_source_is_reiterable(self):
        source = stream_workload("qry2", LENGTH, seed=SEED)
        first = list(source)
        second = list(source)
        assert first == second

    def test_driver_accepts_streaming_source(self, system):
        trace = make_workload("db2").generate(LENGTH, seed=SEED)
        source = stream_workload("db2", LENGTH, seed=SEED)
        on_trace = SimulationDriver(system, None).run(trace)
        on_source = SimulationDriver(system, None).run(source)
        assert on_source == on_trace

    def test_memory_access_has_slots(self):
        access = make_workload("db2").generate(100, seed=1).accesses[0]
        with pytest.raises((AttributeError, TypeError)):
            access.extra = 1
