"""Tests for the synthetic workload suite: determinism and the structural
properties each generator must exhibit (they are the substitution for the
paper's applications, so the structure *is* the spec)."""

import pytest

from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.trace.tracestats import summarize_trace
from repro.workloads.base import ComposedWorkload
from repro.workloads.components import (
    ChainTraversalComponent,
    GatherComponent,
    GraphTraversalComponent,
    GridSweepComponent,
    NoiseComponent,
    ScanComponent,
)
from repro.workloads.registry import (
    WORKLOAD_CATEGORIES,
    WORKLOAD_NAMES,
    make_workload,
)


class TestRegistry:
    def test_all_ten_workloads_present(self):
        assert len(WORKLOAD_NAMES) == 10
        for name in WORKLOAD_NAMES:
            assert name in WORKLOAD_CATEGORIES

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("nosuch")

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_generation_deterministic(self, name):
        a = make_workload(name).generate(3000, seed=11)
        b = make_workload(name).generate(3000, seed=11)
        assert [x.address for x in a] == [x.address for x in b]
        assert [x.pc for x in a] == [x.pc for x in b]
        assert [x.depends_on for x in a] == [x.depends_on for x in b]

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_seeds_differ(self, name):
        a = make_workload(name).generate(3000, seed=1)
        b = make_workload(name).generate(3000, seed=2)
        assert [x.address for x in a] != [x.address for x in b]

    def test_requested_length_met(self):
        trace = make_workload("db2").generate(5000, seed=0)
        assert len(trace) >= 5000

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            make_workload("db2").generate(0)


class TestStructure:
    def test_oltp_has_pointer_chases(self):
        stats = summarize_trace(make_workload("db2").generate(20000, seed=3))
        assert stats.dependent_fraction > 0.02

    def test_dss_is_scan_dominated(self):
        trace = make_workload("qry17").generate(20000, seed=3)
        stats = summarize_trace(trace)
        # fresh pages: footprint grows with the trace
        assert stats.unique_regions > 700

    def test_em3d_sequence_repeats_across_iterations(self):
        trace = make_workload("em3d").generate(120000, seed=3)
        graph_addrs = [
            a.address for a in trace if a.pc in (0x60000, 0x60004, 0x60008)
        ]
        third = len(graph_addrs) // 3
        # iteration length is ~42k graph accesses; the first and second
        # windows of one iteration length must be identical
        period = 14000 * 3
        assert graph_addrs[:period] == graph_addrs[period:2 * period]

    def test_sparse_row_parity_changes_interleave(self):
        trace = make_workload("sparse").generate(3000, seed=3)
        # odd rows interleave value loads between gathers: both the
        # front-loaded and spread patterns must appear
        pcs = [a.pc for a in trace if a.pc in (0x80004, 0x80008, 0x8000C)]
        assert pcs, "sparse trace must contain value/gather accesses"

    def test_categories(self):
        assert WORKLOAD_CATEGORIES["db2"] == "oltp"
        assert WORKLOAD_CATEGORIES["qry16"] == "dss"
        assert WORKLOAD_CATEGORIES["em3d"] == "scientific"
        assert WORKLOAD_CATEGORIES["apache"] == "web"


class TestComponents:
    def test_chain_private_patterns_fixed_per_page(self):
        comp = ChainTraversalComponent(
            "c", 0x100, 1 << 34, setup_seed=5, num_chains=1,
            pages_per_chain=4, layout_mode="private", mutation_rate=0.0,
            unstable_access_prob=0.0,
        )
        w = ComposedWorkload("t", "test", [(comp, 1.0)])
        trace = w.generate(600, seed=8)
        amap = DEFAULT_ADDRESS_MAP
        per_page = {}
        stable = True
        seen = {}
        for a in trace:
            region = amap.region_of(a.address)
            offset = amap.offset_in_region(amap.block_of(a.address))
            seen.setdefault(region, set()).add(offset)
        # each page's offset set must be small and fixed (5 data + header)
        for region, offsets in seen.items():
            assert len(offsets) <= 7

    def test_scan_never_revisits_pages(self):
        comp = ScanComponent("s", 0x200, 1 << 34, setup_seed=5,
                             block_presence=1.0)
        w = ComposedWorkload("t", "test", [(comp, 1.0)])
        trace = w.generate(2000, seed=8)
        amap = DEFAULT_ADDRESS_MAP
        first_seen = {}
        for i, a in enumerate(trace):
            region = amap.region_of(a.address)
            if region in first_seen:
                # revisits only within the same page burst (14-16 accesses)
                assert i - first_seen[region] < 40
            else:
                first_seen[region] = i

    def test_noise_blocks_rarely_repeat(self):
        comp = NoiseComponent("n", 0x300, 1 << 34)
        w = ComposedWorkload("t", "test", [(comp, 1.0)])
        trace = w.generate(4000, seed=8)
        blocks = [a.address >> 6 for a in trace]
        assert len(set(blocks)) > 0.99 * len(blocks)

    def test_graph_neighbors_depend_on_node(self):
        comp = GraphTraversalComponent("g", 0x400, 1 << 34, setup_seed=5,
                                       num_nodes=100)
        w = ComposedWorkload("t", "test", [(comp, 1.0)])
        trace = w.generate(300, seed=8)
        deps = [a for a in trace if a.depends_on is not None]
        assert len(deps) >= len(trace) // 2  # degree 2 of 3 accesses

    def test_grid_covers_all_offsets(self):
        comp = GridSweepComponent("gr", 0x500, 1 << 34, num_arrays=1,
                                  blocks_per_array=64, phases=1)
        w = ComposedWorkload("t", "test", [(comp, 1.0)])
        trace = w.generate(64, seed=8)
        amap = DEFAULT_ADDRESS_MAP
        offsets = {amap.offset_in_region(amap.block_of(a.address)) for a in trace}
        assert offsets == set(range(32))

    def test_gather_targets_fixed_across_iterations(self):
        comp = GatherComponent("sp", 0x600, 1 << 34, setup_seed=5,
                               num_rows=8, nnz_per_row=4, x_blocks=64)
        w = ComposedWorkload("t", "test", [(comp, 1.0)])
        trace = w.generate(300, seed=8)
        gathers = [a.address for a in trace if a.pc in (0x608, 0x60C)]
        period = 8 * 4  # rows * nnz
        assert gathers[:period] == gathers[period:2 * period]

    def test_invalid_layout_mode(self):
        with pytest.raises(ValueError):
            ChainTraversalComponent("c", 0, 0, 0, layout_mode="bogus")

    def test_composition_validates_weights(self):
        comp = NoiseComponent("n", 0x300, 1 << 34)
        with pytest.raises(ValueError):
            ComposedWorkload("t", "test", [])
        with pytest.raises(ValueError):
            ComposedWorkload("t", "test", [(comp, 0.0)])
