"""Cross-cutting property-based tests on predictor/mechanism invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.common.config import SMSConfig, STeMSConfig
from repro.prefetch.sms.generations import ActiveGenerationTable, SequenceElement
from repro.prefetch.sms.pht import PatternHistoryTable
from repro.prefetch.stems.pst import PatternSequenceTable
from repro.prefetch.stems.reconstruction import Reconstructor
from repro.prefetch.streamqueue import StreamQueueSet
from repro.prefetch.tms.cmob import CircularMissBuffer, MissEntry

AMAP = DEFAULT_ADDRESS_MAP

offsets_strategy = st.lists(
    st.integers(min_value=0, max_value=31), min_size=1, max_size=12
)


@settings(deadline=None, max_examples=60)
@given(trainings=st.lists(offsets_strategy, min_size=1, max_size=10))
def test_pht_predictions_subset_of_trained_offsets(trainings):
    """The PHT can only ever predict offsets it has been shown."""
    pht = PatternHistoryTable(SMSConfig(), 32)
    shown = set()
    for offsets in trainings:
        pht.train((1, 0), set(offsets))
        shown.update(offsets)
        assert set(pht.predict((1, 0))) <= shown


@settings(deadline=None, max_examples=60)
@given(trainings=st.lists(offsets_strategy, min_size=1, max_size=10))
def test_pst_sequence_positions_strictly_ordered(trainings):
    """PST predictions come out in stored-sequence order, once each."""
    pst = PatternSequenceTable(STeMSConfig(), 32)
    for offsets in trainings:
        elements = [
            SequenceElement(offset=o, delta=0, offchip=True) for o in offsets
        ]
        pst.train((1, 0), elements)
        steps = pst.predict((1, 0))
        seen = [s.offset for s in steps]
        assert len(seen) == len(set(seen))


@settings(deadline=None, max_examples=60)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=500),
                    min_size=1, max_size=400),
    capacity=st.integers(min_value=2, max_value=64),
)
def test_cmob_find_returns_latest_valid_position(blocks, capacity):
    cmob = CircularMissBuffer(capacity)
    last_position = {}
    for block in blocks:
        last_position[block] = cmob.append(block)
    for block, position in last_position.items():
        found = cmob.find(block)
        if position > cmob.head - capacity - 1:
            assert found == position
        else:
            assert found is None or found > position


@settings(deadline=None, max_examples=40)
@given(
    deltas=st.lists(st.integers(min_value=0, max_value=5),
                    min_size=1, max_size=20),
)
def test_reconstruction_preserves_temporal_order(deltas):
    """Without spatial expansion, reconstruction yields the RMOB order."""
    pst = PatternSequenceTable(STeMSConfig(), 32)  # empty: no expansions
    entries = [
        MissEntry(block=AMAP.block_in_region(1000 + i, 0), pc=i, delta=d)
        for i, d in enumerate(deltas)
    ]
    recon = Reconstructor(pst, AMAP)
    result = recon.reconstruct(entries, include_first=True)
    expected = [e.block for e in entries if result.blocks]
    # entries beyond the buffer are dropped; the prefix order is exact
    assert result.blocks == expected[: len(result.blocks)]


@settings(deadline=None, max_examples=40)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_reconstruction_never_duplicates(seed):
    rng = random.Random(seed)
    pst = PatternSequenceTable(STeMSConfig(), 32)
    for pc in range(8):
        elements = [
            SequenceElement(offset=o, delta=rng.randrange(3), offchip=True)
            for o in rng.sample(range(1, 32), rng.randrange(1, 8))
        ]
        pst.train((pc, 0), elements)
    entries = [
        MissEntry(block=AMAP.block_in_region(rng.randrange(50), 0),
                  pc=rng.randrange(8), delta=rng.randrange(4))
        for _ in range(rng.randrange(1, 20))
    ]
    result = Reconstructor(pst, AMAP).reconstruct(entries)
    assert len(result.blocks) == len(set(result.blocks))


@settings(deadline=None, max_examples=60)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=500)),
        min_size=1, max_size=200,
    ),
    queues=st.integers(min_value=1, max_value=8),
)
def test_streamqueue_set_never_exceeds_capacity(ops, queues):
    qs = StreamQueueSet(queues, lookahead=4)
    ids = []
    for allocate, value in ops:
        if allocate or not ids:
            queue, _ = qs.allocate([value, value + 1])
            ids.append(queue.stream_id)
        else:
            qs.on_consumed(ids[value % len(ids)])
        assert len(qs) <= queues


@settings(deadline=None, max_examples=40)
@given(
    accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=31)),
        min_size=1, max_size=300,
    ),
)
def test_agt_touched_equals_trigger_plus_elements(accesses):
    """Invariant: a generation's touched set is exactly its trigger offset
    plus its recorded element offsets."""
    records = []
    agt = ActiveGenerationTable(4, AMAP, on_generation_end=records.append)
    for region, offset in accesses:
        agt.observe(0x1, AMAP.block_in_region(region, offset), offchip=True)
    agt.flush()
    for record in records:
        expected = {record.trigger_offset} | {e.offset for e in record.elements}
        assert record.touched == expected
