"""Tests for the Fig. 6/7/8 analysis pipelines on constructed traces."""

import pytest

from repro.analysis.correlation import correlation_distance_analysis
from repro.analysis.joint import joint_coverage_analysis
from repro.analysis.repetition import miss_and_trigger_sequences, repetition_analysis
from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.common.config import SystemConfig
from repro.trace.container import Trace

AMAP = DEFAULT_ADDRESS_MAP


def region_visit(trace, region, offsets, pc=0x1000):
    for step, off in enumerate(offsets):
        trace.append(pc=pc + step * 4,
                     address=AMAP.block_in_region(region, off) * 64)


@pytest.fixture
def system():
    return SystemConfig.tiny()


class TestMissAndTriggerSequences:
    def test_triggers_subset_of_misses(self, system):
        trace = Trace("t")
        for region in range(50):
            region_visit(trace, 1000 + region, [0, 3, 7])
        misses, triggers = miss_and_trigger_sequences(trace, system)
        assert set(triggers) <= set(misses)
        assert len(triggers) < len(misses)

    def test_cached_accesses_excluded(self, system):
        trace = Trace("t")
        region_visit(trace, 1, [0, 0, 0, 0])  # three L1 hits
        misses, _ = miss_and_trigger_sequences(trace, system)
        assert len(misses) == 1


class TestJointAnalysis:
    def test_compulsory_scan_is_sms_only(self, system):
        trace = Trace("scan")
        for region in range(200):
            region_visit(trace, 5000 + region, [0, 4, 9])
        result = joint_coverage_analysis(trace, system)
        assert result.sms_only > 0.5
        assert result.tms_only < 0.1

    def test_repeating_random_chain_is_temporal(self, system):
        import random
        rng = random.Random(1)
        # unique single-block regions visited in the same order twice
        regions = rng.sample(range(10000, 60000), 600)
        trace = Trace("chain")
        for _ in range(3):
            for region in regions:
                region_visit(trace, region, [0])
        result = joint_coverage_analysis(trace, system)
        assert result.temporal > 0.5
        assert result.sms_only < 0.1

    def test_unique_noise_is_neither(self, system):
        trace = Trace("noise")
        for region in range(500):
            region_visit(trace, 7000 + region * 3, [region % 32])
        result = joint_coverage_analysis(trace, system)
        assert result.neither > 0.8

    def test_skip_fraction_bounds(self, system):
        trace = Trace("x")
        region_visit(trace, 1, [0])
        with pytest.raises(ValueError):
            joint_coverage_analysis(trace, system, skip_fraction=1.0)

    def test_fractions_sum_to_one(self, system):
        trace = Trace("t")
        for region in range(100):
            region_visit(trace, region * 7, [0, 2])
        r = joint_coverage_analysis(trace, system)
        assert r.both + r.tms_only + r.sms_only + r.neither == pytest.approx(1.0)
        assert r.joint == pytest.approx(1.0 - r.neither)


class TestCorrelationAnalysis:
    def test_perfect_repetition_is_plus_one(self, system):
        trace = Trace("rep")
        offsets = [0, 3, 7, 11]
        # same index, same order, different regions; evictions via floods
        for region in range(300):
            region_visit(trace, 2000 + region, offsets)
        result = correlation_distance_analysis(trace, system)
        assert result.fraction_at(1) > 0.95
        assert result.cumulative_within(2) > 0.95

    def test_swapped_order_within_window(self, system):
        trace = Trace("swap")
        for region in range(300):
            order = [0, 3, 7, 11] if region % 2 == 0 else [0, 7, 3, 11]
            region_visit(trace, 2000 + region, order)
        result = correlation_distance_analysis(trace, system)
        assert result.cumulative_within(2) > 0.9
        assert result.fraction_at(1) < 0.9  # reordering mass exists

    def test_disjoint_patterns_unmatched(self, system):
        trace = Trace("disjoint")
        for region in range(200):
            offs = [0, 5, 9] if region % 2 == 0 else [0, 12, 20]
            region_visit(trace, 2000 + region, offs)
        result = correlation_distance_analysis(trace, system)
        assert result.matched_fraction < 0.6

    def test_cdf_rows_monotone(self, system):
        trace = Trace("cdf")
        for region in range(100):
            region_visit(trace, 2000 + region, [0, 3, 7])
        rows = correlation_distance_analysis(trace, system).cdf_rows()
        values = [v for _, v in rows]
        assert values == sorted(values)
        assert 0 not in [d for d, _ in rows]


class TestRepetitionAnalysis:
    def test_repeating_workload_shows_opportunity(self, system):
        import random
        rng = random.Random(2)
        regions = rng.sample(range(10000, 50000), 400)
        trace = Trace("rep")
        for _ in range(4):
            for region in regions:
                region_visit(trace, region, [0])
        all_misses, triggers = repetition_analysis(trace, system)
        assert all_misses.opportunity > 0.4
        assert triggers.opportunity > 0.4

    def test_max_elements_bounds_input(self, system):
        trace = Trace("b")
        for region in range(300):
            region_visit(trace, region * 11, [0])
        all_misses, _ = repetition_analysis(trace, system, max_elements=50)
        assert all_misses.total <= 50
