"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.addresses import AddressMap
from repro.common.config import SystemConfig
from repro.trace.container import Trace


@pytest.fixture
def amap() -> AddressMap:
    return AddressMap()


@pytest.fixture
def tiny_system() -> SystemConfig:
    return SystemConfig.tiny()


@pytest.fixture
def scaled_system() -> SystemConfig:
    return SystemConfig.scaled()


def make_trace(addresses, pcs=None, name="test", writes=None, deps=None) -> Trace:
    """Convenience: build a trace from byte-address / pc lists."""
    trace = Trace(name=name)
    for i, address in enumerate(addresses):
        pc = pcs[i] if pcs is not None else 0x1000
        is_write = bool(writes[i]) if writes is not None else False
        dep = deps[i] if deps is not None else None
        trace.append(pc=pc, address=address, is_write=is_write, depends_on=dep)
    return trace


@pytest.fixture
def trace_builder():
    return make_trace
