"""Tests for the STeMS pattern sequence table."""

from repro.common.config import STeMSConfig
from repro.prefetch.sms.generations import SequenceElement
from repro.prefetch.stems.pst import PatternSequenceTable


def elements(*pairs):
    return [SequenceElement(offset=o, delta=d, offchip=True) for o, d in pairs]


class TestPST:
    def test_first_training_predicts_in_order(self):
        pst = PatternSequenceTable(STeMSConfig(), 32)
        pst.train((1, 0), elements((4, 0), (2, 1), (31, 1)))
        steps = pst.predict((1, 0))
        assert [(s.offset, s.delta) for s in steps] == [(4, 0), (2, 1), (31, 1)]

    def test_order_follows_most_recent_observation(self):
        pst = PatternSequenceTable(STeMSConfig(), 32)
        pst.train((1, 0), elements((4, 0), (2, 1)))
        pst.train((1, 0), elements((2, 0), (4, 2)))
        steps = pst.predict((1, 0))
        assert [s.offset for s in steps] == [2, 4]
        assert [s.delta for s in steps] == [0, 2]

    def test_new_offsets_in_existing_entry_below_threshold(self):
        pst = PatternSequenceTable(STeMSConfig(), 32)
        pst.train((1, 0), elements((4, 0)))
        pst.train((1, 0), elements((4, 0), (9, 1)))
        assert [s.offset for s in pst.predict((1, 0))] == [4]
        # a second sighting promotes it
        pst.train((1, 0), elements((4, 0), (9, 1)))
        assert [s.offset for s in pst.predict((1, 0))] == [4, 9]

    def test_unobserved_offsets_decay(self):
        pst = PatternSequenceTable(STeMSConfig(), 32)
        pst.train((1, 0), elements((4, 0), (7, 1)))
        for _ in range(4):
            pst.train((1, 0), elements((4, 0)))
        assert [s.offset for s in pst.predict((1, 0))] == [4]

    def test_duplicate_offsets_use_first_occurrence(self):
        pst = PatternSequenceTable(STeMSConfig(), 32)
        pst.train((1, 0), elements((4, 0), (4, 3), (6, 1)))
        steps = pst.predict((1, 0))
        assert [(s.offset, s.delta) for s in steps] == [(4, 0), (6, 1)]

    def test_out_of_range_offsets_ignored(self):
        pst = PatternSequenceTable(STeMSConfig(), 32)
        pst.train((1, 0), elements((40, 0), (4, 1)))
        assert [s.offset for s in pst.predict((1, 0))] == [4]

    def test_predict_offsets_set(self):
        pst = PatternSequenceTable(STeMSConfig(), 32)
        pst.train((1, 0), elements((4, 0), (2, 1)))
        assert pst.predict_offsets((1, 0)) == {2, 4}

    def test_counter_saturation(self):
        config = STeMSConfig()
        pst = PatternSequenceTable(config, 32)
        for _ in range(10):
            pst.train((1, 0), elements((4, 0)))
        # after saturation, a few absences should not kill the block
        pst.train((1, 0), elements((9, 0)))
        assert 4 in pst.predict_offsets((1, 0))

    def test_lru_capacity(self):
        pst = PatternSequenceTable(STeMSConfig(pst_entries=2), 32)
        pst.train((1, 0), elements((4, 0)))
        pst.train((2, 0), elements((5, 0)))
        pst.train((3, 0), elements((6, 0)))
        assert pst.predict((1, 0)) == []
