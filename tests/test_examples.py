"""Every example script must run end-to-end (with small sizes)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *argv):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_exists():
    assert EXAMPLES.is_dir()
    assert (EXAMPLES / "quickstart.py").exists()


def test_quickstart(capsys):
    run_example("quickstart.py", "20000")
    out = capsys.readouterr().out
    assert "STeMS coverage" in out
    assert "speedup" in out


def test_reconstruction_walkthrough(capsys):
    run_example("reconstruction_walkthrough.py")
    out = capsys.readouterr().out
    assert "reconstruction works" in out


def test_database_scan(capsys):
    run_example("database_scan.py", "20000")
    out = capsys.readouterr().out
    assert "spatial-only streams" in out


def test_prefetcher_shootout(capsys):
    run_example("prefetcher_shootout.py", "db2", "20000")
    out = capsys.readouterr().out
    assert "stems" in out and "stride" in out


def test_prefetcher_shootout_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        run_example("prefetcher_shootout.py", "bogus")


def test_custom_workload(capsys):
    run_example("custom_workload.py", "20000")
    out = capsys.readouterr().out
    assert "docstore" in out
    assert "coverage" in out


def test_multicore_invalidations(capsys):
    run_example("multicore_invalidations.py", "2", "8000")
    out = capsys.readouterr().out
    assert "invalidations" in out
    assert "core 1" in out
