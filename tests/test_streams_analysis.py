"""Tests for the temporal stream-length analysis."""

import pytest

from repro.analysis.streams import (
    GreedyStreamMatcher,
    StreamLengthAnalysis,
    stream_length_analysis,
    stream_lengths_of_sequence,
)
from repro.common.config import SystemConfig
from repro.trace.container import Trace


class TestSequenceMatching:
    def test_exact_repetition_forms_one_long_stream(self):
        misses = [1, 2, 3, 4, 5] * 4
        result = stream_lengths_of_sequence(misses)
        # one stream: everything after the locating head (pos 5) matches
        assert result.total_streams == 1
        assert result.covered_misses == 14

    def test_no_repetition_no_streams(self):
        result = stream_lengths_of_sequence(list(range(50)))
        assert result.total_streams == 0
        assert result.mean_length() == 0.0

    def test_glitch_tolerated_within_lookahead(self):
        # second pass inserts one foreign miss: the stream rides it out
        # (head 1, then matches 2, 3, 4 across the 99 glitch)
        misses = [1, 2, 3, 4] + [1, 2, 99, 3, 4]
        result = stream_lengths_of_sequence(misses, lookahead=4)
        assert result.total_streams == 1
        assert max(result.lengths) == 3

    def test_deletion_beyond_lookahead_relocates(self):
        first = list(range(100, 130))
        second = [100] + list(range(120, 130))  # 19 entries skipped
        result = stream_lengths_of_sequence(first + second, lookahead=4)
        # the jump defeats the first stream (zero matches), but a new
        # stream relocates inside the skipped-to region and runs to the end
        assert result.total_streams == 1
        assert max(result.lengths) >= 6

    def test_fraction_helpers(self):
        misses = [1, 2, 3] * 10
        result = stream_lengths_of_sequence(misses)
        assert 0.0 <= result.fraction_of_misses_in_streams_of_at_least(5) <= 1.0
        assert result.fraction_of_misses_in_streams_of_at_least(1) == 1.0
        assert "streams=" in result.format()

    def test_empty_sequence(self):
        result = stream_lengths_of_sequence([])
        assert result.total_streams == 0


class TestTraceLevel:
    def test_repetitive_trace_yields_long_streams(self):
        import random
        rng = random.Random(5)
        blocks = rng.sample(range(100000, 900000), 300)
        trace = Trace("rep")
        for _ in range(4):
            for b in blocks:
                trace.append(pc=0x1, address=b * 64)
        result = stream_length_analysis(trace, SystemConfig.tiny())
        assert result.workload == "rep"
        assert result.mean_length() > 20
        # most streamed misses live in long streams (the §2.1 claim)
        assert result.fraction_of_misses_in_streams_of_at_least(10) > 0.8


class TestBoundedHistory:
    """The bounded matcher (the default) must agree with exact mode at
    tier-1 trace lengths, and its state must stay O(history_limit)."""

    def test_bounded_default_matches_exact_on_tier1_trace(self):
        from repro.workloads.registry import stream_workload

        system = SystemConfig.tiny()
        source = stream_workload("db2", 40_000, 42)  # the --small preset
        bounded = StreamLengthAnalysis(system, workload="db2").consume(source)
        exact = StreamLengthAnalysis(
            system, workload="db2", exact=True
        ).consume(source)
        assert bounded.lengths == exact.lengths

    def test_bounded_function_matches_exact_within_window(self):
        import random
        rng = random.Random(9)
        misses = [rng.randrange(200) for _ in range(5_000)]
        exact = stream_lengths_of_sequence(misses)
        bounded = stream_lengths_of_sequence(misses, history_limit=6_000)
        assert bounded.lengths == exact.lengths

    def test_bounded_state_is_bounded(self):
        import random
        rng = random.Random(3)
        matcher = GreedyStreamMatcher(history_limit=256)
        for _ in range(50_000):
            matcher.push(rng.randrange(10_000))
        assert len(matcher._history) <= 512
        assert len(matcher._last_occurrence) <= 512
        matcher.finish()

    def test_history_limit_must_exceed_lookahead(self):
        with pytest.raises(ValueError, match="must exceed"):
            GreedyStreamMatcher(lookahead=8, history_limit=8)
