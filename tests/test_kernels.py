"""Tests for the kernel layer (:mod:`repro.kernels`): chunked codec
decode, the vectorized pre-pass, kernel selection, and vector-vs-python
parity across every experiment, both engine modes, replay, and
fault-injected runs."""

import pytest

import repro.kernels as kernels
from repro.engine import Engine, JobGraph, RetryPolicy
from repro.engine.faultinject import ENV_VAR as FAULT_ENV
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EXPERIMENTS
from repro.experiments import fig9, fig10
from repro.kernels import (
    CHUNK_RECORDS,
    ENV_VAR,
    KERNEL_PYTHON,
    KERNEL_VECTOR,
    default_kernel,
    resolve_kernel,
)
from repro.kernels.prepass import (
    AccessChunk,
    chunk_accesses,
    iter_trace_chunks,
)
from repro.trace.container import Trace
from repro.trace.events import MemoryAccess
from repro.tracestore import TraceFormatError, write_trace, read_accesses
from repro.tracestore.codec import (
    FOOTER_SIZE,
    RECORD_SIZE,
    _read_layout,
    read_access_chunks,
    read_chunk_index,
)
from repro.workloads.registry import stream_workload

#: 2 full chunks + a torn final chunk (the generator overshoots the
#: requested length by a few records; tests measure the actual count)
LENGTH = 2 * CHUNK_RECORDS + 1_808
KEY = ("db2", LENGTH, 7)


def _flip_payload_byte(trace_path, out_path, payload_offset):
    """Copy the trace with one payload byte flipped (offsets are relative
    to the payload start, like ``ChunkIndexEntry.byte_offset``)."""
    raw = bytearray(trace_path.read_bytes())
    raw[_read_layout(trace_path).payload_start + payload_offset] ^= 0x01
    out_path.write_bytes(bytes(raw))
    return out_path


@pytest.fixture(scope="module")
def generated():
    return list(stream_workload(*KEY))


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory, generated):
    path = tmp_path_factory.mktemp("kernels") / "t.trace"
    write_trace(path, {"name": "db2"}, iter(generated))
    return path


@pytest.fixture(autouse=True)
def _no_ambient_overrides(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv(FAULT_ENV, raising=False)


def _concat(chunks):
    out = []
    for chunk in chunks:
        out.extend(chunk.accesses)
    return out


class TestChunkDecode:
    def test_round_trip_matches_scalar_and_source(self, trace_path, generated):
        chunks = list(read_access_chunks(trace_path))
        assert [len(c.accesses) for c in chunks] == [
            CHUNK_RECORDS, CHUNK_RECORDS, len(generated) - 2 * CHUNK_RECORDS
        ]
        assert [c.start_index for c in chunks] == [
            0, CHUNK_RECORDS, 2 * CHUNK_RECORDS
        ]
        decoded = _concat(chunks)
        assert decoded == generated
        assert decoded == list(read_accesses(trace_path))

    @pytest.mark.parametrize(
        "start", [1, CHUNK_RECORDS - 1, CHUNK_RECORDS, CHUNK_RECORDS + 1,
                  LENGTH - 1, LENGTH + 10]
    )
    def test_windowed_replay_matches_slice(self, trace_path, generated, start):
        assert _concat(read_access_chunks(trace_path, start)) == generated[start:]
        assert list(read_accesses(trace_path, start)) == generated[start:]

    def test_chunk_index_arithmetic(self, trace_path):
        entries = read_chunk_index(trace_path)
        assert len(entries) == 3
        for i, entry in enumerate(entries):
            assert entry.record_index == i * CHUNK_RECORDS
        deltas = [
            b.byte_offset - a.byte_offset
            for a, b in zip(entries, entries[1:])
        ]
        assert deltas == [CHUNK_RECORDS * RECORD_SIZE] * 2

    def test_payload_corruption_detected(self, trace_path, generated, tmp_path):
        entries = read_chunk_index(trace_path)
        # flip a record byte inside the first chunk
        corrupt = _flip_payload_byte(
            trace_path, tmp_path / "corrupt.trace",
            entries[0].byte_offset + 100,
        )
        # full replay: rolling payload CRC catches it
        with pytest.raises(TraceFormatError):
            list(read_accesses(corrupt))
        # windowed replay into the damaged chunk: per-chunk CRC catches it
        with pytest.raises(TraceFormatError):
            _concat(read_access_chunks(corrupt, 10))
        # windowed replay past the damaged chunk never touches it
        assert _concat(
            read_access_chunks(corrupt, CHUNK_RECORDS)
        ) == generated[CHUNK_RECORDS:]

    def test_torn_final_chunk_corruption_detected(self, trace_path, tmp_path):
        entries = read_chunk_index(trace_path)
        corrupt = _flip_payload_byte(
            trace_path, tmp_path / "torn.trace", entries[-1].byte_offset + 5
        )
        with pytest.raises(TraceFormatError):
            list(read_accesses(corrupt))
        with pytest.raises(TraceFormatError):
            _concat(read_access_chunks(corrupt, 2 * CHUNK_RECORDS + 3))

    def test_truncation_detected(self, trace_path, tmp_path):
        torn = tmp_path / "trunc.trace"
        torn.write_bytes(trace_path.read_bytes()[:-FOOTER_SIZE - 7])
        with pytest.raises(TraceFormatError):
            list(read_accesses(torn))


class TestPrepass:
    def _accesses(self):
        return [
            MemoryAccess(index=i, pc=100 + i, address=addr,
                         is_write=bool(i % 3 == 0))
            for i, addr in enumerate([0, 64, 2048, 4096, 2112, 65, 1 << 33])
        ]

    def test_derived_columns_match_per_record_reference(self):
        accesses = self._accesses()
        chunk = AccessChunk(accesses)
        assert chunk.blocks_for(6) == [a.address >> 6 for a in accesses]
        assert chunk.regions_for(11) == [a.address >> 11 for a in accesses]
        assert chunk.read_mask() == [not a.is_write for a in accesses]
        blocks = chunk.blocks_for(6)
        assert chunk.stride_deltas(6) == [0] + [
            b - a for a, b in zip(blocks, blocks[1:])
        ]

    def test_derived_columns_cached(self):
        chunk = AccessChunk(self._accesses())
        assert chunk.blocks_for(6) is chunk.blocks_for(6)
        # a different geometry recomputes rather than serving stale data
        assert chunk.blocks_for(7) == [a.address >> 7 for a in chunk.accesses]

    def test_chunk_accesses_batches_and_indexes(self, generated):
        chunks = list(chunk_accesses(iter(generated), chunk_records=1000))
        assert [c.start_index for c in chunks][:3] == [0, 1000, 2000]
        assert _concat(chunks) == generated

    def test_iter_trace_chunks_prefers_native_chunks(self, generated):
        trace = Trace(name="db2", accesses=generated)
        assert _concat(iter_trace_chunks(trace)) == generated
        # plain iterables go through the generic batcher
        assert _concat(iter_trace_chunks(iter(generated))) == generated


class TestKernelSelection:
    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, KERNEL_PYTHON)
        assert resolve_kernel(KERNEL_VECTOR) == KERNEL_VECTOR

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, KERNEL_PYTHON)
        assert resolve_kernel(None) == KERNEL_PYTHON

    def test_default_tracks_numpy_availability(self, monkeypatch):
        monkeypatch.setattr(kernels, "_numpy_checked", True)
        monkeypatch.setattr(kernels, "_numpy", None)
        assert default_kernel() == KERNEL_PYTHON

    @pytest.mark.parametrize("bad", ["turbo", "PYTHONIC", ""])
    def test_unknown_kernel_rejected(self, bad, monkeypatch):
        with pytest.raises(ValueError):
            resolve_kernel(bad)
        monkeypatch.setenv(ENV_VAR, bad)
        if bad.strip():
            with pytest.raises(ValueError):
                resolve_kernel(None)

    def test_vector_without_numpy_notes_fallback_once(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(kernels, "_numpy_checked", True)
        monkeypatch.setattr(kernels, "_numpy", None)
        monkeypatch.setattr(kernels, "_fallback_noted", False)
        assert resolve_kernel(KERNEL_VECTOR) == KERNEL_VECTOR
        assert resolve_kernel(KERNEL_VECTOR) == KERNEL_VECTOR
        err = capsys.readouterr().err
        assert err.count("falling back") == 1


def _parity_config():
    config = ExperimentConfig.small()
    config.trace_length = 6_000
    config.workloads = ["db2", "qry2"]
    return config


class TestParity:
    """The acceptance gate: both kernels produce bit-identical results."""

    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_every_experiment_serial(self, name):
        module = EXPERIMENTS[name]
        config = _parity_config()
        reference = module.run(config, engine=Engine(kernel=KERNEL_PYTHON))
        vectored = module.run(config, engine=Engine(kernel=KERNEL_VECTOR))
        assert reference == vectored

    def _sweep(self, **engine_kwargs):
        config = _parity_config()
        graph = JobGraph()
        fig9.declare(config, graph)
        fig10.declare(config, graph)
        return dict(Engine(**engine_kwargs).run(graph))

    def test_reference_sweep_jobs2(self, tmp_path):
        stores = tmp_path / "py", tmp_path / "vec"
        reference = self._sweep(
            jobs=2, trace_store=stores[0], kernel=KERNEL_PYTHON
        )
        vectored = self._sweep(
            jobs=2, trace_store=stores[1], kernel=KERNEL_VECTOR
        )
        assert reference == vectored

    def test_reference_sweep_fault_injected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "trace_corrupt:1")
        retry = RetryPolicy(attempts=4, backoff=0.01)
        reference = self._sweep(
            trace_store=tmp_path / "py", retry=retry, kernel=KERNEL_PYTHON
        )
        vectored = self._sweep(
            trace_store=tmp_path / "vec", retry=retry, kernel=KERNEL_VECTOR
        )
        assert reference == vectored
