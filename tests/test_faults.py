"""Fault-tolerant execution plane: retries, quarantine, injection.

The anchor invariant is the robustness contract: a run with faults
injected — dead workers, corrupt trace entries, corrupt cache shards —
completes with results **bit-identical** to a clean run, leaves the
damaged files quarantined (not deleted), and accounts every recovery in
``EngineStats``. The tests drive the deterministic
``REPRO_FAULT_INJECT`` harness through both execution modes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.common.config import SystemConfig
from repro.engine import (
    Engine,
    JobExecutionError,
    JobFailure,
    JobGraph,
    PrefetcherSpec,
    ResultCache,
    RetryPolicy,
    SimJob,
)
from repro.engine.faultinject import (
    ENV_VAR,
    FaultPlan,
    InjectedFault,
    active_plan,
    maybe_fail_job,
)
from repro.engine.faults import AttemptLog, quarantine_file
from repro.tracestore import TraceStore

WORKLOADS = ("apache", "em3d")
PREFETCHERS = ("none", "stride", "sms")
LENGTH = 2500
SEED = 1


@pytest.fixture(autouse=True)
def _no_ambient_injection(monkeypatch):
    """Each test starts with a clean injection environment."""
    monkeypatch.delenv(ENV_VAR, raising=False)


def build_graph() -> "tuple[JobGraph, list[SimJob]]":
    graph = JobGraph()
    jobs = []
    system = SystemConfig.tiny()
    for workload in WORKLOADS:
        for kind in PREFETCHERS:
            spec = PrefetcherSpec(kind=kind) if kind != "none" else None
            job = SimJob(kind="coverage", workload=workload, length=LENGTH,
                         seed=SEED, system=system, prefetcher=spec)
            jobs.append(graph.add(job))
    return graph, jobs


@pytest.fixture(scope="module")
def reference():
    """Fault-free results every injected run must reproduce exactly."""
    graph, jobs = build_graph()
    with Engine(jobs=1) as engine:
        results = engine.run(graph)
    assert not engine.stats.degraded
    return {job.job_hash: results[job] for job in jobs}


def assert_identical(results, reference, jobs) -> None:
    for job in jobs:
        assert results[job] == reference[job.job_hash], job.label()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)

    def test_backoff_is_exponential_with_deterministic_jitter(self):
        policy = RetryPolicy(attempts=5, backoff=0.1, seed=7)
        delays = [policy.backoff_for("jobkey", n) for n in (1, 2, 3)]
        # same key, same attempt, same seed -> identical delay
        assert delays == [policy.backoff_for("jobkey", n) for n in (1, 2, 3)]
        # exponential envelope with jitter in [0.5, 1.5)
        for n, delay in enumerate(delays, start=1):
            base = 0.1 * 2 ** (n - 1)
            assert 0.5 * base <= delay < 1.5 * base
        # different keys draw different jitter
        assert policy.backoff_for("other", 1) != delays[0]

    def test_none_policy_is_single_attempt(self):
        policy = RetryPolicy.none()
        assert policy.attempts == 1
        assert policy.backoff_for("k", 1) == 0.0


class TestFaultPlanParsing:
    def test_full_spec_round_trip(self):
        plan = FaultPlan.parse(
            "worker_crash:0.1@seed=7,trace_corrupt:1,stall:0.5@secs=5"
        )
        assert plan.seed == 7
        assert plan.spec("worker_crash").rate == 0.1
        assert plan.spec("trace_corrupt").rate == 1.0
        assert plan.spec("stall").param("secs") == "5"
        assert plan.spec("cache_corrupt") is None
        assert bool(plan)

    def test_fires_is_deterministic_and_rate_bounded(self):
        plan = FaultPlan.parse("job_fail:0.5")
        draws = [plan.fires("job_fail", f"site{i}", 1) for i in range(200)]
        assert draws == [plan.fires("job_fail", f"site{i}", 1)
                         for i in range(200)]
        assert 40 < sum(draws) < 160  # rate actually thins the draws
        assert not plan.fires("worker_crash", "site0", 1)  # unconfigured

    @pytest.mark.parametrize("bad", [
        "unknown_kind", "worker_crash:nope", "worker_crash:1.5",
        "stall:1@secs", "job_fail:-0.1",
    ])
    def test_bad_specs_are_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_active_plan_tracks_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "job_fail:1")
        assert active_plan().spec("job_fail") is not None
        monkeypatch.delenv(ENV_VAR)
        assert not active_plan()

    def test_injected_fault_raised_serially(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "job_fail:1")
        with pytest.raises(InjectedFault):
            maybe_fail_job("somehash", 1)


class TestQuarantineFile:
    def test_moves_file_with_reason(self, tmp_path):
        victim = tmp_path / "ab" / "entry.bin"
        victim.parent.mkdir()
        victim.write_bytes(b"damaged")
        moved = quarantine_file(victim, tmp_path, "checksum mismatch")
        assert moved is not None and moved.read_bytes() == b"damaged"
        assert not victim.exists()
        reason = moved.with_name(moved.name + ".reason.txt")
        assert "checksum mismatch" in reason.read_text()

    def test_collisions_keep_prior_evidence(self, tmp_path):
        for content in (b"first", b"second"):
            victim = tmp_path / "entry.bin"
            victim.write_bytes(content)
            quarantine_file(victim, tmp_path, "damage")
        names = sorted(p.name for p in (tmp_path / "quarantine").iterdir()
                       if not p.name.endswith(".reason.txt"))
        assert names == ["entry.bin", "entry.bin.1"]

    def test_missing_source_returns_none(self, tmp_path):
        assert quarantine_file(tmp_path / "gone", tmp_path, "x") is None


class TestCrashRecovery:
    """Injected worker crashes: retried, requeued, bit-identical."""

    def test_serial_crashes_recover_bit_identical(
        self, tmp_path, monkeypatch, reference
    ):
        monkeypatch.setenv(ENV_VAR, "worker_crash:0.4@seed=3")
        graph, jobs = build_graph()
        # the unluckiest job (deterministically) crashes 3 times before
        # its first clean attempt — give the ladder room
        policy = RetryPolicy(attempts=5, backoff=0.0)
        with Engine(jobs=1, trace_store=tmp_path / "traces",
                    retry=policy) as engine:
            results = engine.run(graph)
        assert not results.failures()
        assert_identical(results, reference, jobs)
        assert engine.stats.retries > 0
        assert engine.stats.isolation_fallbacks > 0

    def test_parallel_crashes_recover_bit_identical(
        self, tmp_path, monkeypatch, reference
    ):
        monkeypatch.setenv(ENV_VAR, "worker_crash:0.4@seed=3")
        graph, jobs = build_graph()
        policy = RetryPolicy(attempts=5, backoff=0.01)
        with Engine(jobs=2, trace_store=tmp_path / "traces",
                    retry=policy) as engine:
            results = engine.run(graph)
        assert not results.failures()
        assert_identical(results, reference, jobs)
        assert engine.stats.retries > 0
        assert engine.stats.pool_respawns > 0

    def test_exhausted_retries_surface_as_structured_failure(
        self, monkeypatch, capsys
    ):
        monkeypatch.setenv(ENV_VAR, "job_fail:1")
        graph, jobs = build_graph()
        with Engine(jobs=1, retry=RetryPolicy(attempts=2, backoff=0.0)) as engine:
            results = engine.run(graph)
        failures = results.failures()
        assert len(failures) == len(jobs)
        for failure in failures:
            assert isinstance(failure, JobFailure)
            assert failure.attempts == 2
            assert failure.error_type == "InjectedFault"
            assert len(failure.history) == 2
        assert engine.stats.failures == len(jobs)
        assert "failed after 2 attempt(s)" in capsys.readouterr().err

    def test_strict_mode_raises_instead(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "job_fail:1")
        graph, _ = build_graph()
        with Engine(jobs=1, retry=RetryPolicy(attempts=2, backoff=0.0),
                    strict=True) as engine:
            with pytest.raises(JobExecutionError) as excinfo:
                engine.run(graph)
        assert excinfo.value.failure.error_type == "InjectedFault"

    def test_failures_are_never_cached(self, tmp_path, monkeypatch, reference):
        monkeypatch.setenv(ENV_VAR, "job_fail:1")
        graph, jobs = build_graph()
        with Engine(jobs=1, cache_dir=tmp_path / "cache",
                    retry=RetryPolicy(attempts=2, backoff=0.0)) as engine:
            assert engine.run(graph).failures()
        # with injection off, nothing poisoned the cache: a clean rerun
        # re-executes everything and matches the reference
        monkeypatch.delenv(ENV_VAR)
        graph2, _ = build_graph()
        with Engine(jobs=1, cache_dir=tmp_path / "cache") as engine2:
            results = engine2.run(graph2)
        assert engine2.stats.cache_hits == 0
        assert_identical(results, reference, jobs)


class TestTraceQuarantine:
    """Corrupt store entries: quarantined, regenerated, bit-identical."""

    def test_serial_replay_of_corrupt_entries_recovers(
        self, tmp_path, monkeypatch, reference
    ):
        store_dir = tmp_path / "traces"
        monkeypatch.setenv(ENV_VAR, "trace_corrupt:1")
        # run 1 records (and the harness corrupts) every entry
        graph, jobs = build_graph()
        with Engine(jobs=1, trace_store=store_dir) as engine:
            assert_identical(engine.run(graph), reference, jobs)
        # run 2 replays the damage: every entry must be quarantined and
        # regenerated, and results still match
        graph2, _ = build_graph()
        with Engine(jobs=1, trace_store=store_dir) as engine2:
            results = engine2.run(graph2)
        assert_identical(results, reference, jobs)
        assert engine2.stats.quarantined == len(WORKLOADS)
        assert engine2.stats.replay_fallbacks == len(WORKLOADS)
        quarantined = list((store_dir / "quarantine").glob("*.trace"))
        assert len(quarantined) == len(WORKLOADS)
        for entry in quarantined:
            reason = entry.with_name(entry.name + ".reason.txt")
            assert reason.is_file() and "replay failed" in reason.read_text()
        # the regenerated entries are clean and replayable
        store = TraceStore(store_dir)
        for job in jobs:
            assert store.verify(job.trace_key)

    def test_parallel_cold_store_with_corruption_recovers(
        self, tmp_path, monkeypatch, reference
    ):
        # pin the pool replay path: under broadcast (the default) a cold
        # run's consumers are fed the clean stream before the published
        # entry is damaged, so nothing re-reads the corruption in the
        # same run — tests/test_broadcast.py covers that plane
        monkeypatch.setenv(ENV_VAR, "trace_corrupt:1")
        graph, jobs = build_graph()
        with Engine(jobs=2, trace_store=tmp_path / "traces",
                    broadcast="off") as engine:
            results = engine.run(graph)
        assert not results.failures()
        assert_identical(results, reference, jobs)
        assert engine.stats.quarantined > 0
        assert (tmp_path / "traces" / "quarantine").is_dir()

    def test_structural_damage_quarantined_on_lookup(self, tmp_path):
        store = TraceStore(tmp_path)
        key = ("apache", 500, 1)
        path = store.record(key)
        path.write_bytes(b"not a trace at all")
        assert not store.has(key)
        assert store.stats.quarantined == 1
        assert list((tmp_path / "quarantine").glob("*.trace"))


class TestCacheQuarantine:
    """Corrupt cache shards: warned, quarantined, re-executed."""

    def test_corrupt_shard_warns_and_reexecutes(
        self, tmp_path, monkeypatch, reference, capsys
    ):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv(ENV_VAR, "cache_corrupt:1")
        graph, jobs = build_graph()
        with Engine(jobs=1, cache_dir=cache_dir) as engine:
            assert_identical(engine.run(graph), reference, jobs)
        monkeypatch.delenv(ENV_VAR)
        # every stored shard was corrupted: the rerun must detect each,
        # warn on stderr, quarantine, and transparently re-execute
        graph2, _ = build_graph()
        with Engine(jobs=1, cache_dir=cache_dir) as engine2:
            results = engine2.run(graph2)
        assert_identical(results, reference, jobs)
        assert engine2.stats.cache_hits == 0
        assert engine2.stats.executed == len(jobs)
        assert engine2.stats.cache_corrupt == len(jobs)
        assert engine2.stats.quarantined == len(jobs)
        err = capsys.readouterr().err
        assert err.count("corrupt entry") == len(jobs)
        assert len(list((cache_dir / "quarantine").glob("*.json"))) == len(jobs)
        # and the rerun repopulated the cache with good entries
        graph3, _ = build_graph()
        with Engine(jobs=1, cache_dir=cache_dir) as engine3:
            engine3.run(graph3)
        assert engine3.stats.cache_hits == len(jobs)

    def test_stale_version_is_a_quiet_miss_not_corruption(
        self, tmp_path, capsys
    ):
        graph, jobs = build_graph()
        with Engine(jobs=1, cache_dir=tmp_path) as engine:
            engine.run(graph)
        cache = ResultCache(tmp_path)
        path = cache.path_for(jobs[0])
        document = json.loads(path.read_text())
        document["repro"] = "0.0.0-older"
        path.write_text(json.dumps(document))
        capsys.readouterr()
        assert cache.load(jobs[0]) is None
        assert cache.stats.corrupt == 0
        assert "corrupt" not in capsys.readouterr().err


class TestTimeouts:
    def test_stalled_jobs_are_killed_and_charged(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "stall:1@secs=30")
        graph, jobs = build_graph()
        policy = RetryPolicy(attempts=2, backoff=0.01, timeout=0.5)
        with Engine(jobs=2, retry=policy) as engine:
            results = engine.run(graph)
        failures = results.failures()
        assert len(failures) == len(jobs)
        assert all(f.error_type == "TimeoutError" for f in failures)
        assert engine.stats.timeouts > 0
        assert engine.stats.pool_respawns > 0


class TestRunnerExitCodes:
    """The CLI contract: 0 clean, 1 degraded-but-complete, 2 strict abort."""

    def _argv(self, tmp_path, *extra: str) -> "list[str]":
        return [
            "fig7", "--small", "--workloads", "apache",
            "--cache-dir", str(tmp_path / "cache"), *extra,
        ]

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(self._argv(tmp_path)) == 0
        assert "faults:" not in capsys.readouterr().err

    def test_degraded_run_exits_one(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.runner import main

        monkeypatch.setenv(ENV_VAR, "job_fail:1")
        assert main(self._argv(tmp_path, "--retries", "2")) == 1
        err = capsys.readouterr().err
        assert "failed after 2 attempt(s)" in err
        assert "faults:" in err

    def test_recovered_degradation_also_exits_one(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments.runner import main

        store = str(tmp_path / "traces")
        # run 1 records the store; the harness corrupts the published
        # entry *after* the recording walk, so the run itself is clean
        monkeypatch.setenv(ENV_VAR, "trace_corrupt:1")
        assert main(self._argv(tmp_path, "--no-cache",
                               "--trace-store", store)) == 0
        monkeypatch.delenv(ENV_VAR)
        capsys.readouterr()
        # run 2 replays the damage: it recovers fully (tables print,
        # entry quarantined + regenerated) but the exit code reports it
        assert main(self._argv(tmp_path, "--no-cache",
                               "--trace-store", store)) == 1
        assert "quarantined" in capsys.readouterr().err
        # run 3 replays the regenerated entry: clean again
        assert main(self._argv(tmp_path, "--no-cache",
                               "--trace-store", store)) == 0

    def test_strict_failure_exits_two(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.runner import main

        monkeypatch.setenv(ENV_VAR, "job_fail:1")
        argv = self._argv(tmp_path, "--retries", "2", "--strict")
        assert main(argv) == 2
        assert "strict abort" in capsys.readouterr().err


class TestLifecycle:
    def test_engine_and_cache_are_context_managers(self, tmp_path):
        with Engine(jobs=1, cache_dir=tmp_path) as engine:
            assert engine.cache is not None
        with ResultCache(tmp_path, index=True) as cache:
            assert cache._index_db is not None
        assert cache._index_db is None  # closed on exit
        cache.close()  # idempotent

    def test_attempt_log_builds_failure(self):
        log = AttemptLog("hash", "label")
        log.record(ValueError("first"))
        log.record(RuntimeError("second"))
        failure = log.failure()
        assert failure.attempts == 2
        assert failure.error_type == "RuntimeError"
        assert failure.history[0] == ("ValueError", "first")
        assert "label failed after 2 attempt(s)" in failure.summary()
