"""Durable runs: journal, checkpoint/resume, graceful shutdown.

The anchor invariant is the crash-at-any-point contract: a run killed at
an arbitrary job dispatch (``kill_at_job``) or interrupted by SIGINT and
then resumed with ``--resume`` produces output **bit-identical** to an
uninterrupted run, re-executing only the jobs the journal shows as
incomplete. Around it: the write-ahead journal's framing and torn-tail
semantics, job-graph reconstruction from journal descriptions, the
0/1/2/3 exit-code contract, and ``--list-runs``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.common.config import SystemConfig
from repro.engine import (
    Engine,
    JobGraph,
    PrefetcherSpec,
    RunInterrupted,
    RunJournal,
    SimJob,
    find_run,
    job_from_description,
    list_runs,
    load_run,
    runs_root,
)
from repro.engine.faultinject import ENV_VAR, FaultPlan, KILL_EXIT_CODE
from repro.engine.journal import (
    JournalError,
    decode_line,
    encode_line,
    read_journal,
)

SRC = Path(__file__).resolve().parent.parent / "src"
WORKLOADS = ("apache", "em3d")
LENGTH = 2500
SEED = 1


@pytest.fixture(autouse=True)
def _no_ambient_injection(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


def build_graph() -> "tuple[JobGraph, list[SimJob]]":
    graph = JobGraph()
    jobs = []
    system = SystemConfig.tiny()
    for workload in WORKLOADS:
        for kind in ("none", "stride", "sms"):
            spec = PrefetcherSpec(kind=kind) if kind != "none" else None
            job = SimJob(kind="coverage", workload=workload, length=LENGTH,
                         seed=SEED, system=system, prefetcher=spec)
            jobs.append(graph.add(job))
    return graph, jobs


# -- line framing and the reader --------------------------------------------


class TestJournalFraming:
    def test_round_trip(self):
        event = {"event": "job_completed", "job": "ab" * 32, "shard": None}
        assert decode_line(encode_line(event)) == event

    def test_crc_mismatch_rejected(self):
        line = encode_line({"event": "x"})
        flipped = line[:-1] + ("}" if line[-1] != "}" else "]")
        with pytest.raises(JournalError):
            decode_line(flipped)

    def test_missing_frame_rejected(self):
        with pytest.raises(JournalError):
            decode_line('{"event": "x"}')
        with pytest.raises(JournalError):
            decode_line("zzzzzzzz {}")

    def test_non_object_rejected(self):
        import zlib

        payload = "[1, 2]"
        line = f"{zlib.crc32(payload.encode()):08x} {payload}"
        with pytest.raises(JournalError):
            decode_line(line)


class TestJournalReader:
    def _journal(self, tmp_path, events) -> Path:
        path = tmp_path / "journal.jsonl"
        path.write_text("".join(encode_line(e) + "\n" for e in events))
        return path

    def test_clean_file(self, tmp_path):
        events = [{"event": "run_started"}, {"event": "job_scheduled"}]
        path = self._journal(tmp_path, events)
        got, damage, valid = read_journal(path)
        assert got == events
        assert damage is None
        assert valid == path.stat().st_size

    def test_torn_tail_drops_only_the_last_line(self, tmp_path):
        events = [{"event": "run_started"}, {"event": "a"}, {"event": "b"}]
        path = self._journal(tmp_path, events)
        with path.open("a") as handle:
            handle.write('deadbeef {"torn":')  # no newline: torn write
        got, damage, valid = read_journal(path)
        assert got == events
        assert damage is not None and damage.torn_tail
        # the valid prefix is exactly the undamaged events
        assert path.read_bytes()[:valid].count(b"\n") == len(events)

    def test_mid_file_damage_truncates_from_there(self, tmp_path):
        events = [{"event": "run_started"}, {"event": "a"}]
        path = self._journal(tmp_path, events)
        lines = path.read_text().splitlines()
        lines.insert(1, "00000000 {garbage")
        lines.append(encode_line({"event": "after"}))
        path.write_text("\n".join(lines) + "\n")
        got, damage, _ = read_journal(path)
        assert got == [{"event": "run_started"}]
        assert damage is not None
        assert not damage.torn_tail
        assert damage.line == 2


# -- the writer --------------------------------------------------------------


class TestRunJournal:
    def test_lifecycle_round_trip(self, tmp_path):
        root = tmp_path / "runs"
        _, jobs = build_graph()
        journal = RunJournal.create(
            root, header={"argv": ["fig9"], "experiments": ["fig9"]},
            fsync=False,
        )
        for job in jobs:
            journal.job_scheduled(job)
        journal.attempt_started(jobs[0].job_hash, 1)
        journal.job_completed(jobs[0], shard=Path("ab/cd.json"))
        journal.finish("interrupted")

        record = load_run(root / journal.run_id)
        assert record.damage is None
        assert set(record.scheduled) == {j.job_hash for j in jobs}
        assert record.completed == {jobs[0].job_hash: "executed"}
        assert record.incomplete() == [j.job_hash for j in jobs[1:]]
        assert record.finished_status == "interrupted"
        assert record.status() == "interrupted"
        assert record.resumable()
        assert record.argv == ["fig9"]

    def test_unsealed_journal_with_dead_pid_is_crashed(self, tmp_path):
        root = tmp_path / "runs"
        journal = RunJournal.create(root, header={"argv": []}, fsync=False)
        journal.close()
        # forge a dead pid into the manifest (the writer's own is alive)
        manifest_path = root / journal.run_id / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        assert manifest["status"] == "running"
        manifest["pid"] = 2 ** 22 + 1  # beyond any real pid here
        manifest_path.write_text(json.dumps(manifest))
        record = load_run(root / journal.run_id)
        assert record.status() == "crashed"
        assert record.resumable()

    def test_bad_run_ids_rejected(self, tmp_path):
        root = tmp_path / "runs"
        with pytest.raises(JournalError):
            RunJournal.create(root, run_id="../escape")
        with pytest.raises(JournalError):
            RunJournal.create(root, run_id="")
        RunJournal.create(root, run_id="ok-1", fsync=False).close()
        with pytest.raises(JournalError):
            RunJournal.create(root, run_id="ok-1")

    def test_finish_rejects_non_terminal_status(self, tmp_path):
        journal = RunJournal.create(tmp_path / "runs", fsync=False)
        with pytest.raises(JournalError):
            journal.finish("running")
        journal.close()

    def test_list_and_find(self, tmp_path):
        root = tmp_path / "runs"
        first = RunJournal.create(root, run_id="a-1",
                                  header={"argv": ["x"]}, fsync=False)
        first.finish("clean")
        second = RunJournal.create(root, run_id="b-2",
                                   header={"argv": ["y"]}, fsync=False)
        second.finish("degraded")
        assert [r.run_id for r in list_runs(root)] == ["a-1", "b-2"]
        assert find_run(root, "last").run_id == "b-2"
        assert find_run(root, "a-1").argv == ["x"]
        with pytest.raises(JournalError):
            find_run(root, "nope")
        with pytest.raises(JournalError):
            find_run(tmp_path / "empty", "last")


class TestJobReconstruction:
    def test_rebuild_preserves_content_hash(self):
        _, jobs = build_graph()
        for job in jobs:
            # through a JSON round trip, as the journal stores it
            describe = json.loads(json.dumps(job.describe()))
            rebuilt = job_from_description(describe)
            assert rebuilt == job
            assert rebuilt.job_hash == job.job_hash

    def test_rebuild_with_params_and_overrides(self):
        job = SimJob(
            kind="timing", workload="apache", length=100, seed=3,
            system=SystemConfig.tiny(),
            prefetcher=PrefetcherSpec(kind="stems", with_stride=True,
                                      overrides=(("depth", 4),)),
            params=(("window", 16),),
        )
        describe = json.loads(json.dumps(job.describe()))
        assert job_from_description(describe).job_hash == job.job_hash

    def test_record_jobs_verifies_hashes(self, tmp_path):
        root = tmp_path / "runs"
        _, jobs = build_graph()
        journal = RunJournal.create(root, header={"argv": []}, fsync=False)
        for job in jobs[:2]:
            journal.job_scheduled(job)
        journal.close()
        record = load_run(root / journal.run_id)
        assert [j.job_hash for j in record.jobs()] == [
            j.job_hash for j in jobs[:2]
        ]
        # a forged description no longer matches its recorded hash
        first = next(iter(record.scheduled))
        record.scheduled[first] = dict(record.scheduled[first], seed=99)
        with pytest.raises(JournalError):
            record.jobs()


# -- engine integration ------------------------------------------------------


class TestEngineJournaling:
    def test_every_job_scheduled_and_completed(self, tmp_path):
        graph, jobs = build_graph()
        root = runs_root(tmp_path / "cache")
        journal = RunJournal.create(root, header={"argv": []}, fsync=False)
        with Engine(cache_dir=tmp_path / "cache", journal=journal) as engine:
            engine.run(graph)
        journal.finish("clean")
        record = load_run(root / journal.run_id)
        hashes = {j.job_hash for j in jobs}
        assert set(record.scheduled) == hashes
        assert set(record.completed) == hashes
        assert all(src == "executed" for src in record.completed.values())
        assert not record.incomplete()
        # the journaled shard refs exist on disk
        events, _, _ = read_journal(root / journal.run_id / "journal.jsonl")
        shards = [e["shard"] for e in events
                  if e["event"] == "job_completed"]
        assert all(Path(s).is_file() for s in shards)

    def test_cache_hits_journal_as_cache_sourced(self, tmp_path):
        graph, jobs = build_graph()
        with Engine(cache_dir=tmp_path / "cache") as engine:
            engine.run(graph)
        root = runs_root(tmp_path / "cache")
        journal = RunJournal.create(root, header={"argv": []}, fsync=False)
        graph2, _ = build_graph()
        with Engine(cache_dir=tmp_path / "cache", journal=journal) as engine:
            engine.run(graph2)
        assert engine.stats.cache_hits == len(jobs)
        journal.finish("clean")
        record = load_run(root / journal.run_id)
        assert set(record.completed.values()) == {"cache"}

    def test_preset_interrupt_stops_before_any_execution(self, tmp_path):
        graph, _ = build_graph()
        stop = threading.Event()
        stop.set()
        with Engine(cache_dir=tmp_path / "cache", interrupt=stop) as engine:
            with pytest.raises(RunInterrupted):
                engine.run(graph)
        assert engine.stats.executed == 0

    def test_interrupt_mid_run_keeps_completed_results(self, tmp_path):
        graph, jobs = build_graph()
        stop = threading.Event()
        root = runs_root(tmp_path / "cache")
        journal = RunJournal.create(root, header={"argv": []}, fsync=False)
        fired = {"at": None}
        original = journal.job_completed

        def complete_then_stop(job, **kwargs):
            original(job, **kwargs)
            if journal.jobs_completed == 3 and fired["at"] is None:
                fired["at"] = 3
                stop.set()

        journal.job_completed = complete_then_stop
        with Engine(cache_dir=tmp_path / "cache", journal=journal,
                    interrupt=stop) as engine:
            with pytest.raises(RunInterrupted) as info:
                engine.run(graph)
        journal.finish("interrupted")
        assert info.value.completed == 3
        record = load_run(root / journal.run_id)
        assert len(record.completed) == 3
        assert len(record.incomplete()) == len(jobs) - 3
        # and a fresh engine over the same cache finishes only the rest
        graph2, _ = build_graph()
        with Engine(cache_dir=tmp_path / "cache") as engine2:
            engine2.run(graph2)
        assert engine2.stats.cache_hits == 3
        assert engine2.stats.executed == len(jobs) - 3


class TestKillSpecParsing:
    def test_kill_at_job_is_a_known_kind(self):
        plan = FaultPlan.parse("kill_at_job@index=3")
        assert plan.spec("kill_at_job").param("index") == "3"

    def test_unknown_kind_still_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("kill_at_everything")


# -- runner subprocess semantics --------------------------------------------


def _runner_env(**extra: str) -> "dict[str, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(ENV_VAR, None)
    env.update(extra)
    return env


def _sweep_args(tmp_path: Path, cache: str) -> "list[str]":
    return [
        sys.executable, "-m", "repro.experiments", "fig9", "--small",
        "--workloads", "apache", "em3d", "--length", "2000",
        "--cache-dir", str(tmp_path / cache),
        "--trace-store", str(tmp_path / "traces"),
    ]


def _wait_for_journal(cache_dir: Path, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if list((cache_dir / "runs").glob("*/journal.jsonl")):
            return
        time.sleep(0.05)
    raise AssertionError("runner never created a journal")


class TestInterruptionSemantics:
    def test_sigint_exits_3_with_sealed_resumable_journal(self, tmp_path):
        proc = subprocess.Popen(
            _sweep_args(tmp_path, "cache"),
            env=_runner_env(**{ENV_VAR: "stall:1@secs=0.4"}),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        )
        _wait_for_journal(tmp_path / "cache")
        time.sleep(0.3)
        proc.send_signal(signal.SIGINT)
        stderr = proc.communicate(timeout=60)[1]
        assert proc.returncode == 3, stderr
        record = find_run(runs_root(tmp_path / "cache"), "last")
        assert record.finished_status == "interrupted"
        assert record.manifest["status"] == "interrupted"
        assert record.resumable()
        assert "--resume" in stderr
        # the journal was flushed: scheduled events are all present
        assert len(record.scheduled) == 8

    def test_second_sigint_hard_aborts(self, tmp_path):
        proc = subprocess.Popen(
            _sweep_args(tmp_path, "cache"),
            env=_runner_env(**{ENV_VAR: "stall:1@secs=5"}),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
        )
        _wait_for_journal(tmp_path / "cache")
        time.sleep(0.3)
        proc.send_signal(signal.SIGINT)
        time.sleep(0.5)
        proc.send_signal(signal.SIGINT)
        stderr = proc.communicate(timeout=60)[1]
        assert proc.returncode == 130, stderr
        # the journal is deliberately left unsealed -> crashed, resumable
        record = find_run(runs_root(tmp_path / "cache"), "last")
        assert record.finished_status is None
        assert record.status() == "crashed"
        assert record.resumable()

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_kill_then_resume_is_bit_identical(self, tmp_path, jobs):
        clean = subprocess.run(
            _sweep_args(tmp_path, "clean-cache") + [
                "--jobs", str(jobs),
                "--export", "json",
                "--export-dir", str(tmp_path / "clean-out"),
            ],
            env=_runner_env(), capture_output=True, text=True,
        )
        assert clean.returncode == 0, clean.stderr
        baseline = (tmp_path / "clean-out" / "fig9.json").read_bytes()

        if jobs > 1:
            # the parallel supervisor dispatches its whole batch up
            # front, so a mid-batch kill finds nothing durable yet;
            # pre-warm half the sweep so the parallel crash lands on a
            # run with prior durable state (cache-sourced completions)
            warm = subprocess.run(
                [a if a != "em3d" else "apache"
                 for a in _sweep_args(tmp_path, "cache")],
                env=_runner_env(), capture_output=True, text=True,
            )
            assert warm.returncode == 0, warm.stderr
            kill_index = 2
        else:
            kill_index = 5
        killed = subprocess.run(
            _sweep_args(tmp_path, "cache") + ["--jobs", str(jobs)],
            env=_runner_env(**{ENV_VAR: f"kill_at_job@index={kill_index}"}),
            capture_output=True, text=True,
        )
        assert killed.returncode == KILL_EXIT_CODE, killed.stderr
        record = find_run(runs_root(tmp_path / "cache"), "last")
        assert record.status() == "crashed"
        durable = len(record.completed)
        assert 0 < durable < len(record.scheduled)

        resumed = subprocess.run(
            _sweep_args(tmp_path, "cache") + [
                "--jobs", str(jobs), "--resume", "last",
                "--export", "json",
                "--export-dir", str(tmp_path / "resume-out"),
            ],
            env=_runner_env(), capture_output=True, text=True,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert f"{durable} of 8 journaled jobs already durable" in (
            resumed.stderr
        )
        recovered = (tmp_path / "resume-out" / "fig9.json").read_bytes()
        assert recovered == baseline
        # only the lost jobs re-executed
        new_record = find_run(runs_root(tmp_path / "cache"), "last")
        assert new_record.run_id != record.run_id
        assert sorted(new_record.completed.values()).count("cache") == (
            durable
        )
        # the superseded run points at its successor
        old = load_run(record.directory)
        assert old.manifest["resumed_by"] == new_record.run_id

    def test_list_runs_reports_status(self, tmp_path):
        killed = subprocess.run(
            _sweep_args(tmp_path, "cache"),
            env=_runner_env(**{ENV_VAR: "kill_at_job@index=5"}),
            capture_output=True, text=True,
        )
        assert killed.returncode == KILL_EXIT_CODE, killed.stderr
        listing = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--list-runs",
             "--cache-dir", str(tmp_path / "cache")],
            env=_runner_env(), capture_output=True, text=True,
        )
        assert listing.returncode == 0
        assert "crashed (resumable)" in listing.stdout
        # dispatch 5 is the first job of the second fan-out group, so
        # exactly the first group's 4 jobs were journaled durable
        assert "4/8 jobs" in listing.stdout

    def test_resume_unknown_run_exits_2(self, tmp_path):
        (tmp_path / "cache").mkdir()
        result = subprocess.run(
            _sweep_args(tmp_path, "cache") + ["--resume", "nope"],
            env=_runner_env(), capture_output=True, text=True,
        )
        assert result.returncode == 2
        assert "no run 'nope'" in result.stderr
