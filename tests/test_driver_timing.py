"""Tests for the coverage driver and the analytical timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.common.config import SystemConfig, TimingConfig
from repro.prefetch.base import Prefetcher, PrefetchRequest, TARGET_L1, TARGET_SVB
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.sim.driver import SimulationDriver
from repro.sim.results import (
    SERVICE_L1,
    SERVICE_L2,
    SERVICE_MEMORY,
    SERVICE_PREFETCHED_L1,
    SERVICE_SVB,
)
from repro.sim.timing import simulate_timing
from repro.trace.container import Trace

AMAP = DEFAULT_ADDRESS_MAP


class _ScriptedPrefetcher(Prefetcher):
    """Test double: issues a fixed request after the Nth access."""

    name = "scripted"

    def __init__(self, fire_at, requests, target=TARGET_SVB):
        super().__init__()
        self.install_target = target
        self._fire_at = fire_at
        self._requests = requests
        self._count = 0

    def on_access(self, event):
        self._count += 1
        if self._count == self._fire_at:
            for b in self._requests:
                self._request(b, stream_id=1)


def simple_trace(blocks, name="t", deps=None, gaps=None):
    trace = Trace(name)
    for i, b in enumerate(blocks):
        trace.append(
            pc=0x1,
            address=b * 64,
            depends_on=None if deps is None else deps[i],
            instr_gap=4 if gaps is None else gaps[i],
        )
    return trace


class TestDriverAccounting:
    def test_baseline_counts(self, tiny_system):
        trace = simple_trace([1, 2, 1, 2])
        result = SimulationDriver(tiny_system, None).run(trace)
        assert result.uncovered == 2
        assert result.l1_hits == 2
        assert result.covered == 0
        assert result.baseline_misses == 2

    def test_svb_prefetch_covers(self, tiny_system):
        pf = _ScriptedPrefetcher(fire_at=1, requests=[50])
        trace = simple_trace([1, 50])
        result = SimulationDriver(tiny_system, pf).run(trace)
        assert result.covered == 1
        assert result.uncovered == 1  # the first access
        assert result.issued_prefetches == 1
        assert result.overpredictions == 0

    def test_unused_svb_prefetch_is_overprediction(self, tiny_system):
        pf = _ScriptedPrefetcher(fire_at=1, requests=[50])
        trace = simple_trace([1, 2])
        result = SimulationDriver(tiny_system, pf).run(trace)
        assert result.covered == 0
        assert result.overpredictions == 1

    def test_l1_install_covers(self, tiny_system):
        pf = _ScriptedPrefetcher(fire_at=1, requests=[50], target=TARGET_L1)
        trace = simple_trace([1, 50])
        result = SimulationDriver(tiny_system, pf).run(trace)
        assert result.covered == 1

    def test_prefetch_of_resident_block_dropped(self, tiny_system):
        pf = _ScriptedPrefetcher(fire_at=2, requests=[1])
        trace = simple_trace([1, 2, 1])
        result = SimulationDriver(tiny_system, pf).run(trace)
        assert result.issued_prefetches == 0

    def test_writes_not_counted_as_covered(self, tiny_system):
        pf = _ScriptedPrefetcher(fire_at=1, requests=[50])
        trace = Trace("w")
        trace.append(pc=1, address=64)
        trace.append(pc=1, address=50 * 64, is_write=True)
        result = SimulationDriver(tiny_system, pf).run(trace)
        assert result.covered == 0
        assert result.writes == 1

    def test_service_recording(self, tiny_system):
        trace = simple_trace([1, 1])
        result = SimulationDriver(tiny_system, None, record_service=True).run(trace)
        assert result.service == [SERVICE_MEMORY, SERVICE_L1]

    def test_coverage_properties(self, tiny_system):
        trace = simple_trace([1, 2, 3])
        result = SimulationDriver(tiny_system, None).run(trace)
        assert result.coverage == 0.0
        assert result.overprediction_rate == 0.0
        assert result.accuracy == 0.0


@settings(deadline=None, max_examples=25)
@given(
    blocks=st.lists(st.integers(min_value=0, max_value=400),
                    min_size=1, max_size=300),
)
def test_driver_conservation_invariant(blocks):
    """reads = covered + uncovered + l1_hits + l2_hits for any trace."""
    system = SystemConfig.tiny()
    trace = simple_trace(blocks)
    result = SimulationDriver(system, STeMSPrefetcher()).run(trace)
    assert result.reads == (
        result.covered + result.uncovered + result.l1_hits + result.l2_hits
    )
    assert result.covered <= result.issued_prefetches


class TestTimingModel:
    def test_length_mismatch_rejected(self):
        trace = simple_trace([1])
        with pytest.raises(ValueError):
            simulate_timing(trace, [])

    def test_hits_faster_than_misses(self):
        trace = simple_trace(list(range(50)))
        fast = simulate_timing(trace, [SERVICE_L1] * 50)
        slow = simulate_timing(trace, [SERVICE_MEMORY] * 50)
        assert fast.cycles < slow.cycles

    def test_dependent_misses_serialize(self):
        n = 40
        deps = [None] + list(range(n - 1))
        chained = simple_trace(list(range(n)), deps=deps)
        parallel = simple_trace(list(range(n)))
        t_chain = simulate_timing(chained, [SERVICE_MEMORY] * n)
        t_par = simulate_timing(parallel, [SERVICE_MEMORY] * n)
        assert t_chain.cycles > 2.5 * t_par.cycles

    def test_covering_dependent_chain_wins_big(self):
        n = 40
        deps = [None] + list(range(n - 1))
        trace = simple_trace(list(range(n)), deps=deps)
        uncovered = simulate_timing(trace, [SERVICE_MEMORY] * n)
        covered = simulate_timing(trace, [SERVICE_SVB] * n)
        assert uncovered.cycles / covered.cycles > 5

    def test_covering_overlapped_misses_wins_less(self):
        """The paper's SMS-on-OLTP effect: independent misses already
        overlap, so coverage saves much less than on chains."""
        n = 40
        deps = [None] + list(range(n - 1))
        chain = simple_trace(list(range(n)), deps=deps)
        indep = simple_trace(list(range(n)))
        chain_gain = (
            simulate_timing(chain, [SERVICE_MEMORY] * n).cycles
            / simulate_timing(chain, [SERVICE_SVB] * n).cycles
        )
        indep_gain = (
            simulate_timing(indep, [SERVICE_MEMORY] * n).cycles
            / simulate_timing(indep, [SERVICE_SVB] * n).cycles
        )
        assert chain_gain > 2 * indep_gain

    def test_mlp_cap_limits_overlap(self):
        n = 64
        trace = simple_trace(list(range(n)))
        wide = simulate_timing(
            trace, [SERVICE_MEMORY] * n,
            TimingConfig(max_outstanding_misses=16),
        )
        narrow = simulate_timing(
            trace, [SERVICE_MEMORY] * n,
            TimingConfig(max_outstanding_misses=2),
        )
        assert narrow.cycles > wide.cycles

    def test_measure_from_excludes_warmup(self):
        n = 100
        trace = simple_trace(list(range(n)))
        service = [SERVICE_MEMORY] * 50 + [SERVICE_L1] * 50
        full = simulate_timing(trace, service)
        tail = simulate_timing(trace, service, measure_from=50)
        assert tail.cycles < full.cycles
        assert tail.instructions == sum(a.instr_gap for a in trace) // 2

    def test_measure_from_validation(self):
        trace = simple_trace([1])
        with pytest.raises(ValueError):
            simulate_timing(trace, [SERVICE_L1], measure_from=5)

    def test_ipc_and_speedup(self):
        trace = simple_trace([1, 2, 3])
        a = simulate_timing(trace, [SERVICE_L1] * 3)
        b = simulate_timing(trace, [SERVICE_MEMORY] * 3)
        assert a.ipc > b.ipc
        assert a.speedup_over(b) > 1.0

    def test_prefetched_l1_service_latency(self):
        trace = simple_trace([1, 2, 3])
        pf = simulate_timing(trace, [SERVICE_PREFETCHED_L1] * 3)
        l1 = simulate_timing(trace, [SERVICE_L1] * 3)
        assert pf.cycles == pytest.approx(l1.cycles)
