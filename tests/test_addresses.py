"""Unit and property tests for address/region arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.addresses import DEFAULT_ADDRESS_MAP, AddressMap


class TestDefaults:
    def test_paper_geometry(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.block_bytes == 64
        assert amap.region_bytes == 2048
        assert amap.blocks_per_region == 32
        assert amap.block_bits == 6
        assert amap.region_bits == 11
        assert amap.region_block_bits == 5

    def test_block_of(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.block_of(0) == 0
        assert amap.block_of(63) == 0
        assert amap.block_of(64) == 1
        assert amap.block_of(2048) == 32

    def test_region_of(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.region_of(0) == 0
        assert amap.region_of(2047) == 0
        assert amap.region_of(2048) == 1

    def test_offset_in_region(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.offset_in_region(0) == 0
        assert amap.offset_in_region(31) == 31
        assert amap.offset_in_region(32) == 0

    def test_block_in_region_roundtrip(self):
        amap = DEFAULT_ADDRESS_MAP
        block = amap.block_in_region(7, 13)
        assert amap.region_of_block(block) == 7
        assert amap.offset_in_region(block) == 13

    def test_block_in_region_bounds(self):
        with pytest.raises(ValueError):
            DEFAULT_ADDRESS_MAP.block_in_region(0, 32)
        with pytest.raises(ValueError):
            DEFAULT_ADDRESS_MAP.block_in_region(0, -1)

    def test_region_base_block(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.region_base_block(33) == 32
        assert amap.region_base_block(32) == 32
        assert amap.region_base_block(31) == 0

    def test_byte_of_block(self):
        assert DEFAULT_ADDRESS_MAP.byte_of_block(3) == 192


class TestValidation:
    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            AddressMap(block_bytes=48)

    def test_rejects_non_power_of_two_region(self):
        with pytest.raises(ValueError):
            AddressMap(region_bytes=3000)

    def test_rejects_region_smaller_than_block(self):
        with pytest.raises(ValueError):
            AddressMap(block_bytes=128, region_bytes=64)


@given(addr=st.integers(min_value=0, max_value=2**48))
def test_block_region_consistency(addr):
    amap = DEFAULT_ADDRESS_MAP
    block = amap.block_of(addr)
    assert amap.region_of(addr) == amap.region_of_block(block)


@given(
    region=st.integers(min_value=0, max_value=2**32),
    offset=st.integers(min_value=0, max_value=31),
)
def test_compose_decompose_roundtrip(region, offset):
    amap = DEFAULT_ADDRESS_MAP
    block = amap.block_in_region(region, offset)
    assert amap.region_of_block(block) == region
    assert amap.offset_in_region(block) == offset


@given(block=st.integers(min_value=0, max_value=2**40))
def test_byte_of_block_inverts_block_of(block):
    amap = DEFAULT_ADDRESS_MAP
    assert amap.block_of(amap.byte_of_block(block)) == block
