"""Tests for the trace plane: binary codec, sharded store, and the
engine's multi-consumer fan-out / replay scheduling built on top of it."""

import os

import pytest

from repro.common.config import SystemConfig
from repro.engine import (
    Engine,
    JobGraph,
    PrefetcherSpec,
    SimJob,
    execute_job,
    run_group,
)
from repro.trace.events import MemoryAccess
from repro.tracestore import (
    TraceFormatError,
    TraceStore,
    read_accesses,
    read_header,
    trace_key_hash,
    write_trace,
)
from repro.tracestore.codec import FOOTER_SIZE, RECORD_SIZE
from repro.workloads.registry import make_workload, stream_workload

LENGTH = 6_000
SEED = 11
KEY = ("db2", LENGTH, SEED)


@pytest.fixture(scope="module")
def system() -> SystemConfig:
    return SystemConfig.tiny()


@pytest.fixture(scope="module")
def generated():
    return list(stream_workload(*KEY))


class TestCodec:
    def test_round_trip_equality(self, tmp_path, generated):
        path = tmp_path / "t.trace"
        count, size = write_trace(path, {"name": "db2"}, iter(generated))
        assert count == len(generated)
        assert size == path.stat().st_size
        assert list(read_accesses(path)) == generated

    def test_round_trip_preserves_every_field(self, tmp_path):
        accesses = [
            MemoryAccess(index=0, pc=0x1234, address=7 << 40, is_write=False,
                         depends_on=None, instr_gap=1),
            MemoryAccess(index=1, pc=2**40, address=0, is_write=True,
                         depends_on=0, instr_gap=250),
        ]
        path = tmp_path / "t.trace"
        write_trace(path, {}, iter(accesses))
        assert list(read_accesses(path)) == accesses

    def test_header_survives(self, tmp_path, generated):
        path = tmp_path / "t.trace"
        header = {"name": "db2", "seed": SEED, "metadata": {"x": [1, 2]}}
        write_trace(path, header, iter(generated[:10]))
        assert read_header(path) == header

    def test_non_consecutive_indices_rejected(self, tmp_path, generated):
        with pytest.raises(ValueError, match="does not continue"):
            write_trace(tmp_path / "t.trace", {}, iter(generated[1:]))

    def test_truncated_file_rejected(self, tmp_path, generated):
        path = tmp_path / "t.trace"
        write_trace(path, {}, iter(generated[:100]))
        data = path.read_bytes()
        for cut in (len(data) - 1, len(data) - FOOTER_SIZE, 10, 3):
            path.write_bytes(data[:cut])
            with pytest.raises(TraceFormatError):
                read_header(path)

    def test_corrupt_payload_rejected_by_crc(self, tmp_path, generated):
        path = tmp_path / "t.trace"
        write_trace(path, {"name": "db2"}, iter(generated[:100]))
        data = bytearray(path.read_bytes())
        offset = len(data) - FOOTER_SIZE - 50 * RECORD_SIZE  # mid-payload
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        read_header(path)  # framing is intact...
        with pytest.raises(TraceFormatError, match="CRC"):
            list(read_accesses(path))  # ...but the payload is not

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_bytes(b"NOPE" + b"\0" * 64)
        with pytest.raises(TraceFormatError, match="not a trace file"):
            read_header(path)


class TestTraceStore:
    def test_record_then_replay_matches_generation(self, tmp_path, generated):
        store = TraceStore(tmp_path)
        assert not store.has(KEY)
        store.record(KEY)
        assert store.has(KEY)
        assert list(store.open_source(KEY)) == generated
        assert store.stats.generated == 1 and store.stats.hits == 1

    def test_sharded_layout_and_key_hash(self, tmp_path):
        store = TraceStore(tmp_path)
        digest = trace_key_hash(*KEY)
        path = store.path_for(KEY)
        assert path.parent.name == digest[:2]
        assert path.name == f"{digest}.trace"
        assert trace_key_hash("db2", LENGTH, SEED + 1) != digest

    def test_record_during_walk_publishes_after_full_pass(
        self, tmp_path, generated
    ):
        store = TraceStore(tmp_path)
        source = store.source(KEY)
        walked = list(source)
        assert walked == generated
        assert store.has(KEY)
        # the same source object switches to replay on its next pass
        hits_before = store.stats.hits
        assert list(source) == generated
        assert store.stats.hits == hits_before + 1
        assert store.stats.bytes_replayed > 0

    def test_abandoned_walk_leaves_no_entry(self, tmp_path):
        store = TraceStore(tmp_path)
        iterator = iter(store.source(KEY))
        for _ in range(10):
            next(iterator)
        iterator.close()
        assert not store.has(KEY)

    def test_corrupt_entry_treated_as_missing_and_rerecorded(
        self, tmp_path, generated
    ):
        store = TraceStore(tmp_path)
        store.record(KEY)
        path = store.path_for(KEY)
        path.write_bytes(path.read_bytes()[:-4])
        assert not store.has(KEY)
        assert list(store.source(KEY)) == generated  # re-records
        assert store.has(KEY)

    def test_replay_preserves_source_metadata(self, tmp_path):
        store = TraceStore(tmp_path)
        store.record(KEY)
        template = stream_workload(*KEY)
        replay = store.open_source(KEY)
        assert replay.name == template.name
        assert replay.category == template.category
        assert replay.metadata == template.metadata
        assert replay.length_hint == LENGTH

    def test_catalog_lists_entries(self, tmp_path):
        store = TraceStore(tmp_path)
        store.record(KEY)
        store.record(("qry2", 2_000, 5))
        workloads = sorted(entry["workload"] for entry in store.catalog())
        assert workloads == ["db2", "qry2"]


def _sweep_graph(system):
    """Several jobs of mixed kinds over one shared trace key + one extra."""
    graph = JobGraph()
    jobs = []
    for kind in ("none", "stride", "stems"):
        spec = PrefetcherSpec.make(kind) if kind != "none" else None
        jobs.append(graph.add(SimJob.make("coverage", *KEY, system, spec)))
    jobs.append(graph.add(SimJob.make(
        "timing", *KEY, system, PrefetcherSpec.make("stride"),
        warmup_fraction=0.4,
    )))
    jobs.append(graph.add(SimJob.make("joint", *KEY, system,
                                      skip_fraction=0.3)))
    jobs.append(graph.add(SimJob.make("correlation", *KEY, system)))
    jobs.append(graph.add(SimJob.make("coverage", "qry2", LENGTH, SEED,
                                      system, PrefetcherSpec.make("sms"))))
    return graph, jobs


class TestFanOutParity:
    """Fan-out and store replay must be bit-identical to per-job runs."""

    @pytest.fixture(scope="class")
    def solo(self, system):
        graph, jobs = _sweep_graph(system)
        return {job.job_hash: execute_job(job) for job in jobs}

    def test_run_group_matches_solo(self, system, solo):
        graph, jobs = _sweep_graph(system)
        shared = [job for job in jobs if job.trace_key == KEY]
        for job, result in run_group(shared, stream_workload(*KEY)):
            assert result == solo[job.job_hash], job.label()

    def test_serial_engine_fans_out_one_generation_per_key(
        self, system, solo
    ):
        graph, jobs = _sweep_graph(system)
        engine = Engine()
        results = engine.run(graph)
        for job in jobs:
            assert results[job] == solo[job.job_hash], job.label()
        # 7 jobs on one key + 1 on another: exactly 2 generation passes
        assert engine.stats.generation_passes == 2
        assert engine.stats.passes_saved == len(jobs) - 2

    def test_store_replay_serial_matches_solo(self, system, solo, tmp_path):
        graph, jobs = _sweep_graph(system)
        first = Engine(trace_store=tmp_path)
        results = first.run(graph)
        for job in jobs:
            assert results[job] == solo[job.job_hash], job.label()
        assert first.stats.generation_passes == 2
        assert first.stats.store_misses == 2

        second = Engine(trace_store=tmp_path)
        replayed = second.run(_sweep_graph(system)[0])
        for job in jobs:
            assert replayed[job] == solo[job.job_hash], job.label()
        assert second.stats.generation_passes == 0
        assert second.stats.store_hits == 2
        assert second.stats.bytes_replayed > 0

    def test_store_replay_parallel_matches_solo(self, system, solo, tmp_path):
        graph, jobs = _sweep_graph(system)
        # pin the pool replay path: under broadcast (the default) wave
        # consumers are fed from shared memory instead of replaying, so
        # the per-job store-hit accounting below would not apply —
        # tests/test_broadcast.py asserts that plane's cost model
        engine = Engine(jobs=2, trace_store=tmp_path, broadcast="off")
        results = engine.run(graph)
        for job in jobs:
            assert results[job] == solo[job.job_hash], job.label()
        # at most one generation per key; every executed job replays
        assert engine.stats.generation_passes == 2
        assert engine.stats.store_hits == len(jobs)

    def test_parallel_without_store_still_matches(self, system, solo):
        graph, jobs = _sweep_graph(system)
        results = Engine(jobs=2).run(graph)
        for job in jobs:
            assert results[job] == solo[job.job_hash], job.label()


class TestPoolWorkerStats:
    def test_worker_reports_replay_delta(self, system, tmp_path):
        from repro.engine.exec import execute_job_for_pool

        store = TraceStore(tmp_path)
        store.record(KEY)
        job = SimJob.make("coverage", *KEY, system,
                          PrefetcherSpec.make("stride"))
        job_hash, result, delta = execute_job_for_pool(
            job, materialize=False, trace_store_dir=tmp_path
        )
        assert job_hash == job.job_hash
        assert result == execute_job(job)
        assert delta["hits"] == 1 and delta["generated"] == 0
        assert delta["bytes_replayed"] > 0
