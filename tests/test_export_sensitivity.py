"""Tests for result export helpers and the sensitivity/baselines
extension experiments."""

import json
from collections import Counter

import pytest

from repro.analysis.correlation import CorrelationDistanceResult
from repro.analysis.joint import JointCoverageResult
from repro.analysis.repetition import RepetitionBreakdown
from repro.experiments import baselines, sensitivity
from repro.experiments.config import ExperimentConfig
from repro.sim.export import (
    ascii_bars,
    decode_result,
    encode_result,
    write_csv,
    write_json,
)
from repro.sim.results import CoverageResult, TimingResult


@pytest.fixture(scope="module")
def config():
    cfg = ExperimentConfig.small()
    cfg.trace_length = 30_000
    cfg.workloads = ["db2"]
    return cfg


class TestExport:
    def test_write_csv_dataclasses(self, tmp_path):
        rows = [
            CoverageResult("db2", "stems", covered=10, uncovered=30),
            CoverageResult("db2", "tms", covered=5, uncovered=35),
        ]
        path = write_csv(rows, tmp_path / "out.csv")
        text = path.read_text()
        assert "workload" in text.splitlines()[0]
        assert "coverage" in text.splitlines()[0]  # computed property
        assert "stems" in text

    def test_write_json_roundtrip(self, tmp_path):
        rows = [CoverageResult("db2", "stems", covered=10, uncovered=30)]
        path = write_json(rows, tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert data[0]["prefetcher"] == "stems"
        assert data[0]["coverage"] == pytest.approx(0.25)

    def test_write_mappings(self, tmp_path):
        path = write_csv([{"a": 1, "b": 2}], tmp_path / "m.csv")
        assert "a,b" in path.read_text()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "x.csv")

    def test_bad_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            write_json([42], tmp_path / "x.json")

    def test_ascii_bars(self):
        chart = ascii_bars({"tms": 0.3, "stems": 0.6}, width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # the max fills the width
        assert lines[0].count("#") == 5

    def test_ascii_bars_empty(self):
        assert ascii_bars({}) == ""


class TestResultCodecs:
    """Every result type an engine job can produce must survive a trip
    through plain JSON text — the disk cache depends on it."""

    CASES = [
        CoverageResult(
            "db2", "stems", accesses=100, reads=80, writes=20,
            covered=10, uncovered=30, issued_prefetches=15,
            overpredictions=5, service=["l1", "mem", "svb"],
            prefetcher_stats={"streams": 3},
        ),
        TimingResult("db2", "tms", cycles=1234.5, instructions=1000,
                     memory_stall_cycles=99.25),
        JointCoverageResult("qry2", 500, 0.1, 0.2, 0.3, 0.4),
        (RepetitionBreakdown(10, 0.4, 0.2, 0.2, 0.2),
         RepetitionBreakdown(5, 0.5, 0.1, 0.2, 0.2)),
        CorrelationDistanceResult(
            "em3d", histogram=Counter({1: 7, -2: 3, 4: 1}), unmatched=2
        ),
    ]

    @pytest.mark.parametrize("result", CASES, ids=lambda r: type(r).__name__)
    def test_json_roundtrip(self, result):
        text = json.dumps(encode_result(result))
        assert decode_result(json.loads(text)) == result

    def test_counter_keys_stay_ints(self):
        decoded = decode_result(
            json.loads(json.dumps(encode_result(self.CASES[-1])))
        )
        assert decoded.histogram[-2] == 3
        assert decoded.cumulative_within(2) == self.CASES[-1].cumulative_within(2)

    def test_unknown_type_rejected_on_encode(self):
        with pytest.raises(TypeError):
            encode_result({"plain": "dict"})

    def test_unknown_tag_rejected_on_decode(self):
        with pytest.raises(ValueError):
            decode_result({"__result__": "NoSuchResult"})


class TestSensitivity:
    def test_sweep_runs_and_orders(self, config):
        points = sensitivity.run(config, knobs=("lookahead",))
        values = [p for p in points if p.workload == "db2"]
        assert [p.value for p in values] == [2, 4, 8, 16]
        assert all(0.0 <= p.coverage <= 1.5 for p in values)
        # more lookahead must not reduce coverage dramatically
        assert values[-1].coverage >= values[0].coverage * 0.8
        assert "sensitivity" in sensitivity.format_table(points).lower()

    def test_unknown_knob_rejected(self, config):
        with pytest.raises(ValueError):
            sensitivity.run(config, knobs=("bogus",))

    def test_svb_knob_changes_system(self, config):
        points = sensitivity.run(config, knobs=("svb_entries",))
        assert {p.value for p in points} == {16, 32, 64, 128}


class TestBaselines:
    def test_lineage_comparison(self, config):
        results = baselines.run(config)
        rows = {r.predictor: r for r in results["db2"]}
        assert set(rows) == {"stride", "markov", "ghb", "tms", "stems"}
        # off-chip history must beat on-chip history on OLTP working sets
        assert rows["stems"].coverage > rows["ghb"].coverage
        assert "lineage" in baselines.format_table(results)
