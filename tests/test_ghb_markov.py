"""Tests for the extension baselines: GHB and Markov prefetchers."""

from repro.common.config import CacheConfig, SystemConfig
from repro.memsys.hierarchy import ServiceLevel
from repro.prefetch.base import AccessEvent
from repro.prefetch.ghb import GHBConfig, GHBPrefetcher
from repro.prefetch.markov import MarkovConfig, MarkovPrefetcher
from repro.sim.driver import SimulationDriver
from repro.trace.container import Trace
from repro.trace.events import MemoryAccess


def miss(pf, i, block, covered=False):
    access = MemoryAccess(index=i, pc=0x1, address=block * 64)
    level = ServiceLevel.SVB if covered else ServiceLevel.MEMORY
    pf.on_access(AccessEvent(access=access, block=block, level=level,
                             covered=covered))


class TestGHB:
    def test_replays_following_misses(self):
        pf = GHBPrefetcher(GHBConfig(degree=2))
        for i, b in enumerate([1, 2, 3, 4]):
            miss(pf, i, b)
        miss(pf, 10, 1)
        assert [r.block for r in pf.pop_requests()] == [2, 3]

    def test_no_prediction_on_first_occurrence(self):
        pf = GHBPrefetcher()
        for i, b in enumerate([1, 2, 3]):
            miss(pf, i, b)
        assert pf.pop_requests() == []

    def test_history_wraparound_limits_reach(self):
        pf = GHBPrefetcher(GHBConfig(history_entries=4, index_entries=64))
        miss(pf, 0, 100)
        for i, b in enumerate(range(200, 210), start=1):
            miss(pf, i, b)  # floods the 4-entry history
        miss(pf, 50, 100)  # previous occurrence overwritten: no chain
        assert pf.pop_requests() == []

    def test_writes_and_hits_ignored(self):
        pf = GHBPrefetcher()
        access = MemoryAccess(index=0, pc=0x1, address=64, is_write=True)
        pf.on_access(AccessEvent(access=access, block=1,
                                 level=ServiceLevel.MEMORY))
        access = MemoryAccess(index=1, pc=0x1, address=128)
        pf.on_access(AccessEvent(access=access, block=2, level=ServiceLevel.L1))
        assert pf._head == 0

    def test_on_short_loop_in_driver(self):
        # the loop (200 blocks) outruns a 4 KB L2 but fits the 256-entry
        # GHB history: on-chip temporal correlation covers it
        system = SystemConfig(
            l1=CacheConfig(size_bytes=1024, associativity=2),
            l2=CacheConfig(size_bytes=4096, associativity=4),
        )
        trace = Trace("loop")
        blocks = [7000 + i * 17 for i in range(200)]
        for repeat in range(6):
            for b in blocks:
                trace.append(pc=0x5, address=b * 64)
        result = SimulationDriver(system, GHBPrefetcher()).run(trace)
        assert result.coverage > 0.3


class TestMarkov:
    def test_learns_pair_transition(self):
        pf = MarkovPrefetcher(MarkovConfig(fanout=1))
        for i, b in enumerate([1, 2, 1, 2]):
            miss(pf, i, b)
        pf.pop_requests()
        miss(pf, 10, 1)
        assert [r.block for r in pf.pop_requests()] == [2]

    def test_ranks_successors_by_frequency(self):
        pf = MarkovPrefetcher(MarkovConfig(fanout=1))
        sequence = [1, 2, 1, 2, 1, 3]  # 1->2 twice, 1->3 once
        for i, b in enumerate(sequence):
            miss(pf, i, b)
        pf.pop_requests()
        miss(pf, 10, 1)
        assert [r.block for r in pf.pop_requests()] == [2]

    def test_successor_cap_drops_weakest(self):
        pf = MarkovPrefetcher(MarkovConfig(successors=2, fanout=2))
        sequence = [1, 2, 1, 2, 1, 3, 1, 3, 1, 4]
        for i, b in enumerate(sequence):
            miss(pf, i, b)
        entry = pf._table.get(1)
        assert len(entry) <= 2

    def test_self_transition_ignored(self):
        pf = MarkovPrefetcher()
        for i in range(4):
            miss(pf, i, 5)
        assert pf._table.get(5) is None

    def test_on_repeating_chain_in_driver(self):
        system = SystemConfig(
            l1=CacheConfig(size_bytes=1024, associativity=2),
            l2=CacheConfig(size_bytes=4096, associativity=4),
        )
        trace = Trace("chain")
        blocks = [9000 + i * 13 for i in range(200)]
        for repeat in range(5):
            for b in blocks:
                trace.append(pc=0x5, address=b * 64)
        result = SimulationDriver(system, MarkovPrefetcher()).run(trace)
        assert result.coverage > 0.3
