"""Tests for StatGroup and the configuration dataclasses."""

import pytest

from repro.common.config import (
    CacheConfig,
    SMSConfig,
    STeMSConfig,
    SystemConfig,
    TMSConfig,
)
from repro.common.stats import StatGroup


class TestStatGroup:
    def test_add_and_get(self):
        s = StatGroup("x")
        s.add("hits")
        s.add("hits", 2)
        assert s.get("hits") == 3
        assert s["hits"] == 3
        assert s.get("absent") == 0

    def test_ratio(self):
        s = StatGroup()
        s.add("covered", 30)
        s.add("misses", 120)
        assert s.ratio("covered", "misses") == pytest.approx(0.25)
        assert s.ratio("covered", "nonexistent") == 0.0

    def test_children_and_merge(self):
        a = StatGroup("a")
        a.child("sub").add("n", 1)
        b = StatGroup("b")
        b.child("sub").add("n", 2)
        b.add("top", 5)
        a.merge(b)
        assert a.child("sub").get("n") == 3
        assert a.get("top") == 5

    def test_to_dict(self):
        s = StatGroup()
        s.add("x", 1)
        s.child("c").add("y", 2)
        d = s.to_dict()
        assert d["x"] == 1
        assert d["c"]["y"] == 2

    def test_format_renders_integers(self):
        s = StatGroup("g")
        s.add("n", 2)
        assert "n: 2" in s.format()


class TestCacheConfig:
    def test_derived_geometry(self):
        c = CacheConfig(size_bytes=64 * 1024, associativity=2)
        assert c.num_blocks == 1024
        assert c.num_sets == 512

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3)


class TestSystemPresets:
    def test_paper_matches_table1(self):
        system = SystemConfig.paper()
        assert system.l1.size_bytes == 64 * 1024
        assert system.l1.associativity == 2
        assert system.l2.size_bytes == 8 * 1024 * 1024
        assert system.l2.associativity == 8
        assert system.svb_entries == 64

    def test_scaled_preserves_ratio_direction(self):
        system = SystemConfig.scaled()
        assert system.l2.size_bytes // system.l1.size_bytes == 32

    def test_tiny_is_small(self):
        assert SystemConfig.tiny().l1.size_bytes < SystemConfig.scaled().l1.size_bytes


class TestPredictorConfigs:
    def test_tms_paper_preset(self):
        assert TMSConfig.paper().cmob_entries == 384 * 1024

    def test_stems_paper_preset(self):
        assert STeMSConfig.paper().rmob_entries == 128 * 1024

    def test_stems_scientific_lookahead(self):
        assert STeMSConfig.scientific().lookahead == 12
        assert STeMSConfig().lookahead == 8

    def test_counter_max(self):
        assert SMSConfig(counter_bits=2).counter_max == 3
        assert STeMSConfig(counter_bits=3).counter_max == 7
