"""Tests for the set-associative cache model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.memsys.cache import Cache


def small_cache(assoc=2, blocks=8) -> Cache:
    return Cache(CacheConfig(size_bytes=blocks * 64, associativity=assoc))


class TestBasics:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(5)
        cache.fill(5)
        assert cache.lookup(5)

    def test_fill_reports_eviction(self):
        cache = small_cache(assoc=2, blocks=2)  # one set, two ways
        cache.fill(0)
        cache.fill(1)
        outcome = cache.fill(2)
        assert outcome.evicted_block == 0

    def test_lru_within_set(self):
        cache = small_cache(assoc=2, blocks=2)
        cache.fill(0)
        cache.fill(1)
        cache.lookup(0)  # refresh 0; victim becomes 1
        outcome = cache.fill(2)
        assert outcome.evicted_block == 1

    def test_set_mapping_isolation(self):
        cache = small_cache(assoc=1, blocks=4)  # 4 sets, direct-mapped
        cache.fill(0)
        cache.fill(1)
        assert cache.lookup(0) and cache.lookup(1)
        outcome = cache.fill(4)  # maps to set 0
        assert outcome.evicted_block == 0

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(3)
        assert cache.invalidate(3)
        assert not cache.lookup(3)
        assert not cache.invalidate(3)

    def test_len_counts_resident(self):
        cache = small_cache()
        for block in range(5):
            cache.fill(block)
        assert len(cache) == 5


class TestPrefetchedFlag:
    def test_prefetch_hit_reported_once(self):
        cache = small_cache()
        cache.fill(7, prefetched=True)
        hit, was_prefetched = cache.demand_lookup(7)
        assert hit and was_prefetched
        hit, was_prefetched = cache.demand_lookup(7)
        assert hit and not was_prefetched

    def test_unused_prefetch_eviction_flagged(self):
        cache = small_cache(assoc=1, blocks=1)
        cache.fill(0, prefetched=True)
        outcome = cache.fill(1)
        assert outcome.evicted_block == 0
        assert outcome.evicted_unused_prefetch

    def test_used_prefetch_eviction_not_flagged(self):
        cache = small_cache(assoc=1, blocks=1)
        cache.fill(0, prefetched=True)
        cache.demand_lookup(0)
        outcome = cache.fill(1)
        assert not outcome.evicted_unused_prefetch

    def test_unused_prefetch_count(self):
        cache = small_cache()
        cache.fill(1, prefetched=True)
        cache.fill(2, prefetched=True)
        cache.demand_lookup(1)
        assert cache.unused_prefetch_count() == 1

    def test_demand_fill_clears_flag(self):
        cache = small_cache()
        cache.fill(1, prefetched=True)
        cache.fill(1, prefetched=False)
        assert cache.unused_prefetch_count() == 0


@given(blocks=st.lists(st.integers(min_value=0, max_value=100), max_size=400))
def test_residency_never_exceeds_capacity(blocks):
    cache = small_cache(assoc=2, blocks=8)
    for block in blocks:
        cache.fill(block)
        assert len(cache) <= 8


@given(blocks=st.lists(st.integers(min_value=0, max_value=50), max_size=300))
def test_fill_then_immediate_lookup_hits(blocks):
    cache = small_cache(assoc=2, blocks=8)
    for block in blocks:
        cache.fill(block)
        assert cache.lookup(block)
