"""Tests for STeMS reconstruction — including the paper's Figures 3/5
worked example reproduced exactly (see DESIGN.md §4 for the derivation).
"""

import pytest

from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.common.config import STeMSConfig
from repro.prefetch.sms.generations import SequenceElement
from repro.prefetch.stems.pst import PatternSequenceTable
from repro.prefetch.stems.reconstruction import Reconstructor
from repro.prefetch.tms.cmob import MissEntry

AMAP = DEFAULT_ADDRESS_MAP


def make_pst(entries):
    pst = PatternSequenceTable(STeMSConfig(), AMAP.blocks_per_region)
    for index, pairs in entries.items():
        pst.train(
            index,
            [SequenceElement(offset=o, delta=d, offchip=True) for o, d in pairs],
        )
    return pst


class TestFigure3Example:
    """Observed miss order: A, A+4, B, A+2, B+6, A-1, C, D, D+1, D+2.

    Decomposition (Fig. 3): triggers A:0, B:1, C:3, D:0; spatial
    sequences A: (+4,0)(+2,1)(-1,1); B: (+6,1); D: (+1,0)(+2,0).
    Reconstruction (Fig. 5) must reproduce the original total order.
    """

    def setup_method(self):
        # regions 10, 20, 30, 40; A at offset 10 so A-1 stays in-region
        self.A = AMAP.block_in_region(10, 10)
        self.B = AMAP.block_in_region(20, 3)
        self.C = AMAP.block_in_region(30, 0)
        self.D = AMAP.block_in_region(40, 5)
        self.pst = make_pst({
            (0x1, 10): [(14, 0), (12, 1), (9, 1)],   # A+4, A+2, A-1
            (0x2, 3): [(9, 1)],                      # B+6
            (0x4, 5): [(6, 0), (7, 0)],              # D+1, D+2
        })
        self.entries = [
            MissEntry(block=self.A, pc=0x1, delta=0),
            MissEntry(block=self.B, pc=0x2, delta=1),
            MissEntry(block=self.C, pc=0x3, delta=3),
            MissEntry(block=self.D, pc=0x4, delta=0),
        ]
        self.reconstructor = Reconstructor(self.pst, AMAP)

    def test_total_order_reconstructed(self):
        result = self.reconstructor.reconstruct(self.entries, include_first=True)
        expected = [
            self.A,
            self.A + 4,
            self.B,
            self.A + 2,
            self.B + 6,
            self.A - 1,
            self.C,
            self.D,
            self.D + 1,
            self.D + 2,
        ]
        assert result.blocks == expected
        assert result.dropped == 0
        assert result.placed_adjacent == 0

    def test_include_first_false_skips_demand_miss(self):
        result = self.reconstructor.reconstruct(self.entries, include_first=False)
        assert result.blocks[0] == self.A + 4
        assert self.A not in result.blocks

    def test_regions_registered(self):
        seen = {}
        result = self.reconstructor.reconstruct(
            self.entries, on_region=lambda region, index: seen.__setitem__(region, index)
        )
        assert seen[10] == (0x1, 10)
        assert seen[20] == (0x2, 3)
        assert 30 not in seen  # C has no spatial sequence
        assert result.regions.keys() == seen.keys()


class TestPlacement:
    def test_collision_searches_adjacent_slots(self):
        # two triggers with delta 0 whose spatial elements collide
        pst = make_pst({(0x1, 0): [(1, 0)], (0x2, 0): [(1, 0)]})
        entries = [
            MissEntry(block=AMAP.block_in_region(1, 0), pc=0x1, delta=0),
            MissEntry(block=AMAP.block_in_region(2, 0), pc=0x2, delta=0),
        ]
        recon = Reconstructor(pst, AMAP)
        result = recon.reconstruct(entries)
        # both spatial elements target slot 1 then 2; the window resolves it
        assert result.placed_adjacent >= 1
        assert result.dropped == 0
        assert AMAP.block_in_region(1, 1) in result.blocks
        assert AMAP.block_in_region(2, 1) in result.blocks

    def test_overflow_beyond_buffer_dropped(self):
        pst = make_pst({(0x1, 0): [(1, 200)]})
        entries = [MissEntry(block=AMAP.block_in_region(1, 0), pc=0x1, delta=0)]
        recon = Reconstructor(pst, AMAP, buffer_size=64)
        result = recon.reconstruct(entries)
        assert result.dropped == 1
        assert len(result.blocks) == 1  # only the trigger itself

    def test_empty_entries(self):
        recon = Reconstructor(make_pst({}), AMAP)
        result = recon.reconstruct([])
        assert result.blocks == []

    def test_duplicate_blocks_deduplicated(self):
        pst = make_pst({(0x1, 0): [(1, 0)], (0x2, 5): [(1, 4)]})
        # second region's element is region 1's block? No -- same region
        entries = [
            MissEntry(block=AMAP.block_in_region(1, 0), pc=0x1, delta=0),
            MissEntry(block=AMAP.block_in_region(1, 0), pc=0x1, delta=5),
        ]
        recon = Reconstructor(pst, AMAP)
        result = recon.reconstruct(entries, include_first=True)
        assert len(result.blocks) == len(set(result.blocks))

    def test_placement_window_zero_drops_collisions(self):
        pst = make_pst({(0x1, 0): [(1, 0)], (0x2, 0): [(1, 0)]})
        entries = [
            MissEntry(block=AMAP.block_in_region(1, 0), pc=0x1, delta=0),
            MissEntry(block=AMAP.block_in_region(2, 0), pc=0x2, delta=0),
        ]
        recon = Reconstructor(pst, AMAP, placement_window=0)
        result = recon.reconstruct(entries)
        assert result.dropped >= 1
