"""Doc sanity as a tier-1 test: docs code blocks and examples must run."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_check_docs_passes():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
