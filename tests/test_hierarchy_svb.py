"""Tests for the two-level hierarchy and the streamed value buffer."""

import pytest

from repro.common.config import SystemConfig
from repro.memsys.hierarchy import Hierarchy, ServiceLevel
from repro.memsys.svb import StreamedValueBuffer


class TestHierarchy:
    def test_first_access_is_offchip(self, tiny_system):
        h = Hierarchy(tiny_system)
        assert h.access(100).level is ServiceLevel.MEMORY

    def test_second_access_hits_l1(self, tiny_system):
        h = Hierarchy(tiny_system)
        h.access(100)
        assert h.access(100).level is ServiceLevel.L1

    def test_l2_hit_after_l1_eviction(self, tiny_system):
        h = Hierarchy(tiny_system)
        h.access(0)
        # flood L1 (64 blocks in tiny config) without exceeding L2
        for block in range(1, 200):
            h.access(block)
        assert 0 not in h.l1
        assert h.access(0).level is ServiceLevel.L2

    def test_eviction_notification(self, tiny_system):
        h = Hierarchy(tiny_system)
        evicted = []
        for block in range(0, 300):
            outcome = h.access(block)
            evicted.extend(outcome.l1_evictions)
        assert evicted, "flooding the L1 must produce eviction notices"

    def test_install_prefetch_sets_flag_and_fills_l2(self, tiny_system):
        h = Hierarchy(tiny_system)
        h.install_prefetch(42)
        assert 42 in h.l1 and 42 in h.l2
        outcome = h.access(42)
        assert outcome.level is ServiceLevel.L1
        assert outcome.prefetch_hit

    def test_prefetch_hit_only_once(self, tiny_system):
        h = Hierarchy(tiny_system)
        h.install_prefetch(42)
        assert h.access(42).prefetch_hit
        assert not h.access(42).prefetch_hit

    def test_fill_from_svb_places_block(self, tiny_system):
        h = Hierarchy(tiny_system)
        outcome = h.fill_from_svb(9)
        assert outcome.level is ServiceLevel.SVB
        assert 9 in h.l1 and 9 in h.l2

    def test_present(self, tiny_system):
        h = Hierarchy(tiny_system)
        assert h.present(5) is None
        h.access(5)
        assert h.present(5) is ServiceLevel.L1

    def test_stats_counters(self, tiny_system):
        h = Hierarchy(tiny_system)
        h.access(1)
        h.access(1)
        assert h.stats.get("accesses") == 2
        assert h.stats.get("offchip_misses") == 1
        assert h.stats.get("l1_hits") == 1


class TestSVB:
    def test_insert_consume(self):
        svb = StreamedValueBuffer(4)
        svb.insert(10, stream_id=3)
        assert 10 in svb
        assert svb.consume(10) == 3
        assert 10 not in svb
        assert svb.consume(10) is None

    def test_capacity_eviction_counts_unused(self):
        discards = []
        svb = StreamedValueBuffer(2, on_discard_unused=lambda b, s: discards.append(b))
        svb.insert(1)
        svb.insert(2)
        svb.insert(3)
        assert discards == [1]
        assert svb.discarded_unused == 1

    def test_reinsert_refreshes(self):
        svb = StreamedValueBuffer(2)
        svb.insert(1)
        svb.insert(2)
        svb.insert(1)  # refresh
        svb.insert(3)  # evicts 2, not 1
        assert 1 in svb and 2 not in svb

    def test_invalidate_stream(self):
        svb = StreamedValueBuffer(8)
        svb.insert(1, stream_id=7)
        svb.insert(2, stream_id=7)
        svb.insert(3, stream_id=8)
        assert svb.invalidate_stream(7) == 2
        assert 3 in svb and 1 not in svb

    def test_drain_unused(self):
        svb = StreamedValueBuffer(8)
        svb.insert(1)
        svb.insert(2)
        svb.consume(1)
        assert svb.drain_unused() == 1
        assert len(svb) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            StreamedValueBuffer(0)

    def test_counters(self):
        svb = StreamedValueBuffer(4)
        svb.insert(1)
        svb.insert(2)
        svb.consume(2)
        assert svb.inserted == 2
        assert svb.consumed == 1
