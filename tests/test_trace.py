"""Tests for trace records, containers, persistence and statistics."""

import pytest

from repro.trace.container import Trace
from repro.trace.events import MemoryAccess
from repro.trace.tracestats import summarize_trace


class TestMemoryAccess:
    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            MemoryAccess(index=0, pc=0, address=-1)

    def test_rejects_forward_dependence(self):
        with pytest.raises(ValueError):
            MemoryAccess(index=3, pc=0, address=0, depends_on=3)

    def test_valid_dependence(self):
        access = MemoryAccess(index=3, pc=0, address=0, depends_on=1)
        assert access.depends_on == 1


class TestTrace:
    def test_append_assigns_indices(self):
        trace = Trace("t")
        a = trace.append(pc=1, address=64)
        b = trace.append(pc=2, address=128)
        assert (a.index, b.index) == (0, 1)
        assert len(trace) == 2

    def test_extend_validates_continuity(self):
        trace = Trace("t")
        trace.append(pc=1, address=0)
        with pytest.raises(ValueError):
            trace.extend([MemoryAccess(index=5, pc=0, address=0)])

    def test_reads_filter(self):
        trace = Trace("t")
        trace.append(pc=1, address=0)
        trace.append(pc=1, address=64, is_write=True)
        assert len(list(trace.reads())) == 1

    def test_indexing_and_iteration(self):
        trace = Trace("t")
        trace.append(pc=1, address=0)
        assert trace[0].address == 0
        assert [a.pc for a in trace] == [1]

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace("roundtrip", category="oltp", metadata={"seed": 9})
        trace.append(pc=1, address=64, instr_gap=7)
        trace.append(pc=2, address=128, is_write=True, depends_on=0)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "roundtrip"
        assert loaded.category == "oltp"
        assert loaded.metadata["seed"] == 9
        assert len(loaded) == 2
        assert loaded[1].depends_on == 0
        assert loaded[1].is_write
        assert loaded[0].instr_gap == 7


class TestTraceStats:
    def test_summary_fields(self):
        trace = Trace("s")
        trace.append(pc=1, address=0)
        trace.append(pc=1, address=64, is_write=True)
        trace.append(pc=2, address=2048, depends_on=0)
        stats = summarize_trace(trace)
        assert stats.accesses == 3
        assert stats.reads == 2
        assert stats.writes == 1
        assert stats.unique_blocks == 3
        assert stats.unique_regions == 2
        assert stats.dependent_fraction == pytest.approx(1 / 3)
        assert stats.unique_pcs == 2
        assert "footprint" in stats.format()

    def test_empty_trace(self):
        stats = summarize_trace(Trace("empty"))
        assert stats.accesses == 0
        assert stats.mean_region_density == 0.0
