"""Tests for the baseline stride prefetcher."""

from repro.common.config import StrideConfig
from repro.memsys.hierarchy import ServiceLevel
from repro.prefetch.base import AccessEvent
from repro.prefetch.stride import StridePrefetcher
from repro.trace.events import MemoryAccess


def feed(pf, pc, blocks):
    for i, block in enumerate(blocks):
        access = MemoryAccess(index=i, pc=pc, address=block * 64)
        pf.on_access(AccessEvent(access=access, block=block,
                                 level=ServiceLevel.MEMORY))
    return pf.pop_requests()


class TestStride:
    def test_detects_unit_stride(self):
        pf = StridePrefetcher(StrideConfig(degree=2))
        requests = feed(pf, 0x10, [100, 101, 102])
        blocks = [r.block for r in requests]
        assert 103 in blocks and 104 in blocks

    def test_detects_negative_stride(self):
        pf = StridePrefetcher(StrideConfig(degree=1))
        requests = feed(pf, 0x10, [100, 97, 94])
        assert [r.block for r in requests] == [91]

    def test_requires_confidence(self):
        pf = StridePrefetcher(StrideConfig(degree=1, confidence_threshold=2))
        assert feed(pf, 0x10, [100, 105]) == []  # one stride seen: no fetch

    def test_stride_change_resets(self):
        pf = StridePrefetcher(StrideConfig(degree=1))
        feed(pf, 0x10, [100, 101, 102])
        pf.pop_requests()
        # change stride: confidence resets, no prediction on first new stride
        access = MemoryAccess(index=9, pc=0x10, address=200 * 64)
        pf.on_access(AccessEvent(access=access, block=200,
                                 level=ServiceLevel.MEMORY))
        assert pf.pop_requests() == []

    def test_per_pc_isolation(self):
        pf = StridePrefetcher(StrideConfig(degree=1))
        for i, (pc, block) in enumerate(
            [(1, 10), (2, 500), (1, 11), (2, 510), (1, 12), (2, 520)]
        ):
            access = MemoryAccess(index=i, pc=pc, address=block * 64)
            pf.on_access(AccessEvent(access=access, block=block,
                                     level=ServiceLevel.MEMORY))
        blocks = {r.block for r in pf.pop_requests()}
        assert 13 in blocks and 530 in blocks

    def test_zero_stride_ignored(self):
        pf = StridePrefetcher(StrideConfig(degree=1))
        assert feed(pf, 0x10, [100, 100, 100, 100]) == []

    def test_table_capacity(self):
        pf = StridePrefetcher(StrideConfig(table_entries=2, degree=1))
        # train pc 1, then displace it with pcs 2 and 3
        feed(pf, 1, [10, 11])
        feed(pf, 2, [100])
        feed(pf, 3, [200])
        pf.pop_requests()
        # pc 1 entry evicted: next access re-allocates, no stride memory
        access = MemoryAccess(index=50, pc=1, address=12 * 64)
        pf.on_access(AccessEvent(access=access, block=12,
                                 level=ServiceLevel.MEMORY))
        assert pf.pop_requests() == []

    def test_install_target_is_l1(self):
        assert StridePrefetcher().install_target == "l1"
