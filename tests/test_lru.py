"""Unit and property tests for the LRU containers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.lru import LRUSet, LRUTable


class TestLRUTable:
    def test_put_get(self):
        table = LRUTable(4)
        table.put("a", 1)
        assert table.get("a") == 1
        assert table.get("missing") is None

    def test_eviction_order(self):
        table = LRUTable(2)
        table.put("a", 1)
        table.put("b", 2)
        evicted = table.put("c", 3)
        assert evicted == ("a", 1)
        assert "a" not in table
        assert "b" in table and "c" in table

    def test_get_refreshes_recency(self):
        table = LRUTable(2)
        table.put("a", 1)
        table.put("b", 2)
        table.get("a")
        evicted = table.put("c", 3)
        assert evicted == ("b", 2)

    def test_peek_does_not_refresh(self):
        table = LRUTable(2)
        table.put("a", 1)
        table.put("b", 2)
        table.peek("a")
        evicted = table.put("c", 3)
        assert evicted == ("a", 1)

    def test_update_existing_no_eviction(self):
        table = LRUTable(2)
        table.put("a", 1)
        table.put("b", 2)
        assert table.put("a", 10) is None
        assert table.get("a") == 10

    def test_eviction_callback(self):
        evictions = []
        table = LRUTable(1, on_evict=lambda k, v: evictions.append((k, v)))
        table.put("a", 1)
        table.put("b", 2)
        assert evictions == [("a", 1)]

    def test_pop_skips_callback(self):
        evictions = []
        table = LRUTable(2, on_evict=lambda k, v: evictions.append(k))
        table.put("a", 1)
        assert table.pop("a") == 1
        assert table.pop("a") is None
        assert evictions == []

    def test_lru_key(self):
        table = LRUTable(3)
        assert table.lru_key() is None
        table.put("a", 1)
        table.put("b", 2)
        assert table.lru_key() == "a"
        table.touch("a")
        assert table.lru_key() == "b"

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUTable(0)


class TestLRUSet:
    def test_add_contains(self):
        s = LRUSet(2)
        assert s.add("x") is None
        assert "x" in s

    def test_displacement(self):
        s = LRUSet(2)
        s.add("x")
        s.add("y")
        assert s.add("z") == "x"
        assert len(s) == 2


@given(
    ops=st.lists(st.integers(min_value=0, max_value=20), max_size=300),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_capacity_never_exceeded(ops, capacity):
    table = LRUTable(capacity)
    for op in ops:
        table.put(op, op)
        assert len(table) <= capacity


@given(ops=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=200))
def test_most_recent_key_always_present(ops):
    table = LRUTable(3)
    for op in ops:
        table.put(op, op)
        assert op in table
