"""Behavioural tests for the STeMS prefetcher (training, RMOB filtering,
reconstructed streams, spatial-only streams, throttling)."""

from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.common.config import STeMSConfig, SystemConfig
from repro.memsys.hierarchy import ServiceLevel
from repro.prefetch.base import AccessEvent
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.sim.driver import SimulationDriver
from repro.trace.container import Trace
from repro.trace.events import MemoryAccess

AMAP = DEFAULT_ADDRESS_MAP


def block(region, offset):
    return AMAP.block_in_region(region, offset)


def miss(pf, i, b, pc=0x1, covered=False, stream_id=-1, level=None):
    access = MemoryAccess(index=i, pc=pc, address=b * 64)
    if level is None:
        level = ServiceLevel.SVB if covered else ServiceLevel.MEMORY
    pf.on_access(AccessEvent(access=access, block=b, level=level,
                             covered=covered, stream_id=stream_id))


class TestTraining:
    def test_triggers_always_appended_to_rmob(self):
        pf = STeMSPrefetcher()
        miss(pf, 0, block(1, 0))
        assert pf.stats.get("rmob_appends") == 1

    def test_spatially_predicted_misses_filtered(self):
        pf = STeMSPrefetcher()
        # teach the PST: generation (pc 0x1, offset 0) -> offset 3
        miss(pf, 0, block(1, 0), pc=0x1)
        miss(pf, 1, block(1, 3), pc=0x2)
        pf.on_l1_eviction(block(1, 3))  # train
        # replay on a new region: the trigger appends, offset 3 is filtered
        miss(pf, 2, block(2, 0), pc=0x1)
        appends_before = pf.stats.get("rmob_appends")
        miss(pf, 3, block(2, 3), pc=0x2)
        assert pf.stats.get("rmob_appends") == appends_before
        assert pf.stats.get("rmob_filtered") == 1

    def test_unpredicted_spatial_misses_appended(self):
        pf = STeMSPrefetcher()
        miss(pf, 0, block(1, 0))
        miss(pf, 1, block(1, 9))  # nothing learned yet: spatial miss
        assert pf.stats.get("rmob_appends") == 2

    def test_rmob_deltas_count_filtered_misses(self):
        pf = STeMSPrefetcher()
        miss(pf, 0, block(1, 0), pc=0x1)
        miss(pf, 1, block(1, 3), pc=0x2)
        pf.on_l1_eviction(block(1, 3))
        miss(pf, 2, block(2, 0), pc=0x1)   # trigger (append)
        miss(pf, 3, block(2, 3), pc=0x2)   # filtered
        miss(pf, 4, block(3, 0), pc=0x9)   # trigger: delta must be 1
        entry = pf.rmob.get(pf.rmob.head - 1)
        assert entry.block == block(3, 0)
        assert entry.delta == 1

    def test_l2_hits_do_not_advance_miss_count(self):
        pf = STeMSPrefetcher()
        miss(pf, 0, block(1, 0))
        miss(pf, 1, block(1, 5), level=ServiceLevel.L2)
        assert pf._miss_count == 1


class TestSpatialOnlyStreams:
    def test_stream_on_unpredicted_generation(self):
        pf = STeMSPrefetcher()
        # train pattern (0x1, 0) -> offsets 3, 7
        miss(pf, 0, block(1, 0), pc=0x1)
        miss(pf, 1, block(1, 3), pc=0x2)
        miss(pf, 2, block(1, 7), pc=0x2)
        pf.on_l1_eviction(block(1, 3))
        pf.pop_requests()
        # new region trigger with the learned index: spatial-only stream
        miss(pf, 3, block(5, 0), pc=0x1)
        requests = pf.pop_requests()
        assert pf.stats.get("spatial_only_streams") == 1
        # throttled start: initial_fetch blocks, in sequence order
        assert [r.block for r in requests] == [block(5, 3), block(5, 7)][
            : STeMSConfig().initial_fetch
        ]

    def test_consumption_extends_spatial_stream(self):
        pf = STeMSPrefetcher(STeMSConfig(initial_fetch=1))
        miss(pf, 0, block(1, 0), pc=0x1)
        for i, off in enumerate((3, 7, 9, 12), start=1):
            miss(pf, i, block(1, off), pc=0x2)
        pf.on_l1_eviction(block(1, 3))
        pf.pop_requests()
        miss(pf, 10, block(5, 0), pc=0x1)
        (first,) = pf.pop_requests()
        assert first.block == block(5, 3)
        miss(pf, 11, block(5, 3), pc=0x2, covered=True,
             stream_id=first.stream_id)
        extended = [r.block for r in pf.pop_requests()]
        assert extended == [block(5, 7), block(5, 9), block(5, 12)]

    def test_no_stream_without_pst_entry(self):
        pf = STeMSPrefetcher()
        miss(pf, 0, block(5, 0), pc=0x77)
        assert pf.pop_requests() == []
        assert pf.stats.get("spatial_only_streams") == 0


class TestReconstructedStreams:
    def test_stream_on_rmob_hit(self):
        pf = STeMSPrefetcher(STeMSConfig(initial_fetch=4))
        blocks = [block(r, 0) for r in (1, 2, 3, 4)]
        for i, b in enumerate(blocks):
            miss(pf, i, b, pc=0x1 + i * 4)
        pf.pop_requests()
        miss(pf, 10, blocks[0], pc=0x1)  # recurs: reconstruct from here
        requests = [r.block for r in pf.pop_requests()]
        assert requests == blocks[1:]
        assert pf.stats.get("reconstructed_streams") == 1

    def test_reconstruction_interleaves_spatial_sequences(self):
        pf = STeMSPrefetcher(STeMSConfig(initial_fetch=8))
        # teach spatial pattern for (0x1, 0): offset 4 follows immediately
        miss(pf, 0, block(1, 0), pc=0x1)
        miss(pf, 1, block(1, 4), pc=0x2)
        pf.on_l1_eviction(block(1, 4))
        # temporal sequence with a filtered spatial miss inside
        miss(pf, 2, block(2, 0), pc=0x1)   # trigger (appended)
        miss(pf, 3, block(2, 4), pc=0x2)   # filtered (predicted)
        miss(pf, 4, block(3, 0), pc=0x9)   # appended, delta 1
        pf.pop_requests()
        miss(pf, 10, block(2, 0), pc=0x1)  # recurs
        requests = [r.block for r in pf.pop_requests()]
        # reconstruction: slot0 = trigger (excluded), slot1 = spatial 2.4,
        # slot2 = next trigger 3.0
        assert requests == [block(2, 4), block(3, 0)]


class TestEndToEnd:
    def test_repeating_scan_covered_in_driver(self):
        """A page-structured scan repeated twice: second pass must be
        substantially covered by spatial-only streams."""
        trace = Trace("scan2x")
        offsets = [0, 2, 5, 9, 11]
        for repeat in range(2):
            for page in range(300):
                region = 1000 + page
                for step, off in enumerate(offsets):
                    trace.append(
                        pc=0x1000 + step * 4,
                        address=AMAP.block_in_region(region, off) * 64,
                    )
        result = SimulationDriver(SystemConfig.tiny(), STeMSPrefetcher()).run(trace)
        assert result.coverage > 0.5
        assert result.overprediction_rate < 0.2

    def test_finish_is_idempotent(self):
        pf = STeMSPrefetcher()
        miss(pf, 0, block(1, 0))
        pf.finish()
        pf.finish()
