"""Tests for SMS: generations (AGT), pattern history table, prefetcher."""

from repro.common.addresses import DEFAULT_ADDRESS_MAP
from repro.common.config import SMSConfig
from repro.memsys.hierarchy import ServiceLevel
from repro.prefetch.base import AccessEvent
from repro.prefetch.sms.generations import ActiveGenerationTable
from repro.prefetch.sms.pht import PatternHistoryTable
from repro.prefetch.sms.sms import SMSPrefetcher
from repro.trace.events import MemoryAccess

AMAP = DEFAULT_ADDRESS_MAP


def block(region, offset):
    return AMAP.block_in_region(region, offset)


class TestAGT:
    def test_trigger_detection(self):
        agt = ActiveGenerationTable(8, AMAP)
        assert agt.observe(0x1, block(5, 0), offchip=True).is_trigger
        assert not agt.observe(0x2, block(5, 3), offchip=True).is_trigger
        assert agt.observe(0x1, block(6, 0), offchip=True).is_trigger

    def test_records_first_touch_order(self):
        agt = ActiveGenerationTable(8, AMAP)
        agt.observe(0x1, block(5, 2), offchip=True)
        agt.observe(0x1, block(5, 7), offchip=True)
        agt.observe(0x1, block(5, 7), offchip=False)  # re-touch ignored
        agt.observe(0x1, block(5, 4), offchip=True)
        record = agt.get(5)
        assert record.trigger_offset == 2
        assert [e.offset for e in record.elements] == [7, 4]

    def test_generation_ends_on_accessed_block_eviction(self):
        ended = []
        agt = ActiveGenerationTable(8, AMAP, on_generation_end=ended.append)
        agt.observe(0x1, block(5, 0), offchip=True)
        agt.observe(0x1, block(5, 3), offchip=True)
        agt.on_l1_eviction(block(5, 9))  # untouched block: generation lives
        assert not ended
        agt.on_l1_eviction(block(5, 3))  # touched block: generation ends
        assert len(ended) == 1
        assert not agt.is_active(5)

    def test_capacity_displacement_trains(self):
        ended = []
        agt = ActiveGenerationTable(2, AMAP, on_generation_end=ended.append)
        for region in range(3):
            agt.observe(0x1, block(region, 0), offchip=True)
        assert len(ended) == 1
        assert ended[0].region == 0

    def test_deltas_count_intervening_misses(self):
        agt = ActiveGenerationTable(8, AMAP)
        agt.observe(0x1, block(5, 0), offchip=True, global_miss_count=10)
        # next element 3 misses later: deltas measure strictly-between misses
        agt.observe(0x1, block(5, 4), offchip=True, global_miss_count=14)
        record = agt.get(5)
        assert record.elements[0].delta == 3

    def test_flush_ends_everything(self):
        ended = []
        agt = ActiveGenerationTable(8, AMAP, on_generation_end=ended.append)
        agt.observe(0x1, block(1, 0), offchip=True)
        agt.observe(0x1, block(2, 0), offchip=True)
        agt.flush()
        assert len(ended) == 2


class TestPHT:
    def test_bit_vector_mode_overwrites(self):
        pht = PatternHistoryTable(SMSConfig(use_counters=False), 32)
        pht.train((1, 0), {0, 3, 5})
        assert pht.predict((1, 0)) == [0, 3, 5]
        pht.train((1, 0), {0, 7})
        assert pht.predict((1, 0)) == [0, 7]

    def test_counters_learn_stable_blocks(self):
        pht = PatternHistoryTable(SMSConfig(), 32)
        pht.train((1, 0), {0, 3, 5})      # new entry: predicted immediately
        assert pht.predict((1, 0)) == [0, 3, 5]
        pht.train((1, 0), {0, 3, 9})      # 9 joins below threshold
        predicted = pht.predict((1, 0))
        assert 9 not in predicted
        assert 0 in predicted and 3 in predicted

    def test_counters_forget_unstable_blocks(self):
        pht = PatternHistoryTable(SMSConfig(), 32)
        pht.train((1, 0), {0, 3, 5})
        for _ in range(4):
            pht.train((1, 0), {0, 3})  # 5 decrements to zero and drops out
        assert 5 not in pht.predict((1, 0))

    def test_unknown_index_predicts_nothing(self):
        pht = PatternHistoryTable(SMSConfig(), 32)
        assert pht.predict((9, 9)) == []

    def test_offsets_out_of_range_ignored(self):
        pht = PatternHistoryTable(SMSConfig(), 32)
        pht.train((1, 0), {0, 3, 99})
        assert 99 not in pht.predict((1, 0))

    def test_lru_capacity(self):
        pht = PatternHistoryTable(SMSConfig(pht_entries=2), 32)
        pht.train((1, 0), {1})
        pht.train((2, 0), {2})
        pht.train((3, 0), {3})
        assert pht.predict((1, 0)) == []


def run_sms(accesses, config=None):
    """Feed (pc, region, offset, level) tuples; return the prefetcher."""
    pf = SMSPrefetcher(config or SMSConfig())
    for i, (pc, region, offset, level) in enumerate(accesses):
        b = block(region, offset)
        access = MemoryAccess(index=i, pc=pc, address=b * 64)
        pf.on_access(AccessEvent(access=access, block=b, level=level))
    return pf


class TestSMSPrefetcher:
    def test_predicts_learned_pattern_on_new_region(self):
        mem = ServiceLevel.MEMORY
        pf = run_sms([(0x1, 5, 0, mem), (0x2, 5, 3, mem), (0x2, 5, 7, mem)])
        pf.pop_requests()
        # end the generation (train), then trigger a different region
        pf.on_l1_eviction(block(5, 3))
        access = MemoryAccess(index=10, pc=0x1, address=block(9, 0) * 64)
        pf.on_access(AccessEvent(access=access, block=block(9, 0), level=mem))
        predicted = sorted(r.block for r in pf.pop_requests())
        assert predicted == [block(9, 3), block(9, 7)]

    def test_no_prediction_without_history(self):
        pf = run_sms([(0x1, 5, 0, ServiceLevel.MEMORY)])
        assert pf.pop_requests() == []

    def test_trigger_offset_part_of_index(self):
        mem = ServiceLevel.MEMORY
        pf = run_sms([(0x1, 5, 4, mem), (0x2, 5, 6, mem)])
        pf.on_l1_eviction(block(5, 6))
        # same PC but different trigger offset: different index, no match
        access = MemoryAccess(index=10, pc=0x1, address=block(9, 0) * 64)
        pf.on_access(AccessEvent(access=access, block=block(9, 0),
                                 level=ServiceLevel.MEMORY))
        assert pf.pop_requests() == []

    def test_finish_flushes_training(self):
        mem = ServiceLevel.MEMORY
        pf = run_sms([(0x1, 5, 0, mem), (0x2, 5, 3, mem)])
        pf.pop_requests()
        pf.finish()  # trains via flush
        access = MemoryAccess(index=10, pc=0x1, address=block(9, 0) * 64)
        pf.on_access(AccessEvent(access=access, block=block(9, 0), level=mem))
        assert [r.block for r in pf.pop_requests()] == [block(9, 3)]

    def test_install_target(self):
        assert SMSPrefetcher().install_target == "l1"
