"""``repro-fsck`` offline integrity sweep + the perf comparator.

Builds real on-disk state (engine runs with cache, trace store, and
journal), damages it in every way fsck claims to detect — corrupt trace
entries, garbage cache shards, orphan catalog rows, torn and mid-file
journal damage, missing manifests, stray temp files — and asserts the
find → ``--repair`` → clean-resweep ladder, with quarantine evidence
left behind. ``tools/bench_compare.py`` is exercised over synthetic
bench records.
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.config import SystemConfig
from repro.engine import Engine, JobGraph, ResultCache, RunJournal, SimJob
from repro.engine.cache import inspect_shard
from repro.engine.journal import encode_line, runs_root
from repro.tools.fsck import main as fsck_main

REPO = Path(__file__).resolve().parent.parent


def small_graph() -> "tuple[JobGraph, list[SimJob]]":
    graph = JobGraph()
    jobs = []
    for workload in ("apache", "em3d"):
        job = SimJob(kind="coverage", workload=workload, length=1500,
                     seed=1, system=SystemConfig.tiny())
        jobs.append(graph.add(job))
    return graph, jobs


@pytest.fixture()
def planes(tmp_path):
    """A populated cache + trace store + sealed journal."""
    cache_dir = tmp_path / "cache"
    store_dir = tmp_path / "traces"
    graph, jobs = small_graph()
    journal = RunJournal.create(
        runs_root(cache_dir), header={"argv": ["fig9"]}, fsync=False
    )
    engine = Engine(cache_dir=cache_dir, trace_store=store_dir,
                    journal=journal)
    with engine:
        engine.run(graph)
    journal.finish("clean")
    return cache_dir, store_dir, jobs


def run_fsck(*argv: str) -> int:
    return fsck_main(list(argv))


class TestFsckSweep:
    def test_clean_state_passes(self, planes, capsys):
        cache_dir, store_dir, _ = planes
        assert run_fsck("--cache-dir", str(cache_dir),
                        "--trace-store", str(store_dir)) == 0
        out = capsys.readouterr().out
        assert "0 damaged" in out

    def test_requires_a_target(self):
        with pytest.raises(SystemExit):
            run_fsck()

    def test_missing_directory_is_an_error(self, tmp_path):
        assert run_fsck("--cache-dir", str(tmp_path / "nope")) == 2

    def test_corrupt_trace_found_and_repaired(self, planes, capsys):
        cache_dir, store_dir, _ = planes
        entry = next(store_dir.glob("??/*.trace"))
        raw = bytearray(entry.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        entry.write_bytes(bytes(raw))

        assert run_fsck("--trace-store", str(store_dir)) == 1
        assert "DAMAGE" in capsys.readouterr().out
        assert run_fsck("--trace-store", str(store_dir), "--repair") == 0
        assert not entry.exists()
        quarantine = store_dir / "quarantine"
        assert list(quarantine.glob("*.trace"))
        assert list(quarantine.glob("*.reason.txt"))
        assert run_fsck("--trace-store", str(store_dir)) == 0

    def test_corrupt_shard_found_and_repaired(self, planes):
        cache_dir, _, _ = planes
        shard = next(cache_dir.glob("??/*.json"))
        shard.write_text("{not json")
        assert run_fsck("--cache-dir", str(cache_dir)) == 1
        assert run_fsck("--cache-dir", str(cache_dir), "--repair") == 0
        assert not shard.exists()
        assert list((cache_dir / "quarantine").glob("*.json"))
        assert run_fsck("--cache-dir", str(cache_dir)) == 0

    def test_renamed_shard_is_hash_mismatch(self, planes):
        cache_dir, _, _ = planes
        shard = next(cache_dir.glob("??/*.json"))
        forged = shard.with_name("ab" * 32 + ".json")
        shard.rename(forged)
        status, detail = inspect_shard(forged)
        assert status == "corrupt"
        assert "mismatch" in detail
        assert run_fsck("--cache-dir", str(cache_dir)) == 1

    def test_orphan_catalog_rows_found_and_repaired(self, planes):
        cache_dir, _, jobs = planes
        # an index-enabled handle catalogs entries, then a shard vanishes
        with ResultCache(cache_dir, index=True) as cache:
            for job in jobs:
                result = cache.load(job)
                cache.store(job, result)
        victim = cache_dir / jobs[0].job_hash[:2] / (
            jobs[0].job_hash + ".json"
        )
        victim.unlink()
        assert run_fsck("--cache-dir", str(cache_dir)) == 1
        assert run_fsck("--cache-dir", str(cache_dir), "--repair") == 0
        db = sqlite3.connect(cache_dir / "index.sqlite")
        hashes = {h for (h,) in db.execute("SELECT hash FROM results")}
        db.close()
        assert jobs[0].job_hash not in hashes
        assert jobs[1].job_hash in hashes
        # the orphan's shard is gone, so the resweep flags nothing
        # (the job simply re-executes on the next run)

    def test_torn_journal_truncated_to_valid_prefix(self, planes):
        cache_dir, _, _ = planes
        journal = next(runs_root(cache_dir).glob("*/journal.jsonl"))
        good = journal.read_bytes()
        with journal.open("ab") as handle:
            handle.write(b'deadbeef {"torn":')
        assert run_fsck("--cache-dir", str(cache_dir)) == 1
        assert run_fsck("--cache-dir", str(cache_dir), "--repair") == 0
        assert journal.read_bytes() == good
        assert list(journal.parent.glob("quarantine/journal.jsonl*"))
        assert run_fsck("--cache-dir", str(cache_dir)) == 0

    def test_mid_file_journal_damage_reported_distinctly(self, planes,
                                                         capsys):
        cache_dir, _, _ = planes
        journal = next(runs_root(cache_dir).glob("*/journal.jsonl"))
        lines = journal.read_text().splitlines()
        lines[1] = "00000000 {garbage"
        journal.write_text("\n".join(lines) + "\n")
        assert run_fsck("--cache-dir", str(cache_dir)) == 1
        out = capsys.readouterr().out
        assert "events after it are lost" in out
        assert "torn final line" not in out

    def test_missing_manifest_rebuilt_from_journal(self, planes):
        cache_dir, _, jobs = planes
        run_dir = next(runs_root(cache_dir).glob("*/"))
        (run_dir / "manifest.json").unlink()
        assert run_fsck("--cache-dir", str(cache_dir)) == 1
        assert run_fsck("--cache-dir", str(cache_dir), "--repair") == 0
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["rebuilt_by"] == "repro-fsck"
        assert manifest["status"] == "clean"
        assert manifest["jobs_completed"] == len(jobs)

    def test_stray_tmp_files_removed(self, planes, capsys):
        cache_dir, store_dir, _ = planes
        stray = store_dir / "ab"
        stray.mkdir(exist_ok=True)
        (stray / "x.trace.tmp.1234").write_bytes(b"partial")
        (cache_dir / "y.json.tmp.77").write_text("partial")
        assert run_fsck("--cache-dir", str(cache_dir),
                        "--trace-store", str(store_dir)) == 1
        assert run_fsck("--cache-dir", str(cache_dir),
                        "--trace-store", str(store_dir), "--repair") == 0
        assert not (stray / "x.trace.tmp.1234").exists()
        assert not (cache_dir / "y.json.tmp.77").exists()

    def test_crashed_run_is_a_note_not_damage(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        journal = RunJournal.create(
            runs_root(cache_dir), header={"argv": []}, fsync=False
        )
        _, jobs = small_graph()
        journal.job_scheduled(jobs[0])
        journal.close()  # never sealed
        manifest_path = runs_root(cache_dir) / journal.run_id / (
            "manifest.json"
        )
        manifest = json.loads(manifest_path.read_text())
        manifest["pid"] = 2 ** 22 + 1
        manifest_path.write_text(json.dumps(manifest))
        assert run_fsck("--cache-dir", str(cache_dir)) == 0
        out = capsys.readouterr().out
        assert "resumable" in out

    def test_stale_shard_is_a_note_not_damage(self, planes, capsys):
        cache_dir, _, _ = planes
        shard = next(cache_dir.glob("??/*.json"))
        document = json.loads(shard.read_text())
        document["repro"] = "0.0.1"
        shard.write_text(json.dumps(document))
        assert run_fsck("--cache-dir", str(cache_dir)) == 0
        assert "note" in capsys.readouterr().out


class TestBenchCompare:
    def _record(self, pr: int, scale: float = 1.0) -> dict:
        return {
            "bench": "faults_smoke", "pr": pr,
            "kinds": {
                "coverage": {"accesses_per_second": 40_000.0 * scale},
                "timing": {"accesses_per_second": 25_000.0 * scale},
            },
            "clean_wall_seconds": 8.0,
        }

    def _run(self, tmp_path, baseline, current, *extra: str):
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        if baseline is not None:
            base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "bench_compare.py"),
             "--current", str(cur_path), "--baseline", str(base_path),
             *extra],
            capture_output=True, text=True,
        )

    def test_within_threshold_passes(self, tmp_path):
        proc = self._run(tmp_path, self._record(6), self._record(7, 0.8))
        assert proc.returncode == 0, proc.stdout

    def test_large_regression_fails(self, tmp_path):
        proc = self._run(tmp_path, self._record(6), self._record(7, 0.5))
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout
        assert "FAIL" in proc.stderr

    def test_missing_kind_fails(self, tmp_path):
        current = self._record(7)
        del current["kinds"]["timing"]
        proc = self._run(tmp_path, self._record(6), current)
        assert proc.returncode == 1

    def test_missing_baseline_passes(self, tmp_path):
        proc = self._run(tmp_path, None, self._record(7))
        assert proc.returncode == 0
        assert "no baseline" in proc.stdout

    def test_custom_threshold(self, tmp_path):
        proc = self._run(tmp_path, self._record(6), self._record(7, 0.8),
                         "--threshold", "0.1")
        assert proc.returncode == 1

    def test_required_speedup_met(self, tmp_path):
        proc = self._run(tmp_path, self._record(7), self._record(8, 1.6),
                         "--require-speedup", "coverage:1.5")
        assert proc.returncode == 0, proc.stdout
        assert "required speedups met" in proc.stdout

    def test_required_speedup_unmet(self, tmp_path):
        proc = self._run(tmp_path, self._record(7), self._record(8, 1.2),
                         "--require-speedup", "coverage:1.5")
        assert proc.returncode == 1
        assert "UNMET" in proc.stdout
        assert "achieved only" in proc.stderr

    def test_required_speedup_needs_a_baseline(self, tmp_path):
        proc = self._run(tmp_path, None, self._record(8, 2.0),
                         "--require-speedup", "coverage:1.5")
        assert proc.returncode == 2

    def test_required_speedup_missing_kind_fails(self, tmp_path):
        proc = self._run(tmp_path, self._record(7), self._record(8, 2.0),
                         "--require-speedup", "analysis:1.5")
        assert proc.returncode == 1
        assert "cannot verify" in proc.stderr

    @pytest.mark.parametrize("bad", ["coverage", ":1.5", "coverage:zero",
                                     "coverage:-2"])
    def test_malformed_speedup_spec_rejected(self, tmp_path, bad):
        proc = self._run(tmp_path, self._record(7), self._record(8, 2.0),
                         "--require-speedup", bad)
        assert proc.returncode == 2

    def test_pr_number_from_bench_out(self):
        sys.path.insert(0, str(REPO / "benchmarks"))
        try:
            from faults_smoke import pr_number_from_bench_out
        finally:
            sys.path.pop(0)
        assert pr_number_from_bench_out("BENCH_7.json") == 7
        assert pr_number_from_bench_out(Path("x/BENCH_12.json")) == 12
        assert pr_number_from_bench_out("bench.json") is None
        assert pr_number_from_bench_out(None) is None
