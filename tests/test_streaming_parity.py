"""Streaming/materialized parity and the analysis lifecycle contract.

The engine's streaming path must be a pure memory optimization: every
experiment's results are bit-identical whether jobs walk a lazy
``TraceSource`` or a materialized ``Trace``, and the streaming path must
never materialize at all. The incremental consumers additionally enforce
their ``update()``/``finalize()`` lifecycle.
"""

import pytest

from repro.analysis import (
    CorrelationDistanceAnalysis,
    JointPredictabilityAnalysis,
    MissSequenceExtractor,
    RepetitionAnalysis,
    Sequitur,
    StreamLengthAnalysis,
)
from repro.common.config import SystemConfig
from repro.engine import Engine, JobGraph, execute_job
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import EXPERIMENTS
from repro.sim.timing import TimingModel
from repro.trace.container import TraceSource
from repro.workloads.registry import stream_workload

LENGTH = 6_000
SEED = 11


def small_config() -> ExperimentConfig:
    cfg = ExperimentConfig.small()
    cfg.trace_length = LENGTH
    cfg.seed = SEED
    cfg.workloads = ["db2"]
    return cfg


@pytest.fixture(scope="module")
def collected_by_mode():
    """Every experiment collected twice: streamed and materialized.

    One shared graph per mode, exactly like ``all --extended``, so the
    parity claim covers the deduplicated production execution path.
    """
    out = {}
    for materialize in (False, True):
        cfg = small_config()
        graph = JobGraph()
        plans = {
            name: module.declare(cfg, graph)
            for name, module in EXPERIMENTS.items()
        }
        results = Engine(materialize=materialize).run(graph)
        out[materialize] = {
            name: module.collect(cfg, plans[name], results)
            for name, module in EXPERIMENTS.items()
        }
    return out


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_bit_identical_across_modes(collected_by_mode, name):
    assert collected_by_mode[False][name] == collected_by_mode[True][name]


class TestStreamingNeverMaterializes:
    @pytest.mark.parametrize(
        "kind", ["coverage", "timing", "joint", "repetition", "correlation"]
    )
    def test_job_kind(self, kind, monkeypatch):
        def boom(self):
            raise AssertionError("streaming path called materialize()")

        monkeypatch.setattr(TraceSource, "materialize", boom)
        cfg = small_config()
        cfg.system = SystemConfig.tiny()
        job = {
            "coverage": lambda: cfg.coverage_job("db2", "stride"),
            "timing": lambda: cfg.timing_job("db2", "stride"),
            "joint": lambda: cfg.joint_job("db2"),
            "repetition": lambda: cfg.repetition_job("db2"),
            "correlation": lambda: cfg.correlation_job("db2"),
        }[kind]()
        execute_job(job, materialize=False)


class TestAnalysisLifecycle:
    SYSTEM = SystemConfig.tiny()

    def analyses(self):
        return [
            JointPredictabilityAnalysis(self.SYSTEM),
            RepetitionAnalysis(self.SYSTEM, max_elements=100),
            CorrelationDistanceAnalysis(self.SYSTEM),
            StreamLengthAnalysis(self.SYSTEM),
            MissSequenceExtractor(self.SYSTEM),
        ]

    def first_access(self):
        return next(iter(stream_workload("db2", 100, seed=SEED)))

    def test_update_after_finalize_rejected(self):
        access = self.first_access()
        for analysis in self.analyses():
            analysis.update(access)
            analysis.finalize()
            with pytest.raises(RuntimeError, match="after finalize"):
                analysis.update(access)

    def test_double_finalize_rejected(self):
        for analysis in self.analyses():
            analysis.finalize()
            with pytest.raises(RuntimeError, match="finalize"):
                analysis.finalize()

    def test_sequitur_lifecycle(self):
        s = Sequitur()
        s.update("a")
        s.update("b")
        grammar = s.finalize()
        assert grammar.expand() == ["a", "b"]
        with pytest.raises(RuntimeError, match="after finalize"):
            s.append("c")
        with pytest.raises(RuntimeError, match="finalize"):
            s.finalize()

    def test_timing_model_lifecycle(self):
        access = self.first_access()
        model = TimingModel(self.SYSTEM.timing)
        model.update(access, "l1")
        result = model.finalize()
        assert result.instructions == access.instr_gap
        with pytest.raises(RuntimeError, match="after finalize"):
            model.update(access, "l1")
        with pytest.raises(RuntimeError, match="finalize"):
            model.finalize()

    def test_consume_walks_and_finalizes(self):
        result = CorrelationDistanceAnalysis(self.SYSTEM).consume(
            stream_workload("db2", 500, seed=SEED)
        )
        assert result.total_pairs >= 0


class TestTimingModelBoundedState:
    def test_inflight_state_independent_of_length(self):
        from repro.sim.driver import SimulationDriver

        peaks = {}
        for length in (2_000, 16_000):
            model = TimingModel(self.system().timing, workload="db2")
            inner = model.update
            peak = 0

            def probe(access, klass, _inner=inner, _model=model):
                nonlocal peak
                _inner(access, klass)
                peak = max(peak, len(_model._completion))

            model.update = probe
            SimulationDriver(
                self.system(), None, service_consumer=model
            ).run(stream_workload("db2", length, seed=SEED))
            peaks[length] = peak
        # 8x the trace, same in-flight window (generous 2x slack)
        assert peaks[16_000] <= max(64, 2 * peaks[2_000])

    @staticmethod
    def system() -> SystemConfig:
        return SystemConfig.tiny()
