"""Tests for the multiprocessor write-invalidate substrate."""

import pytest

from repro.common.config import SystemConfig
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.prefetch.tms.tms import TMSPrefetcher
from repro.sim.multicore import MulticoreDriver
from repro.trace.container import Trace
from repro.workloads.registry import make_workload


def trace_of(blocks_and_writes, name="t"):
    trace = Trace(name)
    for block, is_write in blocks_and_writes:
        trace.append(pc=0x1, address=block * 64, is_write=is_write)
    return trace


@pytest.fixture
def system():
    return SystemConfig.tiny()


class TestInvalidation:
    def test_write_invalidates_other_core(self, system):
        # core 0 reads block 5 twice; core 1 writes it in between
        t0 = trace_of([(5, False), (6, False), (5, False)])
        t1 = trace_of([(7, False), (5, True), (8, False)])
        driver = MulticoreDriver(system, lambda: None)
        result = driver.run([t0, t1])
        assert result.invalidations >= 1
        # core 0's second read of block 5 must be an off-chip miss again
        assert result.per_core[0].uncovered == 3

    def test_no_sharing_no_invalidations(self, system):
        t0 = trace_of([(1, False), (2, True)])
        t1 = trace_of([(100, False), (200, True)])
        result = MulticoreDriver(system, lambda: None).run([t0, t1])
        assert result.invalidations == 0

    def test_svb_copies_invalidated(self, system):
        """A streamed block invalidated before use counts as erroneous."""
        # core 0: repetitive miss sequence so TMS streams block 3
        t0 = trace_of([(1, False), (2, False), (3, False)] * 2 +
                      [(1, False), (2, False)] + [(9, False)] * 4 +
                      [(3, False)])
        # core 1 writes block 3 right around when it is staged
        t1 = trace_of([(50, False)] * 9 + [(3, True)] + [(51, False)] * 3)
        result = MulticoreDriver(system, TMSPrefetcher).run([t0, t1])
        # either the SVB copy was killed (svb_invalidations) or the block
        # was consumed before the write; both runs must account cleanly
        assert result.invalidations >= 1

    def test_uneven_trace_lengths(self, system):
        t0 = trace_of([(1, False)] * 10)
        t1 = trace_of([(2, False)])
        result = MulticoreDriver(system, lambda: None).run([t0, t1])
        assert result.per_core[0].accesses == 10
        assert result.per_core[1].accesses == 1

    def test_empty_input_rejected(self, system):
        with pytest.raises(ValueError):
            MulticoreDriver(system, lambda: None).run([])


class TestMulticoreCoverage:
    def test_stems_covers_on_four_cores(self, system):
        """Four cores running the same OLTP structure (shared buffer pool,
        different transaction orders) — STeMS must still find coverage and
        the shared writes must produce invalidations."""
        traces = [
            make_workload("db2").generate(15000, seed=seed)
            for seed in (1, 2, 3, 4)
        ]
        result = MulticoreDriver(
            SystemConfig.scaled(), STeMSPrefetcher
        ).run(traces)
        assert result.invalidations > 0
        assert result.coverage > 0.1
        assert len(result.per_core) == 4

    def test_aggregate_properties(self, system):
        t0 = trace_of([(1, False), (2, False)])
        result = MulticoreDriver(system, lambda: None).run([t0])
        assert result.covered == 0
        assert result.uncovered == 2
        assert result.coverage == 0.0
        assert result.overpredictions == 0
