"""Unit and property tests for Sequitur and the repetition classifier."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.repetition import classify_repetition
from repro.analysis.sequitur import Sequitur


class TestKnownGrammars:
    def test_abcabc(self):
        g = Sequitur.build(list("abcabc"))
        assert g.expand() == list("abcabc")
        assert g.rule_count() == 1  # S -> R R, R -> a b c

    def test_no_repetition(self):
        g = Sequitur.build(list("abcdef"))
        assert g.rule_count() == 0
        assert g.expand() == list("abcdef")

    def test_nested_repetition(self):
        seq = list("abcdbcabcdbc")
        g = Sequitur.build(seq)
        assert g.expand() == seq
        assert g.rule_count() >= 2  # bc reused inside abcdbc

    def test_triples(self):
        for s in ("aaa", "aaaa", "aaaaa", "aaaaaaaa", "abbbabcbb"):
            g = Sequitur.build(list(s))
            assert g.expand() == list(s), s

    def test_single_symbol(self):
        g = Sequitur.build(["x"])
        assert g.expand() == ["x"]

    def test_empty(self):
        g = Sequitur.build([])
        assert g.expand() == []

    def test_integers_as_terminals(self):
        seq = [10, 20, 30, 10, 20, 30]
        g = Sequitur.build(seq)
        assert g.expand() == seq


@settings(deadline=None, max_examples=150)
@given(
    seq=st.lists(st.integers(min_value=0, max_value=5), max_size=300),
)
def test_expansion_recovers_input(seq):
    g = Sequitur.build(seq)
    assert g.expand() == seq


@settings(deadline=None, max_examples=150)
@given(
    seq=st.lists(st.integers(min_value=0, max_value=3), max_size=250),
)
def test_rule_utility_invariant(seq):
    g = Sequitur.build(seq)
    assert g.rule_utilities_ok()


@settings(deadline=None, max_examples=60)
@given(
    unit=st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=10),
    repeats=st.integers(min_value=2, max_value=12),
)
def test_repeated_sequences_compress(unit, repeats):
    """A sequence repeated many times must form at least one rule."""
    g = Sequitur.build(unit * repeats)
    assert g.rule_count() >= 1


class TestRepetitionClassifier:
    def test_pure_repetition_has_high_opportunity(self):
        b = classify_repetition([1, 2, 3, 4] * 20)
        assert b.opportunity > 0.6
        assert b.non_repetitive == 0.0

    def test_random_unique_sequence_non_repetitive(self):
        b = classify_repetition(list(range(100)))
        assert b.non_repetitive == 1.0

    def test_categories_sum_to_one(self):
        rng = random.Random(3)
        seq = [rng.randrange(8) for _ in range(500)]
        b = classify_repetition(seq)
        assert abs(sum(b.as_tuple()) - 1.0) < 1e-9

    def test_empty_sequence(self):
        b = classify_repetition([])
        assert b.total == 0

    def test_first_occurrence_counted_as_new(self):
        b = classify_repetition([1, 2, 3, 1, 2, 3])
        assert b.new > 0
        assert b.head > 0

    def test_more_repeats_raise_opportunity(self):
        few = classify_repetition([1, 2, 3] * 3)
        many = classify_repetition([1, 2, 3] * 30)
        assert many.opportunity > few.opportunity
