"""Integration tests: every experiment harness runs end-to-end on a small
preset and exhibits the paper's qualitative shape."""

import pytest

from repro.experiments import fig6, fig7, fig8, fig9, fig10, hybrid, table1
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_parser, make_config, run_one


@pytest.fixture(scope="module")
def config():
    cfg = ExperimentConfig.small()
    # em3d's iteration is ~44k accesses; temporal predictors need to see
    # at least two full iterations before they can replay one
    cfg.trace_length = 100_000
    cfg.workloads = ["db2", "qry2", "em3d"]
    return cfg


class TestTable1:
    def test_renders(self, config):
        text = table1.format_table(table1.run(config))
        assert "L1d cache" in text
        assert "db2" in text


class TestFig6(object):
    def test_shapes(self, config):
        results = fig6.run(config)
        # DSS: spatial opportunity dominates, temporal negligible
        assert results["qry2"].sms_only > results["qry2"].tms_only
        # em3d: temporal-only share significant
        assert results["em3d"].tms_only > 0.1
        # everything sums to 1
        for r in results.values():
            total = r.both + r.tms_only + r.sms_only + r.neither
            assert total == pytest.approx(1.0)
        assert "Figure 6" in fig6.format_table(results)


class TestFig7:
    def test_scientific_more_repetitive_than_dss(self, config):
        results = fig7.run(config)
        em3d_all, em3d_trig = results["em3d"]
        qry2_all, _ = results["qry2"]
        assert em3d_all.opportunity > qry2_all.opportunity
        # every breakdown is a distribution
        for all_misses, triggers in results.values():
            assert sum(all_misses.as_tuple()) == pytest.approx(1.0)
            assert sum(triggers.as_tuple()) == pytest.approx(1.0)
        assert "Figure 7" in fig7.format_table(results)


class TestFig8:
    def test_near_perfect_intra_generation_repetition(self, config):
        results = fig8.run(config)
        for name, r in results.items():
            if r.matched_pairs:
                assert r.cumulative_within(4) > 0.8, name
        assert "Figure 8" in fig8.format_table(results)


class TestFig9:
    def test_paper_shape(self, config):
        results = fig9.run(config)
        db2 = {r.predictor: r for r in results["db2"]}
        qry2 = {r.predictor: r for r in results["qry2"]}
        em3d = {r.predictor: r for r in results["em3d"]}
        # OLTP: STeMS at least matches the best underlying predictor
        best = max(db2["tms"].covered, db2["sms"].covered)
        assert db2["stems"].covered >= best - 0.05
        # DSS: TMS ineffective, STeMS ~ SMS
        assert qry2["tms"].covered < 0.2
        assert qry2["stems"].covered > 0.8 * qry2["sms"].covered
        # scientific: temporal dominates spatial on em3d
        assert em3d["tms"].covered > em3d["sms"].covered
        assert "Figure 9" in fig9.format_table(results)


class TestFig10:
    def test_paper_shape(self, config):
        results = fig10.run(config)
        db2 = {r.predictor: r for r in results["db2"]}
        # SMS yields little OLTP speedup despite coverage (§5.6)
        assert db2["stems"].improvement > db2["sms"].improvement
        for rows in results.values():
            for r in rows:
                assert r.speedup > 0
        assert "Figure 10" in fig10.format_table(results)


class TestHybrid:
    def test_hybrid_overpredicts_more_than_stems(self, config):
        rows = hybrid.run(config)
        assert rows, "db2 is in the workload list"
        for r in rows:
            assert r.hybrid_overpredictions >= r.stems_overpredictions * 0.8
        assert "hybrid" in hybrid.format_table(rows)


class TestRunnerCLI:
    def test_parser_accepts_experiments(self):
        args = build_parser().parse_args(["fig6", "--small", "--workloads", "db2"])
        config = make_config(args)
        assert config.workloads == ["db2"]
        assert config.trace_length == ExperimentConfig.small().trace_length

    def test_run_one_table1(self):
        args = build_parser().parse_args(["table1", "--small"])
        out = run_one("table1", make_config(args))
        assert "Table 1" in out

    def test_length_override(self):
        args = build_parser().parse_args(["fig6", "--length", "1234"])
        assert make_config(args).trace_length == 1234
