"""Tests for the shared stream-queue machinery."""

from repro.prefetch.streamqueue import StreamQueue, StreamQueueSet


class TestStreamQueue:
    def test_next_blocks_drains_pending(self):
        q = StreamQueue(0, [1, 2, 3])
        assert q.next_blocks(2) == [1, 2]
        assert q.next_blocks(2) == [3]
        assert q.next_blocks(1) == []
        assert q.inflight == 3

    def test_refill_called_when_empty(self):
        batches = [[4, 5], []]
        q = StreamQueue(0, [1], refill=lambda queue: batches.pop(0))
        assert q.next_blocks(3) == [1, 4, 5]
        assert q.next_blocks(1) == []
        assert q.exhausted

    def test_pending_position_window(self):
        q = StreamQueue(0, [10, 20, 30, 40])
        assert q.pending_position(20, window=4) == 1
        assert q.pending_position(40, window=2) is None
        assert q.pending_position(99, window=4) is None

    def test_advance_past(self):
        q = StreamQueue(0, [10, 20, 30, 40])
        assert q.advance_past(20, window=4) == 2
        assert list(q.pending) == [30, 40]
        assert q.advance_past(99, window=4) == 0


class TestStreamQueueSet:
    def test_allocate_initial_fetch(self):
        qs = StreamQueueSet(2, lookahead=4, initial_fetch=2)
        queue, initial = qs.allocate([1, 2, 3])
        assert initial == [1, 2]
        assert qs.get(queue.stream_id) is queue

    def test_lru_victim_on_overflow(self):
        qs = StreamQueueSet(2, lookahead=4)
        q1, _ = qs.allocate([1])
        q2, _ = qs.allocate([2])
        q3, _ = qs.allocate([3])
        assert qs.get(q1.stream_id) is None
        assert qs.killed == 1

    def test_consumption_touches_activity(self):
        qs = StreamQueueSet(2, lookahead=4)
        q1, _ = qs.allocate([1, 10, 11, 12])
        q2, _ = qs.allocate([2])
        qs.on_consumed(q1.stream_id)  # q1 becomes MRU
        q3, _ = qs.allocate([3])      # victim should be q2
        assert qs.get(q1.stream_id) is not None
        assert qs.get(q2.stream_id) is None

    def test_on_consumed_respects_lookahead(self):
        qs = StreamQueueSet(1, lookahead=3, initial_fetch=1)
        queue, initial = qs.allocate(list(range(100)))
        assert len(initial) == 1
        fetched = qs.on_consumed(queue.stream_id)
        # 1 in flight was consumed: extend back up to the lookahead
        assert len(fetched) == 3
        assert queue.inflight == 3

    def test_on_consumed_unknown_stream(self):
        qs = StreamQueueSet(1, lookahead=3)
        assert qs.on_consumed(12345) == []

    def test_retire_if_exhausted(self):
        qs = StreamQueueSet(2, lookahead=4, initial_fetch=4)
        queue, initial = qs.allocate([1, 2])
        assert not qs.retire_if_exhausted(queue.stream_id)  # blocks in flight
        queue.inflight = 0
        queue.exhausted = True
        assert qs.retire_if_exhausted(queue.stream_id)
        assert qs.get(queue.stream_id) is None

    def test_find_pending_skips_saturated_streams(self):
        qs = StreamQueueSet(2, lookahead=2, initial_fetch=1)
        queue, _ = qs.allocate([1, 2, 3])
        queue.inflight = 2  # saturated: at lookahead
        assert qs.find_pending(2) is None
        queue.inflight = 1
        assert qs.find_pending(2) is queue

    def test_resync_skips_and_extends(self):
        qs = StreamQueueSet(2, lookahead=3, initial_fetch=1)
        queue, _ = qs.allocate([1, 2, 3, 4, 5, 6])
        queue.inflight = 0
        fetched = qs.resync(queue.stream_id, 2)
        # skipped 1 and 2; extended by lookahead: 3, 4, 5
        assert fetched == [3, 4, 5]
