"""Tests for TMS: the circular miss buffer and the streaming prefetcher."""

from repro.common.config import TMSConfig
from repro.memsys.hierarchy import ServiceLevel
from repro.prefetch.base import AccessEvent
from repro.prefetch.tms.cmob import CircularMissBuffer
from repro.prefetch.tms.tms import TMSPrefetcher
from repro.trace.events import MemoryAccess


class TestCMOB:
    def test_append_and_find(self):
        cmob = CircularMissBuffer(8)
        cmob.append(100)
        cmob.append(200)
        cmob.append(100)
        assert cmob.find(100) == 2  # most recent occurrence
        assert cmob.find(200) == 1
        assert cmob.find(999) is None

    def test_read_from(self):
        cmob = CircularMissBuffer(8)
        for block in (1, 2, 3, 4):
            cmob.append(block)
        assert [e.block for e in cmob.read_from(1, 2)] == [2, 3]
        assert [e.block for e in cmob.read_from(3, 10)] == [4]
        assert cmob.read_from(4, 4) == []

    def test_wraparound_invalidates_old_entries(self):
        cmob = CircularMissBuffer(4)
        for block in range(10):
            cmob.append(block)
        assert cmob.find(3) is None  # overwritten
        assert cmob.find(9) == 9
        assert cmob.get(3) is None

    def test_index_cleared_on_overwrite(self):
        cmob = CircularMissBuffer(2)
        cmob.append(10)
        cmob.append(11)
        cmob.append(12)  # overwrites 10's slot
        assert cmob.find(10) is None

    def test_payload_preserved(self):
        cmob = CircularMissBuffer(4)
        pos = cmob.append(7, pc=0x42, delta=3)
        entry = cmob.get(pos)
        assert (entry.block, entry.pc, entry.delta) == (7, 0x42, 3)

    def test_len(self):
        cmob = CircularMissBuffer(4)
        assert len(cmob) == 0
        for block in range(6):
            cmob.append(block)
        assert len(cmob) == 4


def miss_event(i, block, covered=False, stream_id=-1):
    access = MemoryAccess(index=i, pc=0x1, address=block * 64)
    level = ServiceLevel.SVB if covered else ServiceLevel.MEMORY
    return AccessEvent(access=access, block=block, level=level,
                       covered=covered, stream_id=stream_id)


class TestTMSPrefetcher:
    def test_no_stream_on_first_occurrence(self):
        pf = TMSPrefetcher()
        for i, block in enumerate([1, 2, 3]):
            pf.on_access(miss_event(i, block))
        assert pf.pop_requests() == []

    def test_stream_starts_on_repeat(self):
        pf = TMSPrefetcher(TMSConfig(initial_fetch=2))
        for i, block in enumerate([1, 2, 3, 4]):
            pf.on_access(miss_event(i, block))
        pf.on_access(miss_event(10, 1))  # 1 recurs: stream [2, 3, ...]
        requests = pf.pop_requests()
        assert [r.block for r in requests] == [2, 3]
        assert requests[0].stream_id == requests[1].stream_id

    def test_consumption_extends_stream(self):
        pf = TMSPrefetcher(TMSConfig(initial_fetch=1, lookahead=4))
        for i, block in enumerate([1, 2, 3, 4, 5, 6]):
            pf.on_access(miss_event(i, block))
        pf.on_access(miss_event(10, 1))
        (first,) = pf.pop_requests()
        assert first.block == 2
        pf.on_access(miss_event(11, 2, covered=True, stream_id=first.stream_id))
        extended = [r.block for r in pf.pop_requests()]
        assert extended == [3, 4, 5, 6]

    def test_writes_ignored(self):
        pf = TMSPrefetcher()
        access = MemoryAccess(index=0, pc=0x1, address=64, is_write=True)
        pf.on_access(AccessEvent(access=access, block=1,
                                 level=ServiceLevel.MEMORY))
        assert pf.cmob.appends == 0

    def test_covered_events_still_train(self):
        pf = TMSPrefetcher()
        pf.on_access(miss_event(0, 5, covered=True, stream_id=0))
        assert pf.cmob.appends == 1

    def test_l2_hits_do_not_train(self):
        pf = TMSPrefetcher()
        access = MemoryAccess(index=0, pc=0x1, address=64)
        pf.on_access(AccessEvent(access=access, block=1, level=ServiceLevel.L2))
        assert pf.cmob.appends == 0

    def test_resync_instead_of_new_stream(self):
        pf = TMSPrefetcher(TMSConfig(initial_fetch=1, lookahead=4))
        for i, block in enumerate([1, 2, 3, 4, 5, 6]):
            pf.on_access(miss_event(i, block))
        pf.on_access(miss_event(10, 1))
        (first,) = pf.pop_requests()  # fetched block 2
        allocated_before = pf.queues.allocated
        # demand jumps to 3, which is pending (not yet fetched): re-sync
        pf.on_access(miss_event(11, 3))
        assert pf.queues.allocated == allocated_before
        assert pf.stats.get("stream_resyncs") == 1
        blocks = [r.block for r in pf.pop_requests()]
        assert blocks and blocks[0] == 4  # skipped past 3

    def test_svb_discard_releases_inflight(self):
        pf = TMSPrefetcher(TMSConfig(initial_fetch=2, lookahead=2))
        for i, block in enumerate([1, 2, 3, 4, 5]):
            pf.on_access(miss_event(i, block))
        pf.on_access(miss_event(10, 1))
        requests = pf.pop_requests()
        stream_id = requests[0].stream_id
        queue = pf.queues.get(stream_id)
        inflight_before = queue.inflight
        pf.on_svb_discard(requests[0].block, stream_id)
        assert queue.inflight == inflight_before - 1
