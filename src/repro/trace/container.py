"""Trace containers: materialized and streaming access sequences.

:class:`Trace` is an ordered in-memory collection of MemoryAccess records
plus metadata (workload name, category, generation parameters) and
persistence. :class:`TraceSource` is its lazy counterpart — the same
metadata plus a factory that yields accesses on demand, so the whole
pipeline (coverage driver, incremental timing model, streaming analyses)
can walk arbitrarily long traces in O(1) memory. ``materialize()`` —
the identity on a :class:`Trace` — drains a source into memory; the
engine only does that behind its explicit compatibility flag, and the
few consumers that genuinely need random access or ``len()``
(``simulate_timing`` over a recorded service list, trace persistence)
take a :class:`Trace` directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.trace.events import MemoryAccess


@dataclass
class Trace:
    """An ordered memory-reference trace with provenance metadata."""

    name: str
    category: str = "synthetic"
    accesses: List[MemoryAccess] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    def __getitem__(self, idx: int) -> MemoryAccess:
        return self.accesses[idx]

    def append(
        self,
        pc: int,
        address: int,
        is_write: bool = False,
        depends_on: Optional[int] = None,
        instr_gap: int = 4,
    ) -> MemoryAccess:
        """Append an access, assigning the next index automatically."""
        access = MemoryAccess(
            index=len(self.accesses),
            pc=pc,
            address=address,
            is_write=is_write,
            depends_on=depends_on,
            instr_gap=instr_gap,
        )
        self.accesses.append(access)
        return access

    def extend(self, accesses: Sequence[MemoryAccess]) -> None:
        """Append pre-built accesses, validating the index sequence."""
        for access in accesses:
            if access.index != len(self.accesses):
                raise ValueError(
                    f"access index {access.index} does not continue the trace "
                    f"(expected {len(self.accesses)})"
                )
            self.accesses.append(access)

    def reads(self) -> Iterator[MemoryAccess]:
        return (a for a in self.accesses if not a.is_write)

    def iter_chunks(self) -> Iterator["AccessChunk"]:
        """The trace as aligned :class:`~repro.kernels.AccessChunk` runs.

        The chunk-granular walk for the vector kernel: same accesses,
        same order, batched by slicing (no per-access iteration).
        """
        from repro.kernels.prepass import chunk_sequence

        return chunk_sequence(self.accesses)

    def materialize(self) -> "Trace":
        """A :class:`Trace` is already materialized; returns itself."""
        return self

    # -- persistence ------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON-lines (one access per line after a header)."""
        path = Path(path)
        with path.open("w") as handle:
            header = {
                "name": self.name,
                "category": self.category,
                "metadata": self.metadata,
            }
            handle.write(json.dumps(header) + "\n")
            for a in self.accesses:
                record = [a.pc, a.address, int(a.is_write), a.depends_on, a.instr_gap]
                handle.write(json.dumps(record) + "\n")

    @staticmethod
    def load(path: Union[str, Path]) -> "Trace":
        path = Path(path)
        with path.open() as handle:
            header = json.loads(handle.readline())
            trace = Trace(
                name=header["name"],
                category=header.get("category", "synthetic"),
                metadata=header.get("metadata", {}),
            )
            for line in handle:
                pc, address, is_write, depends_on, instr_gap = json.loads(line)
                trace.append(
                    pc=pc,
                    address=address,
                    is_write=bool(is_write),
                    depends_on=depends_on,
                    instr_gap=instr_gap,
                )
        return trace


class TraceSource:
    """A lazy trace: metadata plus a factory yielding accesses on demand.

    Each ``iter()`` invokes ``factory`` anew, so a source built from a
    deterministic generator (seeded workload, file reader) can be walked
    repeatedly and always replays the same access sequence. The factory
    must yield accesses with consecutive indices starting at 0.

    Args:
        name: workload name carried into every result produced from this
            source.
        factory: zero-argument callable returning a fresh access
            iterable; invoked once per ``iter()`` pass.
        category: workload category label (``web``/``oltp``/...).
        metadata: provenance attached to materialized copies.
        length_hint: the *requested* access count, when known. A hint
            only — generators may overshoot by up to one burst — so
            consumers must not treat it as ``len()``.
        chunk_factory: optional zero-argument callable returning a fresh
            iterable of :class:`~repro.kernels.AccessChunk` runs over
            the *same* access sequence. Sources with a native chunked
            form (trace-store replay, which decodes whole stored chunks
            columnar) supply one; otherwise :meth:`iter_chunks` batches
            the per-record factory generically.
    """

    def __init__(
        self,
        name: str,
        factory: Callable[[], Iterable[MemoryAccess]],
        category: str = "synthetic",
        metadata: Optional[Dict[str, object]] = None,
        length_hint: Optional[int] = None,
        chunk_factory: Optional[Callable[[], Iterable]] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.metadata: Dict[str, object] = dict(metadata or {})
        self.length_hint = length_hint
        self._factory = factory
        self._chunk_factory = chunk_factory

    def __iter__(self) -> Iterator[MemoryAccess]:
        """A fresh single-pass iterator over the access sequence."""
        return iter(self._factory())

    def iter_chunks(self) -> Iterator["AccessChunk"]:
        """A fresh single-pass chunk-granular walk of the sequence.

        Uses the native chunk factory when the source has one (stored
        traces decode columnar, whole chunks at a time); otherwise the
        per-record factory is drained once through a generic batching
        wrapper — identical accesses, identical order, identical side
        effects of iteration.
        """
        if self._chunk_factory is not None:
            return iter(self._chunk_factory())
        from repro.kernels.prepass import chunk_accesses

        return chunk_accesses(self._factory())

    def materialize(self) -> Trace:
        """Drain the source into an in-memory :class:`Trace`.

        This is the O(trace)-memory escape hatch: the engine streams by
        default and only materializes behind its compatibility flag.

        Returns:
            A :class:`Trace` holding every access the factory yields.

        Raises:
            ValueError: if the factory yields non-consecutive indices.
        """
        trace = Trace(
            name=self.name,
            category=self.category,
            metadata=dict(self.metadata),
        )
        accesses = trace.accesses
        expected = 0
        for access in self._factory():
            if access.index != expected:
                raise ValueError(
                    f"access index {access.index} does not continue the "
                    f"stream (expected {expected})"
                )
            accesses.append(access)
            expected += 1
        return trace


#: anything the simulation driver can walk: materialized or streaming
TraceLike = Union[Trace, TraceSource]
