"""Trace infrastructure: access records, trace containers and statistics."""

from repro.trace.events import MemoryAccess
from repro.trace.container import Trace
from repro.trace.tracestats import TraceStats, summarize_trace

__all__ = ["MemoryAccess", "Trace", "TraceStats", "summarize_trace"]
