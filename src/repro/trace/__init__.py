"""Trace infrastructure: access records, trace containers and statistics.

The on-disk counterpart — the record-once/replay-many binary trace
store that turns any :class:`TraceSource` walk into a reusable artifact
— lives in :mod:`repro.tracestore`.
"""

from repro.trace.events import MemoryAccess
from repro.trace.container import Trace, TraceSource
from repro.trace.tracestats import TraceStats, summarize_trace

__all__ = [
    "MemoryAccess",
    "Trace",
    "TraceSource",
    "TraceStats",
    "summarize_trace",
]
