"""Descriptive statistics over traces (footprint, density, dependences).

Used by tests to validate that each synthetic workload has the structural
properties the paper attributes to its real counterpart, and by examples
to characterize generated traces.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict

from repro.common.addresses import AddressMap, DEFAULT_ADDRESS_MAP
from repro.trace.container import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    accesses: int
    reads: int
    writes: int
    unique_blocks: int
    unique_regions: int
    footprint_bytes: int
    dependent_fraction: float
    mean_region_density: float
    unique_pcs: int

    def format(self) -> str:
        lines = [
            f"accesses:            {self.accesses}",
            f"reads / writes:      {self.reads} / {self.writes}",
            f"unique blocks:       {self.unique_blocks}",
            f"unique regions:      {self.unique_regions}",
            f"footprint:           {self.footprint_bytes / (1024 * 1024):.2f} MiB",
            f"dependent fraction:  {self.dependent_fraction:.3f}",
            f"mean region density: {self.mean_region_density:.2f} blocks/region",
            f"unique PCs:          {self.unique_pcs}",
        ]
        return "\n".join(lines)


def summarize_trace(
    trace: Trace, address_map: AddressMap = DEFAULT_ADDRESS_MAP
) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    blocks = set()
    region_blocks: Dict[int, set] = defaultdict(set)
    pcs = set()
    reads = writes = dependent = 0
    for access in trace:
        block = address_map.block_of(access.address)
        blocks.add(block)
        region_blocks[address_map.region_of_block(block)].add(block)
        pcs.add(access.pc)
        if access.is_write:
            writes += 1
        else:
            reads += 1
        if access.depends_on is not None:
            dependent += 1
    n = len(trace)
    densities = [len(v) for v in region_blocks.values()]
    return TraceStats(
        accesses=n,
        reads=reads,
        writes=writes,
        unique_blocks=len(blocks),
        unique_regions=len(region_blocks),
        footprint_bytes=len(blocks) * address_map.block_bytes,
        dependent_fraction=(dependent / n) if n else 0.0,
        mean_region_density=(sum(densities) / len(densities)) if densities else 0.0,
        unique_pcs=len(pcs),
    )
