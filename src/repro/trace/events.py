"""The memory-access record that flows through the whole pipeline.

Workload generators emit :class:`MemoryAccess` objects; the coverage
driver classifies each one; the timing model consumes the classification.
``depends_on`` encodes pointer-chase dependences — the address of this
access was loaded by an earlier access — which is what lets the timing
model reproduce the paper's key performance asymmetry (TMS parallelizes
dependent chains; spatial bursts already overlap in the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """One memory reference in a trace.

    Attributes:
        index: position in the trace (0-based, unique).
        pc: program counter of the instruction issuing the access.
        address: byte address referenced.
        is_write: writes train predictors but are never prefetch targets
            here (the paper evaluates off-chip *read* misses).
        depends_on: index of the access that produced this address
            (pointer chase), or None for address-independent accesses.
        instr_gap: instructions executed since the previous memory access
            (drives the timing model's issue-rate term).
    """

    index: int
    pc: int
    address: int
    is_write: bool = False
    depends_on: Optional[int] = None
    instr_gap: int = 4

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.depends_on is not None and self.depends_on >= self.index:
            raise ValueError(
                f"depends_on ({self.depends_on}) must reference an earlier access "
                f"than {self.index}"
            )
