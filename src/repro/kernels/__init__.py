"""Kernel selection for the trace-walk hot path.

Every job funnels through one streaming trace walk, so the per-record
Python overhead of that walk bounds throughput for the whole system.
This package provides the **vector kernel**: a chunk-granular fast path
that decodes trace-store records in aligned blocks (``numpy.frombuffer``
when numpy is installed, ``struct.iter_unpack`` otherwise), precomputes
the per-access classification inputs (block ids, region ids, read/write
masks, stride deltas) for a whole chunk at once, and pumps consumers
with C-driven ``map`` loops instead of one Python iteration per record.

The record-at-a-time pure-python walk is retained as the **reference
oracle** behind ``--kernel=python`` / ``REPRO_KERNEL=python``: both
kernels execute the identical simulation code per access, so their
results are bit-identical — asserted across every experiment, both
engines, fan-out, replay, and fault-injected runs by the test suite and
``benchmarks/kernel_smoke.py``.

Selection order (first match wins):

1. an explicit ``kernel=`` argument (``Engine(kernel=...)``, CLI
   ``--kernel``);
2. the ``REPRO_KERNEL`` environment variable;
3. the default: ``vector`` when numpy is importable, else ``python``.

Requesting ``vector`` without numpy is not an error: the walk falls back
to the pure-python chunking path (same chunk-granular pumping, scalar
decode) and a one-line note is printed to stderr once per process so the
silent degradation is visible.
"""

from __future__ import annotations

import os
import sys
from typing import Optional

KERNEL_PYTHON = "python"
KERNEL_VECTOR = "vector"
KERNELS = (KERNEL_PYTHON, KERNEL_VECTOR)

#: environment override for the default kernel choice
ENV_VAR = "REPRO_KERNEL"

#: records per decoded chunk — matches the codec's write/read syscall
#: granularity so one stored chunk decodes into one kernel chunk
CHUNK_RECORDS = 4096

_numpy = None
_numpy_checked = False
_fallback_noted = False


def numpy_or_none():
    """The ``numpy`` module when importable, else None (cached).

    The import guard lives here so every vector-kernel site degrades the
    same way; nothing in the package hard-requires numpy (it is the
    optional ``[vector]`` extra).
    """
    global _numpy, _numpy_checked
    if not _numpy_checked:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy = numpy
        _numpy_checked = True
    return _numpy


def vector_available() -> bool:
    """True when the numpy-backed decode/prepass can run."""
    return numpy_or_none() is not None


def note_vector_fallback() -> None:
    """One-line stderr note, once per process, that the vector kernel is
    running without numpy (scalar decode, chunked pumping only)."""
    global _fallback_noted
    if _fallback_noted:
        return
    _fallback_noted = True
    print(
        "[repro.kernels: numpy not installed — vector kernel falling back "
        "to the python decode path (install the '[vector]' extra)]",
        file=sys.stderr,
    )


def default_kernel() -> str:
    """The kernel used when neither argument nor environment chooses."""
    return KERNEL_VECTOR if vector_available() else KERNEL_PYTHON


def resolve_kernel(kernel: Optional[str] = None) -> str:
    """Resolve an optional kernel request to a concrete kernel name.

    Args:
        kernel: explicit request (``"python"``/``"vector"``), or None to
            defer to ``REPRO_KERNEL`` and then the default.

    Returns:
        One of :data:`KERNELS`. A ``vector`` request without numpy
        resolves to ``vector`` — the chunk plumbing still runs, with
        scalar decode — after emitting the fallback note.

    Raises:
        ValueError: on an unknown kernel name (argument or environment).
    """
    if kernel is None:
        kernel = os.environ.get(ENV_VAR, "").strip() or None
    if kernel is None:
        return default_kernel()
    kernel = kernel.lower()
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; choose from {'/'.join(KERNELS)}"
        )
    if kernel == KERNEL_VECTOR and not vector_available():
        note_vector_fallback()
    return kernel


from repro.kernels.prepass import (  # noqa: E402  (re-export)
    AccessChunk,
    chunk_accesses,
    iter_trace_chunks,
)

__all__ = [
    "AccessChunk",
    "CHUNK_RECORDS",
    "ENV_VAR",
    "KERNELS",
    "KERNEL_PYTHON",
    "KERNEL_VECTOR",
    "chunk_accesses",
    "default_kernel",
    "iter_trace_chunks",
    "note_vector_fallback",
    "numpy_or_none",
    "resolve_kernel",
    "vector_available",
]
