"""Record/chunk decode: raw trace bytes → :class:`AccessChunk`.

The record wire format (fixed 29-byte records, see :data:`RECORD`) is
shared by every plane that moves trace bytes: the on-disk codec
(:mod:`repro.tracestore.codec`) frames these records into files, and
the broadcast plane (:mod:`repro.tracestore.broadcast`) ships the same
chunk payloads through shared memory. Both feed their bytes through
:func:`decode_chunk` here, so a broadcast consumer materializes
:class:`AccessChunk` runs straight from the shared buffer — no file
open, no index parse, no second decode path to keep bit-identical.

The vector path decodes a whole chunk columnar with
``numpy.frombuffer``; without numpy the scalar ``struct.iter_unpack``
path produces the identical objects.
"""

from __future__ import annotations

import struct
from time import perf_counter
from typing import List, Tuple

from repro.kernels import numpy_or_none
from repro.kernels.prepass import AccessChunk
from repro.telemetry import PHASE_DECODE, phases_active
from repro.trace.events import MemoryAccess

#: one access: pc u64, address u64, depends_on i64 (-1 = None),
#: instr_gap u32, is_write u8
RECORD = struct.Struct("<QQqIB")
RECORD_SIZE = RECORD.size


def encode_access(access: MemoryAccess) -> bytes:
    """One access as a fixed-size record (``index`` stays implicit)."""
    depends = -1 if access.depends_on is None else access.depends_on
    return RECORD.pack(
        access.pc, access.address, depends, access.instr_gap,
        1 if access.is_write else 0,
    )


def decode_record(index: int, record: Tuple[int, int, int, int, int]) -> MemoryAccess:
    """Rebuild the access at trace position ``index`` from its record."""
    pc, address, depends, instr_gap, is_write = record
    return MemoryAccess(
        index=index,
        pc=pc,
        address=address,
        is_write=bool(is_write),
        depends_on=None if depends < 0 else depends,
        instr_gap=instr_gap,
    )


_RECORD_DTYPE = None


def record_dtype(numpy):
    """The numpy structured dtype mirroring :data:`RECORD` (cached)."""
    global _RECORD_DTYPE
    if _RECORD_DTYPE is None:
        _RECORD_DTYPE = numpy.dtype([
            ("pc", "<u8"),
            ("address", "<u8"),
            ("depends", "<i8"),
            ("instr_gap", "<u4"),
            ("is_write", "u1"),
        ])
        assert _RECORD_DTYPE.itemsize == RECORD_SIZE
    return _RECORD_DTYPE


def decode_chunk(first_index: int, chunk: bytes) -> AccessChunk:
    """Decode one aligned chunk of raw record bytes.

    The single chunk-decode used by file replay and shared-memory
    broadcast alike. The vector path decodes the whole chunk columnar
    with ``numpy.frombuffer`` and builds the access objects with one
    C-driven ``map``; without numpy the scalar ``struct.iter_unpack``
    path produces the identical objects.

    The ``chunk_decode`` phase timer wraps this function (one timer
    call per chunk, nothing per record; ``REPRO_TELEMETRY=off``
    reduces it to a single ``None`` check).
    """
    timer = phases_active()
    if timer is None:
        return _decode_chunk(first_index, chunk)
    start = perf_counter()
    result = _decode_chunk(first_index, chunk)
    timer.add(PHASE_DECODE, perf_counter() - start)
    return result


def _decode_chunk(first_index: int, chunk: bytes) -> AccessChunk:
    numpy = numpy_or_none()
    n = len(chunk) // RECORD_SIZE
    if numpy is not None:
        columns = numpy.frombuffer(chunk, dtype=record_dtype(numpy))
        addresses = columns["address"]
        depends = columns["depends"]
        if bool((depends < 0).all()):
            depends_list: List = [None] * n
        else:
            depends_list = depends.tolist()
            for position in numpy.flatnonzero(depends < 0).tolist():
                depends_list[position] = None
        accesses = list(map(
            MemoryAccess,
            range(first_index, first_index + n),
            columns["pc"].tolist(),
            addresses.tolist(),
            (columns["is_write"] != 0).tolist(),
            depends_list,
            columns["instr_gap"].tolist(),
        ))
        return AccessChunk(accesses, start_index=first_index,
                           addresses=addresses)
    accesses = [
        MemoryAccess(
            index=index,
            pc=pc,
            address=address,
            is_write=bool(is_write),
            depends_on=None if depends < 0 else depends,
            instr_gap=instr_gap,
        )
        for index, (pc, address, depends, instr_gap, is_write)
        in enumerate(RECORD.iter_unpack(chunk), start=first_index)
    ]
    return AccessChunk(accesses, start_index=first_index)
