"""Vectorized pre-pass: per-chunk classification inputs, computed once.

The record-at-a-time walk re-derives the same fields for every access —
block id (``address >> block_bits``), region id, read/write flag, stride
delta — inside per-access Python code. :class:`AccessChunk` computes
each of those fields for a whole chunk at once (numpy shifts over the
decoded address column when available, one C-speed comprehension
otherwise) and caches the result, so the driver's ``step`` and the
streaming analyses receive precomputed fields instead of re-deriving
them per access.

A chunk is *derived data only*: the :class:`~repro.trace.events.MemoryAccess`
objects inside it are exactly the ones the record-at-a-time oracle walk
would have produced, in the same order, so pumping chunks through the
same per-access simulation code is bit-identical to the oracle by
construction.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.telemetry import PHASE_PREPASS, phases_active
from repro.trace.events import MemoryAccess

#: records per chunk used by the generic batching wrapper (mirrors the
#: codec's on-disk chunk granularity, see ``repro.kernels.CHUNK_RECORDS``)
DEFAULT_CHUNK_RECORDS = 4096


class AccessChunk:
    """One aligned run of consecutive trace records plus derived columns.

    Args:
        accesses: the decoded records, in trace order.
        start_index: trace index of ``accesses[0]``.
        addresses: optional numpy ``uint64`` column of the accesses'
            byte addresses (the codec's vector decode hands this over so
            derived fields come from numpy shifts instead of per-object
            attribute walks).

    Derived columns are computed lazily and cached per geometry: a
    fan-out group whose consumers share one address map computes each
    column exactly once per chunk.
    """

    __slots__ = (
        "accesses",
        "start_index",
        "_addresses",
        "_blocks_bits",
        "_blocks",
        "_regions_bits",
        "_regions",
        "_read_mask",
        "_deltas_bits",
        "_deltas",
    )

    def __init__(
        self,
        accesses: List[MemoryAccess],
        start_index: int = 0,
        addresses=None,
    ) -> None:
        self.accesses = accesses
        self.start_index = start_index
        self._addresses = addresses
        self._blocks_bits: Optional[int] = None
        self._blocks: Optional[List[int]] = None
        self._regions_bits: Optional[int] = None
        self._regions: Optional[List[int]] = None
        self._read_mask: Optional[List[bool]] = None
        self._deltas_bits: Optional[int] = None
        self._deltas: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    # -- derived columns ---------------------------------------------------

    def _shifted(self, bits: int) -> List[int]:
        """``address >> bits`` for the whole chunk, as Python ints.

        Computes one derived column — the unit the ``prepass`` phase
        timer accounts (one timer call per column per chunk; note the
        pre-pass runs *inside* a chunk's walk step, so its time also
        appears under ``walk_step``).
        """
        timer = phases_active()
        if timer is None:
            return self._shifted_column(bits)
        start = perf_counter()
        column = self._shifted_column(bits)
        timer.add(PHASE_PREPASS, perf_counter() - start)
        return column

    def _shifted_column(self, bits: int) -> List[int]:
        addresses = self._addresses
        if addresses is not None:
            import numpy

            return (addresses >> numpy.uint64(bits)).tolist()
        return [access.address >> bits for access in self.accesses]

    def blocks_for(self, block_bits: int) -> List[int]:
        """Block ids under a geometry with ``block_bits`` offset bits."""
        if self._blocks_bits != block_bits:
            self._blocks = self._shifted(block_bits)
            self._blocks_bits = block_bits
        return self._blocks

    def regions_for(self, region_bits: int) -> List[int]:
        """Region ids under a geometry with ``region_bits`` offset bits.

        ``region_bits`` counts byte-offset bits within a region (the
        :class:`~repro.common.addresses.AddressMap.region_bits` value),
        so ``regions_for(bits)[i] == region_of(accesses[i].address)``.
        """
        if self._regions_bits != region_bits:
            self._regions = self._shifted(region_bits)
            self._regions_bits = region_bits
        return self._regions

    def read_mask(self) -> List[bool]:
        """Per-access ``not is_write`` (True = demand read)."""
        if self._read_mask is None:
            timer = phases_active()
            start = perf_counter() if timer is not None else 0.0
            self._read_mask = [not a.is_write for a in self.accesses]
            if timer is not None:
                timer.add(PHASE_PREPASS, perf_counter() - start)
        return self._read_mask

    def stride_deltas(self, block_bits: int) -> List[int]:
        """Block-id delta to the previous access (first element: 0).

        The stride pre-pass for chunk-level consumers: sequential scans
        show up as runs of ``±1``, spatial bursts as small magnitudes,
        pointer chases as large irregular jumps.
        """
        if self._deltas_bits != block_bits:
            blocks = self.blocks_for(block_bits)
            # time only the delta computation: blocks_for above already
            # accounted its column under the same phase
            timer = phases_active()
            start = perf_counter() if timer is not None else 0.0
            addresses = self._addresses
            if addresses is not None and len(blocks) > 1:
                import numpy

                shifted = addresses >> numpy.uint64(block_bits)
                deltas = numpy.diff(shifted.astype(numpy.int64)).tolist()
                self._deltas = [0] + deltas
            else:
                self._deltas = [0] + [
                    b - a for a, b in zip(blocks, blocks[1:])
                ]
            self._deltas_bits = block_bits
            if timer is not None:
                timer.add(PHASE_PREPASS, perf_counter() - start)
        return self._deltas


def chunk_accesses(
    accesses: Iterable[MemoryAccess],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> Iterator[AccessChunk]:
    """Batch any per-access iterable into :class:`AccessChunk` runs.

    The generic chunking wrapper for sources without a native chunk
    factory (generation passes, record-during-walk tees, materialized
    traces): the underlying iterator is drained exactly once, in order,
    so side effects of iteration (recording, accounting) behave exactly
    as in a record-at-a-time walk.
    """
    if chunk_records <= 0:
        raise ValueError(f"chunk_records must be positive, got {chunk_records}")
    iterator = iter(accesses)
    while True:
        batch: List[MemoryAccess] = []
        append = batch.append
        for access in iterator:
            append(access)
            if len(batch) >= chunk_records:
                break
        if not batch:
            return
        yield AccessChunk(batch, start_index=batch[0].index)


def iter_trace_chunks(trace: Iterable[MemoryAccess]) -> Iterator[AccessChunk]:
    """``trace`` as :class:`AccessChunk` runs, whatever its shape.

    Sources and materialized traces expose a native ``iter_chunks`` (a
    stored trace decodes whole chunks columnar); any other per-access
    iterable is batched generically — identical accesses either way.
    """
    chunks = getattr(trace, "iter_chunks", None)
    if chunks is not None:
        return iter(chunks())
    return chunk_accesses(trace)


def chunk_sequence(
    accesses: Sequence[MemoryAccess],
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> Iterator[AccessChunk]:
    """Chunk an in-memory sequence by slicing (no per-access iteration)."""
    if chunk_records <= 0:
        raise ValueError(f"chunk_records must be positive, got {chunk_records}")
    for start in range(0, len(accesses), chunk_records):
        batch = list(accesses[start:start + chunk_records])
        if batch:
            yield AccessChunk(batch, start_index=batch[0].index)
