"""repro — a reproduction of "Spatio-Temporal Memory Streaming" (ISCA 2009).

Public API quick tour::

    from repro import (
        SystemConfig, STeMSPrefetcher, SimulationDriver, make_workload,
    )

    trace = make_workload("db2").generate(100_000, seed=42)
    driver = SimulationDriver(SystemConfig.scaled(), STeMSPrefetcher(),
                              record_service=True)
    result = driver.run(trace)
    print(f"coverage {result.coverage:.1%}, "
          f"overpredictions {result.overprediction_rate:.1%}")

Subpackages:

* :mod:`repro.common` — address math, config (Table 1), LRU, stats
* :mod:`repro.memsys` — caches, hierarchy, streamed value buffer
* :mod:`repro.trace` — access records and trace containers
* :mod:`repro.workloads` — the ten-workload synthetic suite
* :mod:`repro.prefetch` — stride, TMS, SMS, naive hybrid and STeMS
* :mod:`repro.analysis` — Sequitur, repetition, correlation distance,
  joint coverage classification
* :mod:`repro.sim` — the coverage driver and timing model
* :mod:`repro.experiments` — one harness per paper table/figure
"""

from repro.common.addresses import AddressMap, DEFAULT_ADDRESS_MAP
from repro.common.config import (
    CacheConfig,
    SMSConfig,
    StrideConfig,
    STeMSConfig,
    SystemConfig,
    TimingConfig,
    TMSConfig,
)
from repro.prefetch import (
    NaiveHybridPrefetcher,
    Prefetcher,
    SMSPrefetcher,
    STeMSPrefetcher,
    StridePrefetcher,
    TMSPrefetcher,
)
from repro.sim import CoverageResult, SimulationDriver, TimingResult, simulate_timing
from repro.trace import MemoryAccess, Trace
from repro.workloads import WORKLOAD_NAMES, make_workload

__version__ = "1.1.0"

__all__ = [
    "AddressMap",
    "DEFAULT_ADDRESS_MAP",
    "CacheConfig",
    "SMSConfig",
    "StrideConfig",
    "STeMSConfig",
    "SystemConfig",
    "TimingConfig",
    "TMSConfig",
    "NaiveHybridPrefetcher",
    "Prefetcher",
    "SMSPrefetcher",
    "STeMSPrefetcher",
    "StridePrefetcher",
    "TMSPrefetcher",
    "CoverageResult",
    "SimulationDriver",
    "TimingResult",
    "simulate_timing",
    "MemoryAccess",
    "Trace",
    "WORKLOAD_NAMES",
    "make_workload",
    "__version__",
]
