"""Pattern history table (PHT) for SMS.

Indexed by (trigger PC, trigger offset). Two storage formats:

* **bit vectors** — the original SMS design: the last observed footprint
  replaces the stored pattern;
* **2-bit saturating counters** per block — the upgrade introduced in
  §4.3 of the STeMS paper: stable blocks stay predicted while unstable
  blocks train down, roughly halving overpredictions at equal coverage.

New patterns initialize at the prediction threshold so that a layout
learned once predicts immediately (SMS's fast-training property, §2.4).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.common.config import SMSConfig
from repro.common.lru import LRUTable
from repro.prefetch.sms.generations import SpatialIndex


class PatternHistoryTable:
    """LRU-bounded spatial pattern store."""

    def __init__(self, config: SMSConfig, blocks_per_region: int) -> None:
        self.config = config
        self.blocks_per_region = blocks_per_region
        # index -> per-offset counter (counter mode) or 0/1 flags (bit mode)
        self._table: LRUTable[SpatialIndex, Dict[int, int]] = LRUTable(
            config.pht_entries
        )
        self.trainings = 0

    def __contains__(self, index: SpatialIndex) -> bool:
        return index in self._table

    def __len__(self) -> int:
        return len(self._table)

    def train(self, index: SpatialIndex, accessed_offsets: Set[int]) -> None:
        """Fold one completed generation's footprint into the table."""
        self.trainings += 1
        offsets = {o for o in accessed_offsets if 0 <= o < self.blocks_per_region}
        if not self.config.use_counters:
            self._table.put(index, {o: 1 for o in offsets})
            return
        entry = self._table.get(index)
        if entry is None:
            # optimistic initialization for a brand-new index: a layout
            # learned once predicts immediately (fast training, §2.4)
            self._table.put(
                index, {o: self.config.predict_threshold for o in offsets}
            )
            return
        for offset in offsets:
            # offsets joining an established pattern start below threshold:
            # unstable (page-private) blocks then never reach prediction
            current = entry.get(offset, self.config.predict_threshold - 2)
            entry[offset] = min(current + 1, self.config.counter_max)
        for offset in list(entry):
            if offset not in offsets:
                entry[offset] -= 1
                if entry[offset] <= 0:
                    del entry[offset]

    def predict(self, index: SpatialIndex) -> List[int]:
        """Offsets predicted for ``index`` (unordered; SMS has no order)."""
        entry = self._table.get(index)
        if entry is None:
            return []
        if not self.config.use_counters:
            return sorted(entry)
        threshold = self.config.predict_threshold
        return sorted(o for o, c in entry.items() if c >= threshold)
