"""Active generation table (AGT): tracks live spatial generations.

A spatial generation (§2.4) starts with the first — *trigger* — access to
an inactive region and ends when one of the region's accessed blocks is
evicted or invalidated from the L1, or when the AGT entry itself is
displaced. The AGT accumulates the order of first-touches; SMS reduces the
order to a pattern, while STeMS keeps the full sequence together with each
element's *delta* (global off-chip misses skipped since the previous
element of this region, Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.common.addresses import AddressMap
from repro.common.lru import LRUTable

#: spatial prediction index: (trigger PC, trigger offset-in-region), §2.4
SpatialIndex = Tuple[int, int]


@dataclass(slots=True)
class SequenceElement:
    """One first-touch in a generation (trigger excluded)."""

    offset: int
    #: off-chip misses between the previous element of this region's
    #: sequence (the trigger for the first element) and this one
    delta: int
    #: whether the first touch was serviced off chip
    offchip: bool


@dataclass
class GenerationRecord:
    """State of one active spatial generation."""

    region: int
    trigger_pc: int
    trigger_offset: int
    #: first-touch sequence, in order, excluding the trigger
    elements: List[SequenceElement] = field(default_factory=list)
    touched: Set[int] = field(default_factory=set)
    #: global miss count at the most recent element (or trigger)
    last_miss_count: int = 0

    @property
    def index(self) -> SpatialIndex:
        return (self.trigger_pc, self.trigger_offset)

    def accessed_offsets(self) -> Set[int]:
        """All offsets touched this generation, including the trigger."""
        return set(self.touched)


@dataclass(slots=True)
class ObserveResult:
    """What the AGT saw for one access (one instance per observed access;
    consumers treat it as read-only)."""

    is_trigger: bool
    record: GenerationRecord


class ActiveGenerationTable:
    """Fixed-capacity table of active generations with LRU displacement."""

    def __init__(
        self,
        entries: int,
        address_map: AddressMap,
        on_generation_end: Optional[Callable[[GenerationRecord], None]] = None,
    ) -> None:
        self.address_map = address_map
        # per-access geometry, hoisted: ``observe`` runs once per L1
        # access for SMS/STeMS, so the region/offset split must be two
        # integer ops on locals rather than two method calls
        self._region_shift = address_map.region_block_bits
        self._offset_mask = address_map.blocks_per_region - 1
        self._on_end = on_generation_end
        self._table: LRUTable[int, GenerationRecord] = LRUTable(
            entries, on_evict=self._evict
        )
        self.generations_started = 0
        self.generations_ended = 0

    def _evict(self, region: int, record: GenerationRecord) -> None:
        self.generations_ended += 1
        if self._on_end is not None:
            self._on_end(record)

    def is_active(self, region: int) -> bool:
        return region in self._table

    def get(self, region: int) -> Optional[GenerationRecord]:
        return self._table.peek(region)

    def observe(
        self, pc: int, block: int, offchip: bool, global_miss_count: int = 0
    ) -> ObserveResult:
        """Record one L1 access; returns whether it was a trigger.

        ``global_miss_count`` is the number of off-chip read events seen
        *before* this access. Deltas count misses strictly between
        consecutive elements of a region's sequence (Fig. 3), so an
        off-chip element advances ``last_miss_count`` one past its own
        position while a cache-hit element does not.
        """
        region = block >> self._region_shift
        offset = block & self._offset_mask
        record = self._table.get(region)
        bump = 1 if offchip else 0
        if record is None:
            record = GenerationRecord(
                region=region,
                trigger_pc=pc,
                trigger_offset=offset,
                touched={offset},
                last_miss_count=global_miss_count + bump,
            )
            self._table.put(region, record)
            self.generations_started += 1
            return ObserveResult(is_trigger=True, record=record)
        if offset not in record.touched:
            record.touched.add(offset)
            delta = max(0, global_miss_count - record.last_miss_count)
            record.elements.append(
                SequenceElement(offset=offset, delta=delta, offchip=offchip)
            )
            record.last_miss_count = global_miss_count + bump
        return ObserveResult(is_trigger=False, record=record)

    def on_l1_eviction(self, block: int) -> None:
        """End the generation owning ``block`` if it touched that block."""
        region = block >> self._region_shift
        record = self._table.peek(region)
        if record is None:
            return
        if (block & self._offset_mask) in record.touched:
            self._table.pop(region)
            self._evict(region, record)

    def flush(self) -> None:
        """End every active generation (end-of-run training)."""
        for region in list(self._table):
            record = self._table.pop(region)
            if record is not None:
                self._evict(region, record)
