"""Spatial Memory Streaming (SMS, [21]) with the paper's 2-bit-counter
history upgrade (§4.3)."""

from repro.prefetch.sms.generations import ActiveGenerationTable, GenerationRecord
from repro.prefetch.sms.pht import PatternHistoryTable
from repro.prefetch.sms.sms import SMSPrefetcher

__all__ = [
    "ActiveGenerationTable",
    "GenerationRecord",
    "PatternHistoryTable",
    "SMSPrefetcher",
]
