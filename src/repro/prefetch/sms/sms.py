"""Spatial Memory Streaming prefetcher (SMS, [21]).

On the trigger access to an inactive region, SMS looks up the PHT with
(trigger PC, trigger offset) and fetches every predicted block of the new
region straight into the L1 (its original design). Training happens at
generation end via the AGT.
"""

from __future__ import annotations

from repro.common.addresses import AddressMap, DEFAULT_ADDRESS_MAP
from repro.common.config import SMSConfig
from repro.common.stats import StatGroup
from repro.prefetch.base import TARGET_L1, AccessEvent, Prefetcher
from repro.prefetch.sms.generations import ActiveGenerationTable, GenerationRecord
from repro.prefetch.sms.pht import PatternHistoryTable


class SMSPrefetcher(Prefetcher):
    """SMS: spatial footprint prediction at spatial-generation granularity."""

    name = "sms"

    def __init__(
        self,
        config: SMSConfig = SMSConfig(),
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
    ) -> None:
        super().__init__()
        self.config = config
        self.install_target = config.install_target
        self.address_map = address_map
        self.pht = PatternHistoryTable(config, address_map.blocks_per_region)
        self.agt = ActiveGenerationTable(
            config.agt_entries, address_map, on_generation_end=self._train
        )
        self.stats = StatGroup("sms")

    def _train(self, record: GenerationRecord) -> None:
        self.pht.train(record.index, record.accessed_offsets())

    def on_access(self, event: AccessEvent) -> None:
        """Observe every L1 access; predict on triggers."""
        result = self.agt.observe(
            event.access.pc, event.block, offchip=event.offchip
        )
        if not result.is_trigger:
            return
        record = result.record
        predicted = self.pht.predict(record.index)
        if not predicted:
            return
        self.stats.add("trigger_predictions")
        for offset in predicted:
            if offset == record.trigger_offset:
                continue
            self.stats.add("blocks_predicted")
            self._request(
                self.address_map.block_in_region(record.region, offset),
                target=TARGET_L1,
            )

    def on_l1_eviction(self, block: int) -> None:
        self.agt.on_l1_eviction(block)

    def finish(self) -> None:
        """End-of-run: train from all still-active generations."""
        self.agt.flush()
