"""Naive hybrid: TMS and SMS side by side, no coordination (§3.1, §5.5).

The paper evaluates this design and finds that although its coverage
approaches the joint opportunity, the two predictors interfere and
generate roughly 2-3x the overpredictions of STeMS — the motivation for
unified reconstruction. Each constituent trains and predicts exactly as
standalone; TMS requests target the SVB, SMS requests target the L1.
"""

from __future__ import annotations

from repro.common.addresses import AddressMap, DEFAULT_ADDRESS_MAP
from repro.common.config import SMSConfig, TMSConfig
from repro.prefetch.base import (
    TARGET_L1,
    TARGET_SVB,
    AccessEvent,
    Prefetcher,
    PrefetchRequest,
)
from repro.prefetch.sms.sms import SMSPrefetcher
from repro.prefetch.tms.tms import TMSPrefetcher


class NaiveHybridPrefetcher(Prefetcher):
    """Uncoordinated TMS + SMS combination."""

    install_target = TARGET_SVB
    name = "hybrid"

    def __init__(
        self,
        tms_config: TMSConfig = TMSConfig(),
        sms_config: SMSConfig = SMSConfig(),
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
    ) -> None:
        super().__init__()
        self.tms = TMSPrefetcher(tms_config)
        self.sms = SMSPrefetcher(sms_config, address_map)

    def on_access(self, event: AccessEvent) -> None:
        self.tms.on_access(event)
        self.sms.on_access(event)

    def on_l1_eviction(self, block: int) -> None:
        self.sms.on_l1_eviction(block)

    def on_svb_discard(self, block: int, stream_id: int) -> None:
        self.tms.on_svb_discard(block, stream_id)

    def pop_requests(self) -> "list[PrefetchRequest]":
        out = []
        for request in self.tms.pop_requests():
            out.append(
                PrefetchRequest(request.block, request.stream_id, TARGET_SVB)
            )
        for request in self.sms.pop_requests():
            out.append(PrefetchRequest(request.block, -1, TARGET_L1))
        return out

    def finish(self) -> None:
        self.sms.finish()
