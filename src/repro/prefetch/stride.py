"""PC-indexed stride prefetcher — the Table 1 baseline.

A 32-entry table tracks, per load PC, the last block accessed and the last
observed stride; two consecutive identical strides confirm the pattern and
prefetch ``degree`` blocks ahead. The table additionally caps the number of
distinct strides it tracks (Table 1: "max 16 distinct strides").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import StrideConfig
from repro.common.lru import LRUTable
from repro.common.stats import StatGroup
from repro.prefetch.base import TARGET_L1, AccessEvent, Prefetcher


@dataclass
class _StrideEntry:
    last_block: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher(Prefetcher):
    """Classic per-PC stride detector with confidence hysteresis."""

    install_target = TARGET_L1
    name = "stride"

    def __init__(self, config: StrideConfig = StrideConfig()) -> None:
        super().__init__()
        self.config = config
        self._table: LRUTable[int, _StrideEntry] = LRUTable(config.table_entries)
        self.stats = StatGroup("stride")

    def on_access(self, event: AccessEvent) -> None:
        pc, block = event.access.pc, event.block
        entry = self._table.get(pc)
        if entry is None:
            self._table.put(pc, _StrideEntry(last_block=block))
            return
        stride = block - entry.last_block
        entry.last_block = block
        if stride == 0:
            return
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 8)
        else:
            if not self._stride_allowed(stride):
                entry.confidence = 0
                return
            entry.stride = stride
            entry.confidence = 1
        if entry.confidence >= self.config.confidence_threshold:
            self.stats.add("predictions")
            for step in range(1, self.config.degree + 1):
                target_block = block + entry.stride * step
                if target_block >= 0:
                    self._request(target_block)

    def _stride_allowed(self, stride: int) -> bool:
        """Enforce the distinct-stride cap across the table."""
        distinct = {e.stride for _, e in self._table.items() if e.stride != 0}
        return stride in distinct or len(distinct) < self.config.max_distinct_strides
