"""Composite prefetcher: the Table-1 stride engine plus one predictor.

The paper's baseline system includes a stride prefetcher (Table 1), and
the TMS/SMS/STeMS configurations add their predictor on top of it. This
wrapper forwards every event to both engines and merges their requests,
which is what the Fig. 10 performance comparison requires.
"""

from __future__ import annotations

from typing import List

from repro.common.config import StrideConfig
from repro.prefetch.base import TARGET_L1, AccessEvent, Prefetcher, PrefetchRequest
from repro.prefetch.stride import StridePrefetcher


class CompositePrefetcher(Prefetcher):
    """Stride engine + one main predictor, as in the paper's system model."""

    def __init__(
        self,
        main: Prefetcher,
        stride_config: StrideConfig = StrideConfig(),
    ) -> None:
        super().__init__()
        self.main = main
        self.stride = StridePrefetcher(stride_config)
        self.install_target = main.install_target
        self.name = f"stride+{main.name}"

    def on_access(self, event: AccessEvent) -> None:
        self.stride.on_access(event)
        self.main.on_access(event)

    def on_l1_eviction(self, block: int) -> None:
        self.main.on_l1_eviction(block)

    def on_svb_discard(self, block: int, stream_id: int) -> None:
        self.main.on_svb_discard(block, stream_id)

    def pop_requests(self) -> List[PrefetchRequest]:
        out = [
            PrefetchRequest(r.block, -1, TARGET_L1)
            for r in self.stride.pop_requests()
        ]
        for request in self.main.pop_requests():
            target = request.target or self.main.install_target
            out.append(PrefetchRequest(request.block, request.stream_id, target))
        return out

    def finish(self) -> None:
        if hasattr(self.main, "finish"):
            self.main.finish()
