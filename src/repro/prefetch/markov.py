"""Markov prefetcher (Joseph & Grunwald, ISCA 1997 — [13]).

The original address-correlating prefetcher the temporal-streaming line
descends from (§1). A bounded table maps each miss address to the
addresses that most recently followed it (its Markov successors, with
per-successor hit counts); on a miss, the top ``fanout`` successors are
prefetched.

Unlike TMS/STeMS it has no notion of *streams*: every miss predicts one
step ahead, so it cannot amortize lookup cost over long sequences nor run
ahead of a pointer chase — the limitation §2.1 attributes to pre-TMS
correlation prefetchers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.lru import LRUTable
from repro.common.stats import StatGroup
from repro.prefetch.base import TARGET_SVB, AccessEvent, Prefetcher


@dataclass(frozen=True)
class MarkovConfig:
    """1-Mbit-class correlation table: 4K entries, 4 successors each."""

    table_entries: int = 4096
    successors: int = 4
    fanout: int = 2


class MarkovPrefetcher(Prefetcher):
    """First-order Markov (pair-correlation) prefetcher."""

    install_target = TARGET_SVB
    name = "markov"

    def __init__(self, config: MarkovConfig = MarkovConfig()) -> None:
        super().__init__()
        self.config = config
        #: miss address -> {successor block: count}, LRU bounded
        self._table: LRUTable[int, Dict[int, int]] = LRUTable(config.table_entries)
        self._previous_miss: Optional[int] = None
        self.stats = StatGroup("markov")

    def on_access(self, event: AccessEvent) -> None:
        if event.access.is_write or not event.offchip:
            return
        block = event.block

        # predict the most likely successors of this miss
        entry = self._table.get(block)
        if entry and not event.covered:
            ranked = sorted(entry.items(), key=lambda kv: -kv[1])
            for successor, _count in ranked[: self.config.fanout]:
                self.stats.add("prefetches")
                self._request(successor, target=TARGET_SVB)

        # train the (previous miss -> this miss) transition
        if self._previous_miss is not None and self._previous_miss != block:
            transitions = self._table.get(self._previous_miss)
            if transitions is None:
                transitions = {}
                self._table.put(self._previous_miss, transitions)
            transitions[block] = transitions.get(block, 0) + 1
            if len(transitions) > self.config.successors:
                weakest = min(transitions, key=transitions.__getitem__)
                del transitions[weakest]
        self._previous_miss = block
