"""Temporal Memory Streaming prefetcher (TMS, [26]).

TMS appends every off-chip read event to the CMOB. An *unpredicted*
off-chip miss looks up its address' most recent occurrence and begins
streaming the subsequent recorded addresses into the SVB; consumption
extends the stream, keeping ``lookahead`` blocks in flight (§2.2, §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import TMSConfig
from repro.common.stats import StatGroup
from repro.prefetch.base import TARGET_SVB, AccessEvent, Prefetcher
from repro.prefetch.streamqueue import StreamQueue, StreamQueueSet
from repro.prefetch.tms.cmob import CircularMissBuffer


@dataclass
class _TMSCursor:
    """Continuation state of one TMS stream: next CMOB position to read."""

    position: int


class TMSPrefetcher(Prefetcher):
    """TMS: replay of the recorded global off-chip miss sequence."""

    install_target = TARGET_SVB
    name = "tms"

    #: CMOB entries pulled per refill
    REFILL_BATCH = 16

    def __init__(self, config: TMSConfig = TMSConfig()) -> None:
        super().__init__()
        self.config = config
        self.cmob = CircularMissBuffer(config.cmob_entries)
        self.queues = StreamQueueSet(
            config.stream_queues, config.lookahead, config.initial_fetch
        )
        self.stats = StatGroup("tms")

    def on_access(self, event: AccessEvent) -> None:
        if event.access.is_write:
            return
        # 1. streamed-block consumption: confirm and extend the stream
        if event.covered and event.stream_id >= 0:
            for block in self.queues.on_consumed(event.stream_id):
                self._request(block, stream_id=event.stream_id, target=TARGET_SVB)
            self.queues.retire_if_exhausted(event.stream_id)
        if not event.offchip:
            return
        # 2. unpredicted off-chip miss: re-sync an overtaken stream if this
        # block is already in one's pending window, else locate and start
        # a new stream
        if not event.covered:
            pending = self.queues.find_pending(event.block)
            if pending is not None:
                self.stats.add("stream_resyncs")
                for block in self.queues.resync(pending.stream_id, event.block):
                    self._request(
                        block, stream_id=pending.stream_id, target=TARGET_SVB
                    )
            else:
                position = self.cmob.find(event.block)
                if position is not None:
                    self._allocate_stream(position + 1)
        # 3. training: append this off-chip event to the global sequence
        self.cmob.append(event.block)

    def on_svb_discard(self, block: int, stream_id: int) -> None:
        queue = self.queues.get(stream_id)
        if queue is not None:
            queue.inflight = max(0, queue.inflight - 1)

    def _allocate_stream(self, start_position: int) -> None:
        self.stats.add("streams_allocated")
        queue, initial = self.queues.allocate(
            [], refill=self._refill, cursor=_TMSCursor(start_position)
        )
        for block in initial:
            self._request(block, stream_id=queue.stream_id, target=TARGET_SVB)

    def _refill(self, queue: StreamQueue) -> "list[int]":
        cursor: _TMSCursor = queue.cursor
        entries = self.cmob.read_from(cursor.position, self.REFILL_BATCH)
        cursor.position += len(entries)
        return [entry.block for entry in entries]
