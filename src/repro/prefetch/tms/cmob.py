"""Circular miss-order buffer (CMOB) with a most-recent-occurrence index.

TMS stores the global off-chip miss sequence in a large circular buffer in
main memory (~2 MB/processor) and maps each address to its most recent
position so that a new miss can locate where to start streaming (§2.2).
STeMS reuses the same structure for its RMOB, with (PC, delta) payload per
entry (§4.1).

Positions are *absolute* (monotonically increasing); an entry is readable
while it has not been overwritten, i.e. while ``position > head - capacity``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class MissEntry:
    """One recorded miss. TMS ignores ``pc``/``delta``; STeMS uses both."""

    block: int
    pc: int = 0
    delta: int = 0


class CircularMissBuffer:
    """Fixed-capacity circular buffer of MissEntry with an address index."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: List[Optional[MissEntry]] = [None] * capacity
        self._index: Dict[int, int] = {}  # block -> most recent absolute pos
        self._head = 0  # absolute position of the next append
        self.appends = 0

    def __len__(self) -> int:
        return min(self._head, self.capacity)

    @property
    def head(self) -> int:
        return self._head

    def append(self, block: int, pc: int = 0, delta: int = 0) -> int:
        """Record a miss; returns its absolute position."""
        pos = self._head
        slot = pos % self.capacity
        overwritten = self._ring[slot]
        if overwritten is not None:
            # drop the index mapping only if it still points at this slot
            stale = self._index.get(overwritten.block)
            if stale is not None and stale % self.capacity == slot and stale != pos:
                del self._index[overwritten.block]
        self._ring[slot] = MissEntry(block=block, pc=pc, delta=delta)
        self._index[block] = pos
        self._head = pos + 1
        self.appends += 1
        return pos

    def find(self, block: int) -> Optional[int]:
        """Absolute position of the most recent occurrence of ``block``."""
        pos = self._index.get(block)
        if pos is None or not self._valid(pos):
            return None
        return pos

    def get(self, pos: int) -> Optional[MissEntry]:
        """Entry at absolute position ``pos`` if still resident."""
        if not self._valid(pos):
            return None
        return self._ring[pos % self.capacity]

    def read_from(self, pos: int, count: int) -> List[MissEntry]:
        """Up to ``count`` consecutive entries starting at ``pos``."""
        out: List[MissEntry] = []
        for p in range(pos, min(pos + count, self._head)):
            entry = self.get(p)
            if entry is None:
                break
            out.append(entry)
        return out

    def _valid(self, pos: int) -> bool:
        return 0 <= pos < self._head and pos > self._head - self.capacity - 1
