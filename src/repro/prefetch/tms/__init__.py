"""Temporal Memory Streaming (TMS, [26]): CMOB + stream queues."""

from repro.prefetch.tms.cmob import CircularMissBuffer, MissEntry
from repro.prefetch.tms.tms import TMSPrefetcher

__all__ = ["CircularMissBuffer", "MissEntry", "TMSPrefetcher"]
