"""Prefetcher interface shared by all predictors.

The coverage driver (:mod:`repro.sim.driver`) feeds every demand access to
the prefetcher as an :class:`AccessEvent` — including where it was serviced
(L1, L2, off-chip memory, or the SVB) — forwards L1 evictions (spatial
generations end on eviction, §2.4), and collects prefetch requests after
each access.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

from repro.memsys.hierarchy import ServiceLevel
from repro.trace.events import MemoryAccess


#: install targets for prefetched blocks
TARGET_SVB = "svb"
TARGET_L1 = "l1"


@dataclass(slots=True)
class AccessEvent:
    """One demand access as seen by a prefetcher.

    Constructed once per access per attached prefetcher on the hot walk;
    treated as read-only by every consumer.
    """

    access: MemoryAccess
    block: int
    level: ServiceLevel
    #: True when the access was serviced by a prefetched block
    covered: bool = False
    #: stream that supplied the block (SVB consumptions only), -1 otherwise
    stream_id: int = -1

    @property
    def offchip(self) -> bool:
        """Whether this access corresponds to an off-chip fetch event.

        Covered accesses still count: the block *was* fetched from memory,
        just earlier and by the prefetcher. Temporal predictors record
        these events to keep their miss sequences contiguous.
        """
        return (
            self.covered
            or self.level is ServiceLevel.MEMORY
            or self.level is ServiceLevel.SVB
        )


@dataclass(frozen=True)
class PrefetchRequest:
    """A block the prefetcher wants fetched."""

    block: int
    stream_id: int = -1
    #: None means "use the prefetcher's default install target"
    target: Optional[str] = None


class Prefetcher(abc.ABC):
    """Base class for all prefetchers."""

    #: default install target for this prefetcher's requests
    install_target: str = TARGET_SVB
    name: str = "prefetcher"

    def __init__(self) -> None:
        self._pending: List[PrefetchRequest] = []

    @abc.abstractmethod
    def on_access(self, event: AccessEvent) -> None:
        """Observe one demand access (training and stream advancement)."""

    def on_l1_eviction(self, block: int) -> None:
        """Observe an L1 eviction (terminates spatial generations)."""

    def on_svb_discard(self, block: int, stream_id: int) -> None:
        """A streamed block left the SVB unused (keeps in-flight counts
        honest so streams are not throttled by stale fetches)."""

    def pop_requests(self) -> List[PrefetchRequest]:
        """Drain the prefetch requests produced by recent events."""
        out, self._pending = self._pending, []
        return out

    def _request(
        self, block: int, stream_id: int = -1, target: Optional[str] = None
    ) -> None:
        self._pending.append(PrefetchRequest(block, stream_id, target))
