"""Prefetchers: the stride baseline, TMS, SMS, the naive hybrid and STeMS."""

from repro.prefetch.base import AccessEvent, Prefetcher, PrefetchRequest
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.hybrid import NaiveHybridPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.sms.sms import SMSPrefetcher
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.tms.tms import TMSPrefetcher

__all__ = [
    "AccessEvent",
    "Prefetcher",
    "PrefetchRequest",
    "CompositePrefetcher",
    "GHBPrefetcher",
    "MarkovPrefetcher",
    "StridePrefetcher",
    "SMSPrefetcher",
    "TMSPrefetcher",
    "STeMSPrefetcher",
    "NaiveHybridPrefetcher",
]
