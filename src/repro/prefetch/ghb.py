"""Global History Buffer prefetcher (Nesbit & Smith, HPCA 2004 — [17]).

One of the temporal address-correlating predictors the paper builds on
(§1). The GHB keeps the recent global miss history in a circular buffer;
an index table maps a localization key to the most recent history entry
with that key, and entries with the same key are chained. We implement
the classic **G/AC** organization (globally indexed, address-correlating):
on a miss, follow the chain to the previous occurrence of the address and
prefetch the ``degree`` misses that followed it.

Compared with TMS, the GHB is an *on-chip* structure: its history is two
orders of magnitude smaller (hundreds of entries vs. hundreds of
thousands), so it can only exploit short-range temporal correlation —
which is exactly why the TMS/STeMS line of work moved the history off
chip. The contrast is visible in the Fig. 9-style comparison: GHB
coverage collapses on working sets that outrun its history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.stats import StatGroup
from repro.prefetch.base import TARGET_SVB, AccessEvent, Prefetcher


@dataclass(frozen=True)
class GHBConfig:
    """Classic on-chip GHB sizing (256-entry history, 256-entry index)."""

    history_entries: int = 256
    index_entries: int = 256
    degree: int = 4


class _HistoryEntry:
    __slots__ = ("block", "link")

    def __init__(self, block: int, link: Optional[int]) -> None:
        self.block = block
        #: absolute position of the previous entry with the same key
        self.link = link


class GHBPrefetcher(Prefetcher):
    """G/AC global history buffer prefetcher."""

    install_target = TARGET_SVB
    name = "ghb"

    def __init__(self, config: GHBConfig = GHBConfig()) -> None:
        super().__init__()
        self.config = config
        self._ring: List[Optional[_HistoryEntry]] = [None] * config.history_entries
        self._head = 0  # absolute position of next append
        self._index: Dict[int, int] = {}  # block -> most recent position
        self.stats = StatGroup("ghb")

    def _valid(self, position: Optional[int]) -> bool:
        return (
            position is not None
            and 0 <= position < self._head
            and position > self._head - self.config.history_entries - 1
        )

    def on_access(self, event: AccessEvent) -> None:
        if event.access.is_write or not event.offchip:
            return
        block = event.block
        previous = self._index.get(block)
        if not self._valid(previous):
            previous = None

        # predict: replay the misses that followed the previous occurrence
        if previous is not None and not event.covered:
            self.stats.add("chain_hits")
            for position in range(previous + 1, previous + 1 + self.config.degree):
                if not self._valid(position):
                    break
                entry = self._ring[position % self.config.history_entries]
                if entry is None:
                    break
                self.stats.add("prefetches")
                self._request(entry.block, target=TARGET_SVB)

        # train: append to the history, linking same-address entries
        slot = self._head % self.config.history_entries
        overwritten = self._ring[slot]
        if overwritten is not None:
            stale = self._index.get(overwritten.block)
            if stale is not None and not self._valid(stale):
                del self._index[overwritten.block]
        self._ring[slot] = _HistoryEntry(block, previous)
        if len(self._index) >= self.config.index_entries and block not in self._index:
            # bounded index table: drop an arbitrary (oldest-ish) mapping
            self._index.pop(next(iter(self._index)))
        self._index[block] = self._head
        self._head += 1
