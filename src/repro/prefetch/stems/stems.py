"""The STeMS prefetcher: unified spatio-temporal streaming (§4).

Training (§4.1):

* the AGT/PST train on all L1 accesses as in SMS, but keep the full
  first-touch *sequence* with per-element deltas;
* every off-chip read event is either appended to the RMOB (spatial
  triggers and spatially-unpredicted misses, with PC and delta) or
  counted as *skipped* (spatially predicted misses), which is what the
  recorded deltas measure.

Streaming (§4.2):

* an unpredicted off-chip miss looks up the RMOB; a hit starts a stream
  whose addresses come from *reconstruction* — the interleaving of the
  RMOB skeleton with each entry's PST sequence;
* consumption (SVB hits) extends the stream toward the lookahead; when a
  queue runs low, reconstruction resumes from the stream's RMOB cursor;
* a new spatial generation whose index was not produced by reconstruction
  starts a *spatial-only* stream (deltas ignored) — the mechanism that
  covers compulsory-miss regions such as DSS scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.common.addresses import AddressMap, DEFAULT_ADDRESS_MAP
from repro.common.config import STeMSConfig
from repro.common.lru import LRUTable
from repro.common.stats import StatGroup
from repro.memsys.hierarchy import ServiceLevel
from repro.prefetch.base import TARGET_SVB, AccessEvent, Prefetcher
from repro.prefetch.sms.generations import (
    ActiveGenerationTable,
    GenerationRecord,
    SpatialIndex,
)
from repro.prefetch.stems.pst import PatternSequenceTable
from repro.prefetch.stems.reconstruction import Reconstructor
from repro.prefetch.streamqueue import StreamQueue, StreamQueueSet
from repro.prefetch.tms.cmob import CircularMissBuffer


@dataclass
class _STeMSCursor:
    """Continuation state of one reconstructed stream."""

    position: int  # next RMOB absolute position to reconstruct from
    issued: Set[int] = field(default_factory=set)  # blocks already streamed


class STeMSPrefetcher(Prefetcher):
    """Spatio-Temporal Memory Streaming."""

    install_target = TARGET_SVB
    name = "stems"

    #: bound on the per-stream de-duplication set
    MAX_ISSUED_TRACKED = 8192

    def __init__(
        self,
        config: STeMSConfig = STeMSConfig(),
        address_map: AddressMap = DEFAULT_ADDRESS_MAP,
    ) -> None:
        super().__init__()
        self.config = config
        self.address_map = address_map
        self.pst = PatternSequenceTable(config, address_map.blocks_per_region)
        self.agt = ActiveGenerationTable(
            config.agt_entries, address_map, on_generation_end=self._train
        )
        self.rmob = CircularMissBuffer(config.rmob_entries)
        self.reconstructor = Reconstructor(
            self.pst,
            address_map,
            buffer_size=config.reconstruction_entries,
            placement_window=config.placement_window,
        )
        self.queues = StreamQueueSet(
            config.stream_queues, config.lookahead, config.initial_fetch
        )
        #: regions predicted by reconstruction -> index used (for the
        #: spatial-only stream decision, §4.2)
        self._reconstructed: LRUTable[int, SpatialIndex] = LRUTable(4096)
        self._miss_count = 0  # off-chip read events observed so far
        self._skipped = 0  # misses omitted from the RMOB since last append
        self.stats = StatGroup("stems")
        # hot-loop bindings: ``on_access`` runs once per simulated access
        self._counters = self.stats._counters
        self._offset_mask = address_map.blocks_per_region - 1

    # -- training ----------------------------------------------------------------

    def _train(self, record: GenerationRecord) -> None:
        self.pst.train(record.index, record.elements)

    # -- event handling ----------------------------------------------------------

    def on_access(self, event: AccessEvent) -> None:
        block, pc = event.block, event.access.pc
        is_read = not event.access.is_write
        offchip_event = event.offchip and is_read

        # 1. streamed-block consumption: confirm + extend the stream
        if event.covered and event.stream_id >= 0:
            self._extend_stream(event.stream_id)

        # 2. unpredicted off-chip miss: re-sync an overtaken stream when the
        # block is already in one's pending window; otherwise locate the
        # address in the RMOB and start a reconstructed stream
        if is_read and event.level == ServiceLevel.MEMORY and not event.covered:
            pending = self.queues.find_pending(block)
            if pending is not None:
                self._counters["stream_resyncs"] += 1
                for pf_block in self.queues.resync(pending.stream_id, block):
                    self._request(
                        pf_block, stream_id=pending.stream_id, target=TARGET_SVB
                    )
            else:
                position = self.rmob.find(block)
                if position is not None:
                    self._allocate_reconstructed_stream(position)

        # 3. spatial training: AGT observes every access
        result = self.agt.observe(
            pc, block, offchip=offchip_event, global_miss_count=self._miss_count
        )
        record = result.record

        # 4. spatial-only stream on unpredicted generation begins
        if result.is_trigger and offchip_event:
            self._maybe_spatial_only_stream(record)

        # 5. temporal training: RMOB append or skip
        if offchip_event:
            spatially_predicted = False
            if not result.is_trigger:
                offset = block & self._offset_mask
                spatially_predicted = offset in self.pst.predict_offsets(record.index)
            if result.is_trigger or not spatially_predicted:
                self.rmob.append(block, pc=pc, delta=self._skipped)
                self._skipped = 0
                self._counters["rmob_appends"] += 1
            else:
                self._skipped += 1
                self._counters["rmob_filtered"] += 1
            self._miss_count += 1

    def on_l1_eviction(self, block: int) -> None:
        self.agt.on_l1_eviction(block)

    def on_svb_discard(self, block: int, stream_id: int) -> None:
        queue = self.queues.get(stream_id)
        if queue is not None:
            queue.inflight = max(0, queue.inflight - 1)

    def finish(self) -> None:
        """End-of-run: train from all still-active generations."""
        self.agt.flush()

    # -- streaming ---------------------------------------------------------------

    def _extend_stream(self, stream_id: int) -> None:
        queue = self.queues.get(stream_id)
        if queue is None:
            return
        for block in self.queues.on_consumed(stream_id):
            self._request(block, stream_id=stream_id, target=TARGET_SVB)
        self.queues.retire_if_exhausted(stream_id)

    def _allocate_reconstructed_stream(self, position: int) -> None:
        """Start a stream by reconstructing from RMOB ``position``.

        The located entry itself participates (its spatial sequence is
        predicted) but its own block — the demand miss — is excluded.
        """
        entries = self.rmob.read_from(position, self.config.reconstruction_batch)
        if not entries:
            return
        result = self.reconstructor.reconstruct(
            entries, include_first=False, on_region=self._register_region
        )
        self._note_placement(result)
        if not result.blocks:
            return  # nothing predicted: do not waste a stream queue
        cursor = _STeMSCursor(position=position + len(entries))
        cursor.issued.update(result.blocks)
        queue, initial = self.queues.allocate(
            result.blocks, refill=self._refill, cursor=cursor
        )
        self.stats.add("reconstructed_streams")
        for block in initial:
            self._request(block, stream_id=queue.stream_id, target=TARGET_SVB)

    def _refill(self, queue: StreamQueue) -> List[int]:
        """Resume reconstruction for a stream whose queue ran low (§4.2)."""
        cursor: _STeMSCursor = queue.cursor
        entries = self.rmob.read_from(cursor.position, self.config.reconstruction_batch)
        if not entries:
            return []
        result = self.reconstructor.reconstruct(
            entries, include_first=True, on_region=self._register_region
        )
        self._note_placement(result)
        cursor.position += len(entries)
        fresh = [b for b in result.blocks if b not in cursor.issued]
        if len(cursor.issued) < self.MAX_ISSUED_TRACKED:
            cursor.issued.update(fresh)
        return fresh

    def _maybe_spatial_only_stream(self, record: GenerationRecord) -> None:
        """§4.2: begin a spatial-only stream when the observed trigger index
        differs from (or was absent in) the reconstructed prediction."""
        predicted_index = self._reconstructed.peek(record.region)
        if predicted_index == record.index:
            return
        sequence = self.pst.predict(record.index)
        if not sequence:
            return
        blocks = [
            self.address_map.block_in_region(record.region, step.offset)
            for step in sequence
            if step.offset != record.trigger_offset
        ]
        if not blocks:
            return
        self.stats.add("spatial_only_streams")
        queue, initial = self.queues.allocate(blocks)
        for block in initial:
            self._request(block, stream_id=queue.stream_id, target=TARGET_SVB)

    def _register_region(self, region: int, index: SpatialIndex) -> None:
        self._reconstructed.put(region, index)

    def _note_placement(self, result) -> None:
        self.stats.add("recon_placed_original", result.placed_original)
        self.stats.add("recon_placed_adjacent", result.placed_adjacent)
        self.stats.add("recon_dropped", result.dropped)
