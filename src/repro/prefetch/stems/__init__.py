"""Spatio-Temporal Memory Streaming (STeMS) — the paper's contribution.

Components:

* :class:`~repro.prefetch.stems.pst.PatternSequenceTable` — spatial access
  *sequences* with per-block 2-bit counters and reconstruction deltas;
* the RMOB — a :class:`~repro.prefetch.tms.cmob.CircularMissBuffer`
  recording only spatial triggers and spatially-unpredicted misses;
* :class:`~repro.prefetch.stems.reconstruction.Reconstructor` — interleaves
  temporal and spatial predictions into one total predicted miss order;
* :class:`~repro.prefetch.stems.stems.STeMSPrefetcher` — ties it together
  with stream queues, SVB throttling and spatial-only streams.
"""

from repro.prefetch.stems.pst import PatternSequenceTable, SequenceStep
from repro.prefetch.stems.reconstruction import ReconstructionResult, Reconstructor
from repro.prefetch.stems.stems import STeMSPrefetcher

__all__ = [
    "PatternSequenceTable",
    "SequenceStep",
    "ReconstructionResult",
    "Reconstructor",
    "STeMSPrefetcher",
]
