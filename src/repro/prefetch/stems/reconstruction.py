"""Reconstruction: interleaving temporal and spatial predictions (§4.2).

Given a window of RMOB entries, the reconstructor rebuilds the total
predicted miss order in a fixed-size slot buffer (256 entries):

1. the first entry's address is placed at slot 0;
2. each subsequent RMOB entry is placed ``delta + 1`` slots after the
   previous RMOB entry's slot;
3. every RMOB entry triggers a PST lookup with (entry PC, entry offset);
   each predicted spatial element is placed ``delta + 1`` slots after the
   previous element of that region's sequence (the trigger for the first);
4. a collision searches up to ``placement_window`` (2) slots forward then
   backward; unplaceable addresses are dropped (the paper reports 99%
   placed, 92% in their original slot).

The slot-ordered, de-duplicated block list is the stream's predicted
sequence. Figure 5's worked example is reproduced verbatim in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.addresses import AddressMap
from repro.prefetch.sms.generations import SpatialIndex
from repro.prefetch.stems.pst import PatternSequenceTable
from repro.prefetch.tms.cmob import MissEntry


@dataclass
class ReconstructionResult:
    """Outcome of one reconstruction episode."""

    #: predicted blocks in reconstructed (slot) order
    blocks: List[int] = field(default_factory=list)
    placed_original: int = 0
    placed_adjacent: int = 0
    dropped: int = 0
    #: regions whose spatial sequence was expanded: region -> index used
    regions: Dict[int, SpatialIndex] = field(default_factory=dict)


class Reconstructor:
    """Stateless reconstruction engine over a PST and an address map."""

    def __init__(
        self,
        pst: PatternSequenceTable,
        address_map: AddressMap,
        buffer_size: int = 256,
        placement_window: int = 2,
    ) -> None:
        self.pst = pst
        self.address_map = address_map
        self.buffer_size = buffer_size
        self.placement_window = placement_window

    def reconstruct(
        self,
        entries: Sequence[MissEntry],
        include_first: bool = True,
        on_region: Optional[Callable[[int, SpatialIndex], None]] = None,
    ) -> ReconstructionResult:
        """Rebuild the predicted total miss order for ``entries``.

        ``include_first=False`` omits the first entry's own block from the
        output (used when that block is the demand miss that started the
        stream — the processor already has it).
        """
        result = ReconstructionResult()
        slots: List[Optional[int]] = [None] * self.buffer_size
        amap = self.address_map

        # phase 1: temporal skeleton — place the RMOB entries themselves
        entry_slots: List[Optional[int]] = []
        cursor = -1
        for i, entry in enumerate(entries):
            cursor = cursor + entry.delta + 1 if i else 0
            placed = self._place(slots, cursor, entry.block, result)
            entry_slots.append(placed)

        # phase 2: spatial expansion — interleave each entry's sequence
        for entry, anchor in zip(entries, entry_slots):
            if anchor is None:
                continue
            region = amap.region_of_block(entry.block)
            index = (entry.pc, amap.offset_in_region(entry.block))
            sequence = self.pst.predict(index)
            if not sequence:
                continue
            result.regions[region] = index
            if on_region is not None:
                on_region(region, index)
            position = anchor
            for step in sequence:
                position = position + step.delta + 1
                if position >= self.buffer_size:
                    result.dropped += 1
                    continue
                block = amap.block_in_region(region, step.offset)
                self._place(slots, position, block, result)

        # phase 3: emit in slot order, de-duplicated
        skip_block = entries[0].block if (entries and not include_first) else None
        seen = set()
        for block in slots:
            if block is None or block in seen:
                continue
            seen.add(block)
            if skip_block is not None and block == skip_block:
                skip_block = None  # only skip its first occurrence
                continue
            result.blocks.append(block)
        return result

    def _place(
        self,
        slots: List[Optional[int]],
        position: int,
        block: int,
        result: ReconstructionResult,
    ) -> Optional[int]:
        """Place ``block`` at ``position``, searching +/-window on conflict."""
        if position < 0 or position >= self.buffer_size:
            result.dropped += 1
            return None
        if slots[position] is None:
            slots[position] = block
            result.placed_original += 1
            return position
        if slots[position] == block:
            result.placed_original += 1
            return position
        for offset in range(1, self.placement_window + 1):
            for candidate in (position + offset, position - offset):
                if 0 <= candidate < self.buffer_size and slots[candidate] is None:
                    slots[candidate] = block
                    result.placed_adjacent += 1
                    return candidate
        result.dropped += 1
        return None
