"""Pattern sequence table (PST): ordered spatial patterns with deltas.

STeMS's PST differs from the SMS PHT in that each entry stores a
*sequence*: for every block of the region a 2-bit saturating counter, the
block's position in the observed first-touch order, and its reconstruction
delta (global misses skipped since the previous element, §3.1/§4.3 —
40 bytes per entry: 32 blocks x (2-bit counter + 8-bit delta)). Blocks
whose counters reach the threshold are predicted, in stored order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.common.config import STeMSConfig
from repro.common.lru import LRUTable
from repro.prefetch.sms.generations import SequenceElement, SpatialIndex


@dataclass(frozen=True)
class SequenceStep:
    """One predicted element of a spatial sequence."""

    offset: int
    delta: int


@dataclass
class _BlockState:
    counter: int
    delta: int
    position: int


class PatternSequenceTable:
    """LRU-bounded table: spatial index -> per-block sequence state."""

    def __init__(self, config: STeMSConfig, blocks_per_region: int) -> None:
        self.config = config
        self.blocks_per_region = blocks_per_region
        self._table: LRUTable[SpatialIndex, Dict[int, _BlockState]] = LRUTable(
            config.pst_entries
        )
        self.trainings = 0

    def __contains__(self, index: SpatialIndex) -> bool:
        return index in self._table

    def __len__(self) -> int:
        return len(self._table)

    def train(self, index: SpatialIndex, elements: Sequence[SequenceElement]) -> None:
        """Fold one completed generation's sequence into the table.

        Observed blocks strengthen their counter and refresh (delta,
        position) to the most recent observation; unobserved blocks weaken
        and eventually drop out — the hysteresis that lets STeMS learn the
        stable part of each pattern (§4.3).
        """
        self.trainings += 1
        observed = [
            e for e in elements if 0 <= e.offset < self.blocks_per_region
        ]
        entry = self._table.get(index)
        if entry is None:
            entry = {}
            init = self.config.predict_threshold  # optimistic: predict once-seen
            for position, element in enumerate(observed):
                if element.offset in entry:
                    continue
                entry[element.offset] = _BlockState(
                    counter=init, delta=element.delta, position=position
                )
            self._table.put(index, entry)
            return
        seen: Set[int] = set()
        for position, element in enumerate(observed):
            if element.offset in seen:
                continue
            seen.add(element.offset)
            state = entry.get(element.offset)
            if state is None:
                # joining an established pattern: start below threshold so
                # page-private (unstable) blocks never reach prediction
                entry[element.offset] = _BlockState(
                    counter=self.config.predict_threshold - 1,
                    delta=element.delta,
                    position=position,
                )
            else:
                state.counter = min(state.counter + 1, self.config.counter_max)
                state.delta = element.delta
                state.position = position
        for offset in list(entry):
            if offset not in seen:
                entry[offset].counter -= 1
                if entry[offset].counter <= 0:
                    del entry[offset]

    def predict(self, index: SpatialIndex) -> List[SequenceStep]:
        """Predicted sequence for ``index``, in stored order."""
        entry = self._table.get(index)
        if entry is None:
            return []
        threshold = self.config.predict_threshold
        chosen = [
            (state.position, offset, state.delta)
            for offset, state in entry.items()
            if state.counter >= threshold
        ]
        chosen.sort()
        return [SequenceStep(offset=o, delta=d) for _, o, d in chosen]

    def predict_offsets(self, index: SpatialIndex) -> Set[int]:
        """Predicted offsets only (used for the RMOB filtering decision).

        Runs once per off-chip read event, so it skips :meth:`predict`'s
        ordering and :class:`SequenceStep` construction — the set of
        offsets meeting the threshold is the same either way.
        """
        entry = self._table.get(index)
        if entry is None:
            return set()
        threshold = self.config.predict_threshold
        return {
            offset for offset, state in entry.items()
            if state.counter >= threshold
        }
