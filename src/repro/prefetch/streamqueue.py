"""Stream queues with demand-driven throttling, shared by TMS and STeMS.

A stream queue holds the not-yet-fetched tail of one predicted miss
sequence. Streaming follows §4.2/§4.3 of the paper:

* a newly allocated stream fetches only ``initial_fetch`` block(s);
* consuming a streamed block (an SVB hit) confirms the stream and extends
  it so that up to ``lookahead`` blocks are in flight;
* when a queue runs low it asks its ``refill`` callback for more addresses
  (TMS reads more CMOB entries; STeMS resumes reconstruction);
* a fixed number of queues (8) is shared, with LRU victim selection keyed
  by stream activity (allocations, fetches and hits).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional

#: refill callback: given the stream's opaque cursor state, return more
#: upcoming block addresses (empty list ends the stream).
RefillFn = Callable[["StreamQueue"], List[int]]


class StreamQueue:
    """One predicted stream: pending addresses plus in-flight accounting."""

    def __init__(
        self,
        stream_id: int,
        addresses: Iterable[int],
        refill: Optional[RefillFn] = None,
        cursor: object = None,
    ) -> None:
        self.stream_id = stream_id
        self.pending: Deque[int] = deque(addresses)
        self._pending_set = set(self.pending)
        self.refill = refill
        #: opaque per-stream continuation state owned by the prefetcher
        self.cursor = cursor
        self.inflight = 0
        self.hits = 0
        self.fetched = 0
        self.exhausted = refill is None and not self.pending

    def has_pending(self, block: int) -> bool:
        return block in self._pending_set

    def pending_position(self, block: int, window: int) -> Optional[int]:
        """Position of ``block`` within the first ``window`` pending
        entries, or None. Bounding the search matters: a block can recur
        deep in a predicted sequence, and skipping to a *later* occurrence
        would discard valid stream content."""
        if block not in self._pending_set:
            return None
        for position, pending_block in enumerate(self.pending):
            if position >= window:
                return None
            if pending_block == block:
                return position
        return None

    def next_blocks(self, count: int) -> List[int]:
        """Take up to ``count`` upcoming addresses, refilling as needed."""
        out: List[int] = []
        while len(out) < count:
            if not self.pending:
                if self.refill is None or self.exhausted:
                    break
                more = self.refill(self)
                if not more:
                    self.exhausted = True
                    break
                self.pending.extend(more)
                self._pending_set.update(more)
            block = self.pending.popleft()
            self._pending_set.discard(block)
            out.append(block)
        self.fetched += len(out)
        self.inflight += len(out)
        return out

    def advance_past(self, block: int, window: Optional[int] = None) -> int:
        """Skip the queue forward past ``block`` (demand caught up with the
        not-yet-fetched part of the stream); returns entries skipped."""
        limit = window if window is not None else len(self.pending)
        if self.pending_position(block, limit) is None:
            return 0
        skipped = 0
        while self.pending:
            head = self.pending.popleft()
            self._pending_set.discard(head)
            skipped += 1
            if head == block:
                break
        return skipped


class StreamQueueSet:
    """Fixed set of stream queues with LRU victim selection."""

    def __init__(self, num_queues: int, lookahead: int, initial_fetch: int = 1) -> None:
        if num_queues <= 0:
            raise ValueError(f"num_queues must be positive, got {num_queues}")
        self.num_queues = num_queues
        self.lookahead = lookahead
        self.initial_fetch = initial_fetch
        self._queues: Dict[int, StreamQueue] = {}
        self._activity: List[int] = []  # stream ids, most recent last
        self._next_id = 0
        self.allocated = 0
        self.killed = 0

    def __len__(self) -> int:
        return len(self._queues)

    def get(self, stream_id: int) -> Optional[StreamQueue]:
        return self._queues.get(stream_id)

    def allocate(
        self,
        addresses: Iterable[int],
        refill: Optional[RefillFn] = None,
        cursor: object = None,
    ) -> "tuple[StreamQueue, List[int]]":
        """Create a stream (evicting the LRU one if full); returns the new
        queue and the initial block(s) to fetch."""
        stream_id = self._next_id
        self._next_id += 1
        if len(self._queues) >= self.num_queues:
            victim = self._activity.pop(0)
            del self._queues[victim]
            self.killed += 1
        queue = StreamQueue(stream_id, addresses, refill, cursor)
        self._queues[stream_id] = queue
        self._activity.append(stream_id)
        self.allocated += 1
        return queue, queue.next_blocks(self.initial_fetch)

    def on_consumed(self, stream_id: int) -> List[int]:
        """A streamed block was used: extend the stream toward lookahead."""
        queue = self._queues.get(stream_id)
        if queue is None:
            return []
        queue.hits += 1
        queue.inflight = max(0, queue.inflight - 1)
        self._touch(stream_id)
        want = self.lookahead - queue.inflight
        if want <= 0:
            return []
        return queue.next_blocks(want)

    #: pending-window depth eligible for demand re-sync. Kept tight: a
    #: healthy stream only ever trails demand by a few blocks, and blocks
    #: recurring deeper in a predicted sequence are different occurrences.
    RESYNC_WINDOW = 4

    def find_pending(self, block: int) -> Optional[StreamQueue]:
        """The active *healthy* stream about to predict ``block``.

        Saturated streams (in-flight at/over the lookahead) are excluded:
        demand overtaking a stream whose fetches are not being consumed
        means the stream is off track, and a fresh re-located stream beats
        extending it.
        """
        for queue in self._queues.values():
            if queue.inflight >= self.lookahead:
                continue
            if queue.pending_position(block, self.RESYNC_WINDOW) is not None:
                return queue
        return None

    def resync(self, stream_id: int, block: int) -> List[int]:
        """Demand overtook a stream: skip it past ``block`` and extend it
        toward the lookahead instead of allocating a competing stream."""
        queue = self._queues.get(stream_id)
        if queue is None:
            return []
        queue.advance_past(block, self.RESYNC_WINDOW)
        queue.hits += 1
        self._touch(stream_id)
        want = self.lookahead - queue.inflight
        if want <= 0:
            return []
        return queue.next_blocks(want)

    def _touch(self, stream_id: int) -> None:
        try:
            self._activity.remove(stream_id)
        except ValueError:
            return
        self._activity.append(stream_id)

    def retire_if_exhausted(self, stream_id: int) -> bool:
        """Drop a stream whose pending queue and in-flight set are empty."""
        queue = self._queues.get(stream_id)
        if queue is None:
            return False
        if queue.exhausted and not queue.pending and queue.inflight == 0:
            del self._queues[stream_id]
            try:
                self._activity.remove(stream_id)
            except ValueError:
                pass
            return True
        return False
