"""Unified simulation engine: declare jobs, execute them once, anywhere.

The engine splits "what to simulate" from "how to run it" in three
layers:

* **Jobs** (:mod:`repro.engine.job`) — :class:`SimJob` describes one
  simulation or analysis as pure data with a stable content hash;
  :class:`PrefetcherSpec` describes the predictor declaratively.
* **Graph** (:mod:`repro.engine.graph`) — experiments declare jobs into
  a :class:`JobGraph`, which deduplicates identical work across figures
  (the shared no-prefetcher baselines, for example).
* **Execution** (:mod:`repro.engine.engine` / :mod:`repro.engine.exec`
  / :mod:`repro.engine.fanout`) — the :class:`Engine` satisfies jobs
  from an on-disk result cache, then runs the rest serially (fanning
  one trace walk out to every job sharing a
  :attr:`~repro.engine.job.SimJob.trace_key`) or over a process pool
  (replaying recorded traces from a
  :class:`~repro.tracestore.TraceStore` when one is attached); results
  are bit-identical across modes because every job is self-contained.

Typical use::

    graph = JobGraph()
    plan = fig9.declare(config, graph)
    engine = Engine(jobs=4, cache_dir=".repro-cache",
                    trace_store=".repro-traces")
    results = engine.run(graph)
    rows = fig9.collect(config, plan, results)
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.engine import Engine, EngineStats, ResultMap
from repro.engine.exec import (
    build_prefetcher,
    execute_job,
    job_trace,
    materialized_trace,
)
from repro.engine.fanout import job_consumer, run_group
from repro.engine.faultinject import FaultPlan
from repro.engine.faults import (
    JobExecutionError,
    JobFailure,
    RetryPolicy,
    RunInterrupted,
)
from repro.engine.graph import JobGraph
from repro.engine.journal import (
    GracefulShutdown,
    RunJournal,
    RunRecord,
    find_run,
    job_from_description,
    list_runs,
    load_run,
    runs_root,
)
from repro.engine.job import (
    JOB_KINDS,
    KIND_CORRELATION,
    KIND_COVERAGE,
    KIND_JOINT,
    KIND_REPETITION,
    KIND_TIMING,
    PrefetcherSpec,
    SimJob,
)

__all__ = [
    "CacheStats",
    "Engine",
    "EngineStats",
    "FaultPlan",
    "GracefulShutdown",
    "JobExecutionError",
    "JobFailure",
    "JobGraph",
    "RunInterrupted",
    "RunJournal",
    "RunRecord",
    "JOB_KINDS",
    "KIND_CORRELATION",
    "KIND_COVERAGE",
    "KIND_JOINT",
    "KIND_REPETITION",
    "KIND_TIMING",
    "PrefetcherSpec",
    "ResultCache",
    "ResultMap",
    "RetryPolicy",
    "SimJob",
    "build_prefetcher",
    "execute_job",
    "find_run",
    "job_consumer",
    "job_from_description",
    "job_trace",
    "list_runs",
    "load_run",
    "materialized_trace",
    "run_group",
    "runs_root",
]
