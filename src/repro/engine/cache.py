"""On-disk result cache keyed by job content hash.

One JSON file per job under the cache directory, written atomically,
holding the job's canonical description (for provenance / debugging) and
its encoded result. Because the key is the job's *content* hash, a cache
survives across processes, figure selections and invocation order — any
experiment that re-declares an already-simulated point gets the stored
result back instead of a re-simulation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Optional, Union

from repro import __version__ as _PACKAGE_VERSION
from repro.engine.job import SimJob
from repro.sim.export import decode_result, encode_result

#: bumped when the result encoding changes incompatibly
CACHE_VERSION = 1


class ResultCache:
    """JSON file-per-job store under ``directory``."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, job: SimJob) -> Path:
        return self.directory / f"{job.job_hash}.json"

    def load(self, job: SimJob) -> Optional[Any]:
        """The cached result for ``job``, or None on miss/corruption."""
        path = self.path_for(job)
        try:
            with path.open() as handle:
                document = json.load(handle)
            if document.get("version") != CACHE_VERSION:
                return None
            # the job hash keys the *inputs*; the package version is the
            # coarse guard against serving results simulated by older code
            if document.get("repro") != _PACKAGE_VERSION:
                return None
            if document.get("kind") != job.kind:
                return None
            return decode_result(document["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, job: SimJob, result: Any) -> Path:
        """Persist ``result`` for ``job`` (atomic rename)."""
        path = self.path_for(job)
        document = {
            "version": CACHE_VERSION,
            "repro": _PACKAGE_VERSION,
            "kind": job.kind,
            "job": job.describe(),
            "result": encode_result(result),
        }
        tmp = path.with_suffix(".tmp")
        # no default=: an unencodable value must fail loudly here, not be
        # stringified into a cache entry that decodes to a different type
        with tmp.open("w") as handle:
            json.dump(document, handle)
        os.replace(tmp, path)
        return path
