"""On-disk result cache keyed by job content hash.

One JSON file per job under the cache directory, written atomically,
holding the job's canonical description (for provenance / debugging) and
its encoded result. Because the key is the job's *content* hash, a cache
survives across processes, figure selections and invocation order — any
experiment that re-declares an already-simulated point gets the stored
result back instead of a re-simulation.

Entries are sharded into two-hex-character subdirectories
(``ab/abcdef….json``) so million-job sweeps never pile every file into
one flat directory. Caches written by older versions (flat layout) are
migrated transparently: a flat entry found on lookup is moved into its
shard before being served.

An optional sqlite index (``index=True``) maintains an ``index.sqlite``
catalog of ``(hash, kind, workload)`` rows alongside the files. Lookups
never need it — the sharded path is computed from the hash — and it only
catalogs entries stored *through an index-enabled handle*; it exists so
huge sweeps can enumerate what they stored without walking 256 shard
directories, not as the source of truth (``entry_count()`` always counts
the files themselves).
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional, Union

from repro import __version__ as _PACKAGE_VERSION
from repro.engine.faultinject import maybe_corrupt_cache
from repro.engine.faults import quarantine_file
from repro.engine.job import SimJob
from repro.sim.export import decode_result, encode_result

#: bumped when the result encoding changes incompatibly
CACHE_VERSION = 1


@dataclass
class CacheStats:
    """Degradation accounting for one cache handle.

    A *corrupt* entry is a shard that exists but cannot be parsed or
    decoded — it is warned about, quarantined, and treated as a miss
    (the job re-executes transparently). Stale entries (version or kind
    mismatch) are ordinary misses and are not counted here.
    """

    corrupt: int = 0
    quarantined: int = 0

    def as_dict(self) -> "dict[str, int]":
        return {"corrupt": self.corrupt, "quarantined": self.quarantined}


class ResultCache:
    """Sharded JSON file-per-job store under ``directory``.

    Args:
        directory: cache root; created if missing.
        index: also maintain the optional sqlite catalog of stored
            entries (best-effort: an unwritable or corrupt index never
            fails a store/load).
    """

    def __init__(self, directory: Union[str, Path], index: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._index_db: Optional[sqlite3.Connection] = None
        if index:
            try:
                self._index_db = sqlite3.connect(self.directory / "index.sqlite")
                self._index_db.execute(
                    "CREATE TABLE IF NOT EXISTS results ("
                    " hash TEXT PRIMARY KEY,"
                    " kind TEXT NOT NULL,"
                    " workload TEXT NOT NULL)"
                )
                self._index_db.commit()
            except sqlite3.Error:
                self._index_db = None  # accelerator only, never a failure

    def path_for(self, job: SimJob) -> Path:
        """The sharded entry path (``ab/abcdef….json``) for ``job``."""
        job_hash = job.job_hash
        return self.directory / job_hash[:2] / f"{job_hash}.json"

    def _legacy_path_for(self, job: SimJob) -> Path:
        """Where a pre-sharding cache would have stored ``job``."""
        return self.directory / f"{job.job_hash}.json"

    def _migrate_legacy(self, job: SimJob, path: Path) -> Path:
        """Move a flat-layout entry into its shard, if one exists.

        Returns:
            The path to read: the sharded ``path`` after a successful
            (or unneeded) migration, or the flat entry itself when the
            cache is read-only — a legacy entry is served either way.
        """
        legacy = self._legacy_path_for(job)
        if not legacy.is_file():
            return path
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, path)
        except OSError:
            # racing migrator already moved it, or read-only cache:
            # serve whichever of the two locations holds the entry
            return path if path.is_file() else legacy
        return path

    def load(self, job: SimJob) -> Optional[Any]:
        """The cached result for ``job``, or None on a miss.

        Three distinct None paths: the entry doesn't exist (plain
        miss), it is *stale* (version/kind guard — also a plain miss),
        or it is *corrupt* (unparseable/undecodable shard). Corruption
        is never silent: the shard is quarantined with a reason file, a
        one-line warning goes to stderr, and ``stats.corrupt`` counts
        it — the caller just sees a miss and re-executes the job.
        """
        path = self.path_for(job)
        if not path.is_file():
            path = self._migrate_legacy(job, path)
        try:
            with path.open() as handle:
                document = json.load(handle)
        except FileNotFoundError:
            return None
        except OSError:
            return None  # unreadable (permissions?) — treat as a miss
        except ValueError as error:
            self._reject_corrupt(job, path, f"bad JSON: {error}")
            return None
        if document.get("version") != CACHE_VERSION:
            return None
        # the job hash keys the *inputs*; the package version is the
        # coarse guard against serving results simulated by older code
        if document.get("repro") != _PACKAGE_VERSION:
            return None
        if document.get("kind") != job.kind:
            return None
        try:
            return decode_result(document["result"])
        except (ValueError, KeyError, TypeError) as error:
            self._reject_corrupt(
                job, path, f"undecodable result: {type(error).__name__}: {error}"
            )
            return None

    def _reject_corrupt(self, job: SimJob, path: Path, reason: str) -> None:
        """Warn, count, and quarantine one corrupt shard (never raises)."""
        self.stats.corrupt += 1
        moved = quarantine_file(
            path, self.directory, f"job {job.job_hash}: {reason}"
        )
        if moved is not None:
            self.stats.quarantined += 1
        print(
            f"[cache: corrupt entry for {job.label()} ({reason}); "
            + (f"quarantined to {moved}" if moved else "already removed")
            + ", re-executing]",
            file=sys.stderr,
        )

    def store(self, job: SimJob, result: Any) -> Path:
        """Persist ``result`` for ``job`` (atomic rename)."""
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "version": CACHE_VERSION,
            "repro": _PACKAGE_VERSION,
            "kind": job.kind,
            "job": job.describe(),
            "result": encode_result(result),
        }
        # pid-unique tmp: concurrent processes sharing a cache dir must
        # not interleave writes into one tmp file (last rename wins, and
        # the content is identical either way)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        # no default=: an unencodable value must fail loudly here, not be
        # stringified into a cache entry that decodes to a different type
        with tmp.open("w") as handle:
            json.dump(document, handle)
        os.replace(tmp, path)
        maybe_corrupt_cache(path)
        self._index_store(job)
        return path

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the sqlite catalog connection (idempotent).

        File entries need no teardown; only the optional index holds an
        OS handle. Long-running sweeps that open many caches should
        close them (or use the cache as a context manager) rather than
        rely on garbage collection.
        """
        if self._index_db is not None:
            try:
                self._index_db.close()
            except sqlite3.Error:
                pass
            self._index_db = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- optional sqlite catalog -------------------------------------------

    def _index_store(self, job: SimJob) -> None:
        if self._index_db is None:
            return
        try:
            with self._index_db:
                self._index_db.execute(
                    "INSERT OR REPLACE INTO results (hash, kind, workload) "
                    "VALUES (?, ?, ?)",
                    (job.job_hash, job.kind, job.workload),
                )
        except sqlite3.Error:
            pass  # the index is an accelerator, never a failure mode

    def indexed_hashes(self) -> Iterator[str]:
        """Job hashes this handle's sqlite catalog recorded (empty when
        the index is disabled). Enumeration only — entries stored by
        non-indexed handles are on disk but not in the catalog."""
        if self._index_db is None:
            return iter(())
        try:
            rows = self._index_db.execute(
                "SELECT hash FROM results ORDER BY hash"
            )
            return iter([row[0] for row in rows])
        except sqlite3.Error:
            return iter(())

    def entry_count(self) -> int:
        """Entries on disk: sharded plus not-yet-migrated flat ones.

        Always counts the files (the source of truth) rather than the
        optional catalog, which only sees index-enabled stores.
        """
        sharded = sum(1 for _ in self.directory.glob("??/*.json"))
        flat = sum(1 for _ in self.directory.glob("*.json"))
        return sharded + flat

    def entries(self) -> Iterator[Path]:
        """Every entry file on disk (sharded first, then legacy flat)."""
        yield from sorted(self.directory.glob("??/*.json"))
        yield from sorted(self.directory.glob("*.json"))


def inspect_shard(path: Union[str, Path]) -> "tuple[str, str]":
    """Offline structural verdict on one cache shard (``repro-fsck``).

    Unlike :meth:`ResultCache.load` this needs no :class:`SimJob` — it
    checks what can be checked from the file alone: JSON parses, the
    document shape is right, the filename matches the recorded job
    hash, and the encoded result decodes.

    Returns:
        ``(status, detail)`` where status is ``"ok"`` (fully valid),
        ``"stale"`` (valid but written by another cache/package version
        — a quiet miss at runtime, not damage), or ``"corrupt"``.
    """
    path = Path(path)
    try:
        with path.open() as handle:
            document = json.load(handle)
    except OSError as error:
        return "corrupt", f"unreadable: {error}"
    except ValueError as error:
        return "corrupt", f"bad JSON: {error}"
    if not isinstance(document, dict):
        return "corrupt", "document is not an object"
    for field in ("version", "kind", "job", "result"):
        if field not in document:
            return "corrupt", f"missing field {field!r}"
    job = document["job"]
    if isinstance(job, dict):
        payload = json.dumps(job, sort_keys=True).encode()
        import hashlib

        digest = hashlib.sha256(payload).hexdigest()
        if path.stem != digest:
            return "corrupt", (
                f"filename/job-hash mismatch (content hashes to "
                f"{digest[:12]}…)"
            )
    else:
        return "corrupt", "job description is not an object"
    try:
        decode_result(document["result"])
    except (ValueError, KeyError, TypeError) as error:
        return "corrupt", (
            f"undecodable result: {type(error).__name__}: {error}"
        )
    if (document.get("version") != CACHE_VERSION
            or document.get("repro") != _PACKAGE_VERSION):
        return "stale", (
            f"written by cache v{document.get('version')} / "
            f"repro {document.get('repro')}"
        )
    return "ok", ""
