"""Multi-consumer fan-out: one trace walk feeds many jobs at once.

Jobs that share a :attr:`~repro.engine.job.SimJob.trace_key` walk the
identical generated access sequence, so running them one after another
regenerates (or re-reads) the same trace N times. This module turns each
job into an incremental *consumer* — ``update(access)`` per record,
``finalize()`` for the result — and pumps a single
:class:`~repro.trace.container.TraceSource` pass through all of them.

Every consumer owns completely independent simulation state (its own
hierarchy, SVB, predictor, analysis tables), exactly as a solo
:func:`~repro.engine.exec.execute_job` run would, and the driver's
pushed ``step`` closure is the same code the pulled ``run()`` loop
executes — so fanned-out results are bit-identical to per-job execution.
The engine uses this for serial runs; parallel workers instead replay a
recorded trace from the :class:`~repro.tracestore.TraceStore`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.engine.exec import (
    analysis_for_job,
    build_prefetcher,
    timing_model_for_job,
)
from repro.engine.faultinject import maybe_fail_job
from repro.engine.job import KIND_COVERAGE, KIND_TIMING, SimJob
from repro.kernels import KERNEL_VECTOR, resolve_kernel
from repro.kernels.prepass import iter_trace_chunks
from repro.sim.driver import SimulationDriver
from repro.telemetry import PHASE_FINALIZE, PHASE_WALK, phases_active
from repro.trace.events import MemoryAccess


class _DriverConsumer:
    """Push-mode coverage run: a driver walk fed one access at a time
    (``update``) or one precomputed chunk at a time (``update_block``)."""

    __slots__ = ("_walk", "update", "update_block")

    def __init__(self, job: SimJob, driver: SimulationDriver) -> None:
        self._walk = driver.start(job.workload)
        shift = job.system.address_map.block_bits
        step = self._walk.step
        self.update = lambda access: step(access, access.address >> shift)
        self.update_block = self._walk.step_chunk

    def finalize(self) -> Any:
        return self._walk.finish()


class _TimingConsumer(_DriverConsumer):
    """Coverage walk feeding the incremental timing model; the timing
    result is the job's payload, the coverage accounting is discarded
    (same as the solo timing path)."""

    __slots__ = ("_model",)

    def __init__(self, job: SimJob, driver: SimulationDriver, model) -> None:
        super().__init__(job, driver)
        self._model = model

    def finalize(self) -> Any:
        self._walk.finish()
        return self._model.finalize()


def job_consumer(job: SimJob) -> Any:
    """An ``update(access)`` / ``finalize()`` consumer executing ``job``.

    Analysis jobs are :class:`~repro.analysis.base.StreamingAnalysis`
    instances already; coverage and timing jobs wrap a pushed
    :class:`~repro.sim.driver.DriverWalk`.
    """
    if job.kind == KIND_COVERAGE:
        prefetcher = build_prefetcher(job.prefetcher, job.workload)
        return _DriverConsumer(job, SimulationDriver(job.system, prefetcher))
    if job.kind == KIND_TIMING:
        prefetcher = build_prefetcher(job.prefetcher, job.workload)
        model = timing_model_for_job(job)
        driver = SimulationDriver(
            job.system, prefetcher, service_consumer=model
        )
        return _TimingConsumer(job, driver, model)
    return analysis_for_job(job)


def run_group(
    jobs: Sequence[SimJob],
    accesses: Iterable[MemoryAccess],
    kernel: Optional[str] = None,
) -> List[Tuple[SimJob, Any]]:
    """Execute every job in ``jobs`` from one shared pass over ``accesses``.

    Args:
        jobs: jobs sharing a trace key (any kinds may mix).
        accesses: a single-iteration access stream for that key — a
            ``TraceSource``, a store replay, or a record-during-walk
            generator.
        kernel: trace-walk kernel. The vector kernel pumps the stream
            chunk-at-a-time: each chunk's pre-pass (block ids) is
            computed once and every consumer's ``update_block`` replays
            it through the same per-access closures the python pump
            calls — bit-identical results, one chunk decode shared by
            the whole group.

    Returns:
        ``(job, result)`` pairs in ``jobs`` order, each result
        bit-identical to a solo ``execute_job`` run.
    """
    # per-job injection point (attempt 1): grouped jobs must see the same
    # injected faults a solo execute_job would, so the engine's
    # group→isolation degradation actually gets exercised
    for job in jobs:
        maybe_fail_job(job.job_hash, 1)
    consumers = [job_consumer(job) for job in jobs]
    # ``walk_step`` phase accounting: the vector pump times the
    # consumer updates per chunk (chunk decode is accounted separately
    # inside decode_chunk; the pre-pass columns, computed lazily inside
    # a chunk's first update, nest under walk_step as well as prepass);
    # the python pump times the whole record loop, which includes trace
    # production — per-record timer calls would dwarf the walk itself
    timer = phases_active()
    if resolve_kernel(kernel) == KERNEL_VECTOR:
        if timer is not None:
            chunk_updates = [c.update_block for c in consumers]
            for chunk in iter_trace_chunks(accesses):
                start = perf_counter()
                for update_block in chunk_updates:
                    update_block(chunk)
                timer.add(PHASE_WALK, perf_counter() - start)
        elif len(consumers) == 1:
            update_block = consumers[0].update_block
            for chunk in iter_trace_chunks(accesses):
                update_block(chunk)
        else:
            chunk_updates = [c.update_block for c in consumers]
            for chunk in iter_trace_chunks(accesses):
                for update_block in chunk_updates:
                    update_block(chunk)
    elif len(consumers) == 1:
        start = perf_counter() if timer is not None else 0.0
        update = consumers[0].update
        for access in accesses:
            update(access)
        if timer is not None:
            timer.add(PHASE_WALK, perf_counter() - start)
    else:
        start = perf_counter() if timer is not None else 0.0
        updates = [consumer.update for consumer in consumers]
        for access in accesses:
            for update in updates:
                update(access)
        if timer is not None:
            timer.add(PHASE_WALK, perf_counter() - start)
    if timer is None:
        return [
            (job, consumer.finalize())
            for job, consumer in zip(jobs, consumers)
        ]
    start = perf_counter()
    results = [
        (job, consumer.finalize())
        for job, consumer in zip(jobs, consumers)
    ]
    timer.add(PHASE_FINALIZE, perf_counter() - start, calls=len(results))
    return results
