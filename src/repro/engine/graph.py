"""Deduplicating job graph.

Experiment modules *declare* the simulations they need into a shared
:class:`JobGraph` instead of running loops; identical jobs (same content
hash) collapse to one node. Running ``all`` therefore simulates each
``(workload, predictor, system)`` point exactly once even though e.g.
fig9, hybrid, sensitivity and baselines all want the same no-prefetcher
baseline run.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.engine.job import SimJob


class JobGraph:
    """An insertion-ordered set of :class:`SimJob` nodes keyed by hash.

    Experiments declare into a shared graph; the graph collapses
    duplicates so the engine simulates each distinct point exactly once.
    """

    def __init__(self) -> None:
        self._jobs: Dict[str, SimJob] = {}
        #: total add() calls, including duplicates that were collapsed
        self.requested = 0

    def add(self, job: SimJob) -> SimJob:
        """Insert ``job``, collapsing duplicates by content hash.

        Args:
            job: the job description to declare.

        Returns:
            The canonical (first-added) instance for this content hash —
            hold on to it to index the engine's result map later.
        """
        self.requested += 1
        return self._jobs.setdefault(job.job_hash, job)

    @property
    def jobs(self) -> Tuple[SimJob, ...]:
        return tuple(self._jobs.values())

    @property
    def deduplicated(self) -> int:
        """How many add() calls were satisfied by an existing node."""
        return self.requested - len(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[SimJob]:
        return iter(self._jobs.values())

    def __contains__(self, job: SimJob) -> bool:
        return job.job_hash in self._jobs
