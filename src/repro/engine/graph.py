"""Deduplicating job graph.

Experiment modules *declare* the simulations they need into a shared
:class:`JobGraph` instead of running loops; identical jobs (same content
hash) collapse to one node. Running ``all`` therefore simulates each
``(workload, predictor, system)`` point exactly once even though e.g.
fig9, hybrid, sensitivity and baselines all want the same no-prefetcher
baseline run.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.engine.job import SimJob


class JobGraph:
    """An insertion-ordered set of :class:`SimJob` nodes keyed by hash."""

    def __init__(self) -> None:
        self._jobs: Dict[str, SimJob] = {}
        #: total add() calls, including duplicates that were collapsed
        self.requested = 0

    def add(self, job: SimJob) -> SimJob:
        """Insert ``job``, returning the canonical (first-added) instance."""
        self.requested += 1
        return self._jobs.setdefault(job.job_hash, job)

    @property
    def jobs(self) -> Tuple[SimJob, ...]:
        return tuple(self._jobs.values())

    @property
    def deduplicated(self) -> int:
        """How many add() calls were satisfied by an existing node."""
        return self.requested - len(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[SimJob]:
        return iter(self._jobs.values())

    def __contains__(self, job: SimJob) -> bool:
        return job.job_hash in self._jobs
