"""The execution engine: runs a job graph serially or across processes.

The engine is the single place simulations happen. It takes a
deduplicated :class:`JobGraph`, satisfies what it can from the on-disk
:class:`ResultCache`, executes the remainder — inline, or fanned out over
a ``ProcessPoolExecutor`` when ``jobs > 1`` — and returns a
:class:`ResultMap` from job (hash) to result. ``stats`` counts scheduled
vs deduplicated vs cache-satisfied vs executed jobs so callers can
surface exactly how much work a run performed (a fully cached invocation
reports ``executed=0``).

Trace generation is scheduled as a shared resource (the *trace plane*):

* **Serial** runs group pending jobs by
  :attr:`~repro.engine.job.SimJob.trace_key` and pump one trace walk
  through every consumer in the group (:mod:`repro.engine.fanout`) — a
  sweep of N jobs over one key performs exactly one generation pass.
* With a :class:`~repro.tracestore.TraceStore` attached
  (``trace_store=DIR`` / ``--trace-store``), that one pass is also
  recorded to disk, and **parallel** workers replay the recorded trace
  instead of regenerating it per job — at most one generation plus N
  replays for N jobs over one key, across any number of invocations.

Results are bit-identical across every mode; only the trace-plane
accounting in :class:`EngineStats` differs.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.engine.cache import ResultCache
from repro.engine.exec import (
    default_materialize,
    execute_job,
    execute_job_for_pool,
    record_trace_for_pool,
)
from repro.engine.fanout import run_group
from repro.engine.graph import JobGraph
from repro.engine.job import SimJob
from repro.tracestore import TraceStore
from repro.workloads.registry import stream_workload


@dataclass
class EngineStats:
    """Work accounting for one engine (accumulated across run() calls).

    Beyond the job counters, the trace-plane counters expose how much
    generation work the fan-out scheduler and trace store avoided:
    ``generation_passes`` counts actual workload-generator walks,
    ``passes_saved`` counts executed jobs that did *not* need their own
    generation pass (fed by fan-out or a store replay), and
    ``store_hits`` / ``store_misses`` / ``bytes_replayed`` account the
    trace store itself. The materialize compatibility mode bypasses the
    trace plane, so these stay zero there.
    """

    requested: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    executed: int = 0
    generation_passes: int = 0
    passes_saved: int = 0
    store_hits: int = 0
    store_misses: int = 0
    bytes_replayed: int = 0

    def absorb_trace_stats(self, delta: Dict[str, int]) -> None:
        """Fold a trace-store accounting delta (worker or store handle) in."""
        self.store_hits += delta.get("hits", 0)
        self.store_misses += delta.get("misses", 0)
        self.generation_passes += delta.get("generated", 0)
        self.bytes_replayed += delta.get("bytes_replayed", 0)

    def format(self) -> str:
        unique = self.requested - self.deduplicated
        text = (
            f"engine: {self.requested} jobs requested, "
            f"{self.deduplicated} deduplicated, {unique} unique, "
            f"{self.cache_hits} cache hits, {self.executed} simulated; "
            f"traces: {self.generation_passes} generated, "
            f"{self.passes_saved} passes saved"
        )
        if self.store_hits or self.store_misses or self.bytes_replayed:
            text += (
                f", store {self.store_hits} hits / "
                f"{self.store_misses} misses, "
                f"{self.bytes_replayed} bytes replayed"
            )
        return text


class ResultMap(Dict[str, Any]):
    """Results keyed by job hash; also indexable directly by job."""

    def __getitem__(self, key: Union[str, SimJob]) -> Any:
        if isinstance(key, SimJob):
            key = key.job_hash
        return super().__getitem__(key)

    def get(self, key: Union[str, SimJob], default: Any = None) -> Any:
        if isinstance(key, SimJob):
            key = key.job_hash
        return super().get(key, default)


class Engine:
    """Executes job graphs with optional parallelism and disk caching.

    Args:
        jobs: worker processes for simulation jobs (1 = serial/inline).
        cache_dir: on-disk result cache directory, or None to disable.
        use_cache: set False to neither read nor write ``cache_dir``.
        materialize: compatibility flag — True generates each job's trace
            into memory (per-process memo) instead of streaming it;
            results are bit-identical either way, but streaming keeps
            peak memory independent of trace length. None defers to the
            ``REPRO_MATERIALIZE`` environment variable.
        trace_store: directory (or :class:`TraceStore`) for the shared
            trace plane — traces are recorded once and replayed by every
            job and worker that shares the trace key. None keeps traces
            in-process only (serial fan-out still shares walks).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        materialize: Optional[bool] = None,
        trace_store: Optional[Union[str, Path, TraceStore]] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if (cache_dir and use_cache) else None
        )
        self.materialize = materialize
        if trace_store is not None and not isinstance(trace_store, TraceStore):
            trace_store = TraceStore(trace_store)
        self.trace_store: Optional[TraceStore] = trace_store
        self.stats = EngineStats()

    def run(self, graph: JobGraph) -> ResultMap:
        """Execute every job in ``graph``.

        Args:
            graph: the deduplicated set of jobs to satisfy.

        Returns:
            A :class:`ResultMap` from job hash (or job) to result,
            covering every job in the graph.
        """
        self.stats.requested += graph.requested
        self.stats.deduplicated += graph.deduplicated
        results = ResultMap()
        pending = []
        for job in graph:
            cached = self.cache.load(job) if self.cache else None
            if cached is not None:
                self.stats.cache_hits += 1
                results[job.job_hash] = cached
            else:
                pending.append(job)
        if pending:
            for job, result in self._execute(pending):
                results[job.job_hash] = result
                self.stats.executed += 1
                if self.cache is not None:
                    self.cache.store(job, result)
        return results

    def _execute(self, pending: "list[SimJob]") -> Iterable["tuple[SimJob, Any]"]:
        materialize = (
            self.materialize
            if self.materialize is not None
            else default_materialize()
        )
        if self.jobs > 1 and len(pending) > 1:
            yield from self._execute_parallel(pending, materialize)
        else:
            yield from self._execute_serial(pending, materialize)

    # -- serial: fan one trace walk out to every job sharing its key -------

    def _execute_serial(
        self, pending: "list[SimJob]", materialize: bool
    ) -> Iterable["tuple[SimJob, Any]"]:
        if materialize:
            # compatibility mode: the per-process trace memo already
            # shares generation; bypass the trace plane entirely
            for job in pending:
                yield job, execute_job(job, True)
            return
        stats = self.stats
        for key, group in _grouped_by_trace_key(pending).items():
            accesses, generated = self._serial_pass(key)
            stats.generation_passes += generated
            stats.passes_saved += len(group) - generated
            yield from run_group(group, accesses)

    def _serial_pass(self, key) -> "tuple[Iterable, int]":
        """One access pass for ``key`` plus its generation-pass cost.

        With a store: replay a recorded entry (cost 0) or record during
        the walk (cost 1, and the entry is published for later runs and
        workers). Without: a plain generation pass (cost 1).
        """
        store = self.trace_store
        if store is None:
            return stream_workload(*key), 1
        before = store.stats.as_dict()
        source = store.source(key)
        generated = 0 if store.stats.hits > before["hits"] else 1
        # fold replay/recording accounting in after the walk completes,
        # so bytes_replayed from the lazy iteration are captured
        return _accounted(source, store, before, self.stats, generated), generated

    # -- parallel: record once, replay per worker ---------------------------

    def _execute_parallel(
        self, pending: "list[SimJob]", materialize: bool
    ) -> Iterable["tuple[SimJob, Any]"]:
        # group-by-trace scheduling: keep jobs that share a trace
        # adjacent so reused pool workers hit their trace memo
        # (materialize mode) or the store's OS page cache (replay)
        ordered = sorted(pending, key=lambda j: (j.trace_key, j.job_hash))
        by_hash = {job.job_hash: job for job in ordered}
        store = self.trace_store
        store_dir: Optional[str] = None
        if store is not None and not materialize:
            store_dir = str(store.directory)
        workers = min(self.jobs, len(ordered))
        run_job = partial(
            execute_job_for_pool,
            materialize=self.materialize,
            trace_store_dir=store_dir,
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if store_dir is not None:
                # record each distinct missing trace exactly once, fanned
                # across the pool, before any job runs — jobs then replay
                missing = [
                    key
                    for key in OrderedDict.fromkeys(
                        job.trace_key for job in ordered
                    )
                    if not store.has(key)
                ]
                record = partial(record_trace_for_pool, store_dir)
                for delta in pool.map(record, missing):
                    self.stats.absorb_trace_stats(delta)
            for job_hash, result, delta in pool.map(run_job, ordered, chunksize=1):
                self.stats.absorb_trace_stats(delta)
                if not materialize:
                    self.stats.passes_saved += 1 - delta.get("generated", 0)
                yield by_hash[job_hash], result

    def report(self, stream=sys.stderr) -> None:
        print(f"[{self.stats.format()}]", file=stream)


def _grouped_by_trace_key(
    pending: "list[SimJob]",
) -> "OrderedDict[tuple, List[SimJob]]":
    groups: "OrderedDict[tuple, List[SimJob]]" = OrderedDict()
    for job in pending:
        groups.setdefault(job.trace_key, []).append(job)
    return groups


def _stats_delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    return {name: after[name] - before[name] for name in after}


def _accounted(source, store: TraceStore, before: Dict[str, int],
               stats: EngineStats, generated: int):
    """Iterate ``source`` once, then fold the store's accounting delta
    (minus the generation passes the engine already counted) into
    ``stats``."""
    yield from source
    delta = _stats_delta(store.stats.as_dict(), before)
    delta["generated"] -= generated
    stats.absorb_trace_stats(delta)
