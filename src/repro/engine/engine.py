"""The execution engine: runs a job graph serially or across processes.

The engine is the single place simulations happen. It takes a
deduplicated :class:`JobGraph`, satisfies what it can from the on-disk
:class:`ResultCache`, executes the remainder — inline, or fanned out over
a ``ProcessPoolExecutor`` when ``jobs > 1`` — and returns a
:class:`ResultMap` from job (hash) to result. ``stats`` counts scheduled
vs deduplicated vs cache-satisfied vs executed jobs so callers can
surface exactly how much work a run performed (a fully cached invocation
reports ``executed=0``).

Trace generation is scheduled as a shared resource (the *trace plane*):

* **Serial** runs group pending jobs by
  :attr:`~repro.engine.job.SimJob.trace_key` and pump one trace walk
  through every consumer in the group (:mod:`repro.engine.fanout`) — a
  sweep of N jobs over one key performs exactly one generation pass.
* With a :class:`~repro.tracestore.TraceStore` attached
  (``trace_store=DIR`` / ``--trace-store``), that one pass is also
  recorded to disk, and **parallel** workers replay the recorded trace
  instead of regenerating it per job — at most one generation plus N
  replays for N jobs over one key, across any number of invocations.
* With both (``jobs > 1`` **and** a store), the replays collapse too:
  jobs sharing a trace key run as a **broadcast wave** — one reader
  process walks the key and tees every chunk to the consumers over a
  shared-memory ring (:mod:`repro.tracestore.broadcast`), so an N-job
  sweep over one key costs exactly one trace walk total. See the
  ``broadcast`` argument (``--broadcast`` / ``REPRO_BROADCAST``).

Execution is **fault-tolerant** (:mod:`repro.engine.faults`): every job
runs under a :class:`RetryPolicy` (attempts, deterministic-jitter
backoff, per-job wall-clock timeout), a dead worker breaks only the
jobs that were in flight (the pool is respawned and they are requeued;
finished results are kept), corrupt trace/cache entries are quarantined
and regenerated, and each recovery has an explicit degradation ladder:
replay → regeneration, fan-out group → per-job isolation, parallel →
serial. A job that exhausts its retries surfaces as a structured
:class:`~repro.engine.faults.JobFailure` in the :class:`ResultMap`
(``strict=True`` raises :class:`~repro.engine.faults.JobExecutionError`
instead); everything else keeps running.

Results are bit-identical across every mode — including runs degraded
by injected or real faults; only the accounting in :class:`EngineStats`
differs.
"""

from __future__ import annotations

import sys
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.engine.cache import ResultCache
from repro.engine.exec import (
    default_materialize,
    execute_job,
    execute_jobs_broadcast,
    execute_job_for_pool,
    record_trace_for_pool,
)
from repro.engine.fanout import run_group
from repro.engine.faultinject import active_plan, maybe_kill_run
from repro.engine.faults import (
    AttemptLog,
    JobExecutionError,
    JobFailure,
    RetryPolicy,
    RunInterrupted,
)
from repro.engine.graph import JobGraph
from repro.engine.job import SimJob
from repro.kernels import resolve_kernel
from repro.telemetry import MetricsRegistry, RunTelemetry, process_registry
from repro.tracestore import TraceStore
from repro.tracestore.broadcast import (
    MODE_OFF,
    MODE_ON,
    broadcast_supported,
    resolve_broadcast,
)
from repro.workloads.registry import stream_workload


#: the legacy stat names, in their historical (display) order
_STAT_FIELDS = (
    "requested", "deduplicated", "cache_hits", "executed",
    "generation_passes", "passes_saved", "store_hits", "store_misses",
    "bytes_replayed", "broadcast_waves", "broadcast_chunks",
    "bytes_shared", "broadcast_fallbacks", "retries", "requeued",
    "timeouts", "pool_respawns", "quarantined", "cache_corrupt",
    "replay_fallbacks", "isolation_fallbacks", "serial_fallbacks",
    "failures",
)


class EngineStats:
    """Work accounting for one engine (accumulated across run() calls).

    Beyond the job counters, the trace-plane counters expose how much
    generation work the fan-out scheduler and trace store avoided:
    ``generation_passes`` counts actual workload-generator walks,
    ``passes_saved`` counts executed jobs that did *not* need their own
    generation pass (fed by fan-out or a store replay), and
    ``store_hits`` / ``store_misses`` / ``bytes_replayed`` account the
    trace store itself. The materialize compatibility mode bypasses the
    trace plane, so these stay zero there.

    The broadcast counters account the shared-memory fan-out plane:
    ``broadcast_waves`` counts trace-key groups served by one reader
    process, ``broadcast_chunks`` / ``bytes_shared`` count chunk
    payloads consumers decoded straight from shared memory (summed over
    consumers — one 10-chunk wave with 4 consumers shares 40 chunks),
    and ``broadcast_fallbacks`` counts consumers that degraded to an
    independent replay mid-stream (a fault counter: it trips
    ``degraded``).

    The fault-plane counters account recovery work: ``retries`` (extra
    attempts scheduled after a failure), ``requeued`` (in-flight jobs
    resubmitted after a pool death or timeout kill through no fault of
    their own), ``timeouts``, ``pool_respawns``, ``quarantined``
    (damaged trace entries and cache shards moved aside),
    ``cache_corrupt`` (corrupt cache shards detected),
    ``replay_fallbacks`` (store replays degraded to regeneration),
    ``isolation_fallbacks`` (fan-out groups degraded to per-job
    execution), ``serial_fallbacks`` (parallel batches degraded to the
    serial path), and ``failures`` (jobs that exhausted every retry).
    A clean run keeps all of them at zero.

    Since the telemetry plane landed, this class is a **view** over a
    :class:`~repro.telemetry.MetricsRegistry` rather than its own
    counter soup: each stat reads/writes the ``engine.<name>`` counter
    of the backing registry (the engine's :attr:`~Engine.telemetry`
    registry), so the legacy one-liner and ``metrics.json`` can never
    disagree. The attribute API — read, assign, ``+=`` — is unchanged.
    """

    __slots__ = ("registry",)

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 **initial: int) -> None:
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        for name, value in initial.items():
            if name not in _STAT_FIELDS:
                raise TypeError(f"unknown engine stat {name!r}")
            setattr(self, name, value)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _STAT_FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name in _STAT_FIELDS
        )
        return f"EngineStats({fields})"

    def absorb_trace_stats(self, delta: Dict[str, int]) -> None:
        """Fold a trace-store accounting delta (worker or store handle) in."""
        self.store_hits += delta.get("hits", 0)
        self.store_misses += delta.get("misses", 0)
        self.generation_passes += delta.get("generated", 0)
        self.bytes_replayed += delta.get("bytes_replayed", 0)
        self.quarantined += delta.get("quarantined", 0)
        self.replay_fallbacks += delta.get("replay_fallbacks", 0)

    @property
    def degraded(self) -> bool:
        """True when any recovery path fired (the exit-code-1 signal)."""
        return bool(
            self.retries or self.requeued or self.timeouts
            or self.pool_respawns or self.quarantined or self.cache_corrupt
            or self.replay_fallbacks or self.isolation_fallbacks
            or self.serial_fallbacks or self.broadcast_fallbacks
            or self.failures
        )

    def format(self) -> str:
        unique = self.requested - self.deduplicated
        text = (
            f"engine: {self.requested} jobs requested, "
            f"{self.deduplicated} deduplicated, {unique} unique, "
            f"{self.cache_hits} cache hits, {self.executed} simulated; "
            f"traces: {self.generation_passes} generated, "
            f"{self.passes_saved} passes saved"
        )
        if self.store_hits or self.store_misses or self.bytes_replayed:
            text += (
                f", store {self.store_hits} hits / "
                f"{self.store_misses} misses, "
                f"{self.bytes_replayed} bytes replayed"
            )
        if self.broadcast_waves:
            text += (
                f", broadcast {self.broadcast_waves} waves / "
                f"{self.broadcast_chunks} chunks / "
                f"{self.bytes_shared} bytes shared"
            )
        if self.degraded:
            parts = [
                f"{value} {name}"
                for name, value in (
                    ("retries", self.retries),
                    ("requeued", self.requeued),
                    ("timeouts", self.timeouts),
                    ("pool respawns", self.pool_respawns),
                    ("quarantined", self.quarantined),
                    ("corrupt cache entries", self.cache_corrupt),
                    ("replay fallbacks", self.replay_fallbacks),
                    ("isolation fallbacks", self.isolation_fallbacks),
                    ("serial fallbacks", self.serial_fallbacks),
                    ("broadcast fallbacks", self.broadcast_fallbacks),
                    ("failed jobs", self.failures),
                )
                if value
            ]
            text += "; faults: " + ", ".join(parts)
        return text


def _stat_view(name: str) -> property:
    """An int attribute backed by the ``engine.<name>`` counter."""
    key = "engine." + name

    def fget(self: EngineStats) -> int:
        return int(self.registry.counter(key))

    def fset(self: EngineStats, value: int) -> None:
        self.registry.set_counter(key, value)

    return property(fget, fset)


for _name in _STAT_FIELDS:
    setattr(EngineStats, _name, _stat_view(_name))
del _name


class ResultMap(Dict[str, Any]):
    """Results keyed by job hash; also indexable directly by job.

    A value is either the job's result dataclass or — when the job
    exhausted its retries under the default non-strict policy — a
    structured :class:`~repro.engine.faults.JobFailure`; use
    :meth:`failures` to enumerate the latter.
    """

    def __getitem__(self, key: Union[str, SimJob]) -> Any:
        if isinstance(key, SimJob):
            key = key.job_hash
        return super().__getitem__(key)

    def get(self, key: Union[str, SimJob], default: Any = None) -> Any:
        if isinstance(key, SimJob):
            key = key.job_hash
        return super().get(key, default)

    def failures(self) -> List[JobFailure]:
        """Every job that degraded to a structured failure, if any."""
        return [v for v in self.values() if isinstance(v, JobFailure)]


class Engine:
    """Executes job graphs with optional parallelism and disk caching.

    Args:
        jobs: worker processes for simulation jobs (1 = serial/inline).
        cache_dir: on-disk result cache directory, or None to disable.
        use_cache: set False to neither read nor write ``cache_dir``.
        materialize: compatibility flag — True generates each job's trace
            into memory (per-process memo) instead of streaming it;
            results are bit-identical either way, but streaming keeps
            peak memory independent of trace length. None defers to the
            ``REPRO_MATERIALIZE`` environment variable.
        trace_store: directory (or :class:`TraceStore`) for the shared
            trace plane — traces are recorded once and replayed by every
            job and worker that shares the trace key. None keeps traces
            in-process only (serial fan-out still shares walks).
        broadcast: shared-memory fan-out mode (``"auto"`` / ``"on"`` /
            ``"off"``). Under ``jobs > 1`` with a trace store attached
            (streaming mode), jobs sharing a trace key consume one
            reader process's walk over a shared-memory chunk ring
            instead of each replaying the store — N jobs over one key
            cost exactly one trace walk. ``auto`` (the default)
            broadcasts whenever the prerequisites hold; ``off`` forces
            independent replay; ``on`` is ``auto`` plus a warning when
            broadcasting is impossible. None defers to the
            ``REPRO_BROADCAST`` environment variable. Results are
            bit-identical in every mode.
        retry: the :class:`~repro.engine.faults.RetryPolicy` failing
            jobs run under (attempts, backoff, per-job timeout). None
            uses the default policy (3 attempts, no timeout);
            ``RetryPolicy.none()`` restores fail-fast single attempts.
        strict: when True, a job that exhausts its retries raises
            :class:`~repro.engine.faults.JobExecutionError` instead of
            degrading to a :class:`~repro.engine.faults.JobFailure` in
            the result map.
        journal: an open :class:`~repro.engine.journal.RunJournal` to
            record job lifecycle events into (scheduled / attempts /
            completed / failed). Completions are journaled only *after*
            the result is durably in the cache, so a journaled-complete
            job is always recoverable on ``--resume``. None disables
            journaling (the engine behaves exactly as before).
        interrupt: a ``threading.Event`` polled at every job dispatch;
            once set, the engine stops dispatching, cancels in-flight
            futures, and raises
            :class:`~repro.engine.faults.RunInterrupted` — the
            graceful-shutdown hook. None disables the check.
        kernel: trace-walk kernel (``"python"``/``"vector"``), resolved
            once at construction (explicit argument > ``REPRO_KERNEL``
            environment variable > vector-when-numpy-importable). An
            execution detail only: it never enters job hashes or cache
            keys, and both kernels produce bit-identical results.

    An engine is a context manager; leaving the ``with`` block closes
    the result cache's sqlite catalog handle deterministically.
    """

    #: pool deaths tolerated per batch before degrading to serial
    MAX_POOL_RESPAWNS = 3

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        materialize: Optional[bool] = None,
        trace_store: Optional[Union[str, Path, TraceStore]] = None,
        broadcast: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        strict: bool = False,
        journal: Optional[Any] = None,
        interrupt: Optional[Any] = None,
        kernel: Optional[str] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.kernel = resolve_kernel(kernel)
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if (cache_dir and use_cache) else None
        )
        self.materialize = materialize
        if trace_store is not None and not isinstance(trace_store, TraceStore):
            trace_store = TraceStore(trace_store)
        self.trace_store: Optional[TraceStore] = trace_store
        self.broadcast = resolve_broadcast(broadcast)
        self.retry = retry if retry is not None else RetryPolicy()
        self.strict = strict
        self.journal = journal
        self.interrupt = interrupt
        self.telemetry = RunTelemetry()
        self.stats = EngineStats(self.telemetry.registry)
        registry = self.telemetry.registry
        registry.set_gauge("engine.kernel", self.kernel)
        registry.set_gauge("engine.jobs", self.jobs)
        registry.set_gauge("engine.broadcast", self.broadcast)

    def run(self, graph: JobGraph) -> ResultMap:
        """Execute every job in ``graph``.

        Args:
            graph: the deduplicated set of jobs to satisfy.

        Returns:
            A :class:`ResultMap` from job hash (or job) to result,
            covering every job in the graph. Under the default
            non-strict policy a job that exhausted its retries maps to
            a :class:`~repro.engine.faults.JobFailure` (never cached);
            with ``strict=True`` that raises instead.
        """
        self.stats.requested += graph.requested
        self.stats.deduplicated += graph.deduplicated
        cache_before = self.cache.stats.as_dict() if self.cache else None
        journal = self.journal
        telemetry = self.telemetry
        # phase timers accumulate in the process-global registry (a
        # forked worker inherits these counts, hence delta-folding
        # everywhere); snapshot so this run folds only its own serial
        # phase time
        phase_before = (
            process_registry().snapshot() if telemetry.enabled else None
        )
        results = ResultMap()
        pending = []
        for job in graph:
            if journal is not None:
                journal.job_scheduled(job)
            telemetry.job_scheduled(job)
            cached = self.cache.load(job) if self.cache else None
            if cached is not None:
                self.stats.cache_hits += 1
                telemetry.job_cached(job)
                results[job.job_hash] = cached
                if journal is not None:
                    journal.job_completed(
                        job, shard=self.cache.path_for(job), source="cache"
                    )
            else:
                pending.append(job)
        try:
            if pending:
                for job, result in self._execute(pending):
                    results[job.job_hash] = result
                    telemetry.job_finished(
                        job, ok=not isinstance(result, JobFailure)
                    )
                    if isinstance(result, JobFailure):
                        if journal is not None:
                            journal.job_failed(result)
                        continue  # failures are never cached
                    self.stats.executed += 1
                    shard = None
                    if self.cache is not None:
                        shard = self.cache.store(job, result)
                    if journal is not None:
                        # write-ahead commit record: only after the
                        # result is durably on disk (or caching is off
                        # and there is nothing to recover from)
                        journal.job_completed(job, shard=shard)
        finally:
            if phase_before is not None:
                telemetry.registry.merge(
                    process_registry().delta_since(phase_before)
                )
            if self.cache is not None:
                after = self.cache.stats.as_dict()
                self.stats.cache_corrupt += (
                    after["corrupt"] - cache_before["corrupt"]
                )
                self.stats.quarantined += (
                    after["quarantined"] - cache_before["quarantined"]
                )
        return results

    def close(self) -> None:
        """Release held OS handles (the cache's sqlite catalog)."""
        if self.cache is not None:
            self.cache.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_interrupt(self) -> None:
        """Raise :class:`RunInterrupted` when graceful shutdown is
        requested — called wherever the engine is about to start (or
        restart) work, so an interrupt takes effect at the next job
        boundary rather than mid-simulation."""
        if self.interrupt is not None and self.interrupt.is_set():
            journal = self.journal
            completed = journal.jobs_completed if journal is not None else 0
            scheduled = journal.jobs_scheduled if journal is not None else 0
            raise RunInterrupted(completed, max(0, scheduled - completed))

    def _dispatch_gate(self) -> None:
        """The per-job-dispatch checkpoint: the deterministic
        ``kill_at_job`` injection point plus the interrupt poll. Called
        exactly once per first dispatch of a job, so the injector's
        dispatch index is stable across runs."""
        maybe_kill_run()
        self._check_interrupt()

    def _execute(self, pending: "list[SimJob]") -> Iterable["tuple[SimJob, Any]"]:
        materialize = (
            self.materialize
            if self.materialize is not None
            else default_materialize()
        )
        if self.jobs > 1 and len(pending) > 1:
            yield from self._execute_parallel(pending, materialize)
        else:
            yield from self._execute_serial(pending, materialize)

    # -- serial: fan one trace walk out to every job sharing its key -------

    def _execute_serial(
        self, pending: "list[SimJob]", materialize: bool
    ) -> Iterable["tuple[SimJob, Any]"]:
        if materialize:
            # compatibility mode: the per-process trace memo already
            # shares generation; bypass the trace plane entirely
            for job in pending:
                self._dispatch_gate()
                yield job, self._solo_with_retries(job, True)
            return
        for key, group in _grouped_by_trace_key(pending).items():
            yield from self._run_group_resilient(key, group)

    def _run_group_resilient(
        self, key, group: "list[SimJob]"
    ) -> Iterable["tuple[SimJob, Any]"]:
        """One fan-out group, with the serial degradation ladder wired.

        Step 1 — replay → regeneration: when the shared walk fails and
        the store entry it replayed does not verify (codec CRC, record
        decode — damage shows up either as a
        :class:`TraceFormatError` or as a consumer choking on a garbage
        access), the entry is quarantined and the group rerun with a
        fresh generation pass (which re-records it).

        Step 2 — fan-out → isolation: a failure with a verified-clean
        (or absent) trace cannot be blamed on the data, and the shared
        walk cannot attribute it to one consumer — the group degrades to
        per-job solo execution under the retry ladder, so one bad job
        cannot sink its trace-key peers.
        """
        stats = self.stats
        store = self.trace_store
        journal = self.journal
        for job in group:
            # one dispatch per job even though the group shares a walk —
            # keeps kill_at_job indices meaningful across modes
            self._dispatch_gate()
            if journal is not None:
                journal.attempt_started(job.job_hash, 1)
            self.telemetry.attempt_started(job.job_hash, 1)
        for _ in range(2):
            accesses, generated = self._serial_pass(key)
            try:
                results = run_group(group, accesses, self.kernel)
            except Exception as error:
                if store is not None and store.quarantine_if_damaged(
                    key, f"replay failed mid-walk: {error}"
                ):
                    stats.quarantined += 1
                    stats.replay_fallbacks += 1
                    continue  # the rerun regenerates (entry is gone)
                break  # job-level failure: isolate below
            stats.generation_passes += generated
            stats.passes_saved += len(group) - generated
            yield from results
            return
        stats.isolation_fallbacks += 1
        for job in group:
            yield job, self._solo_with_retries(job, False)

    def _solo_with_retries(
        self,
        job: SimJob,
        materialize: bool,
        log: Optional[AttemptLog] = None,
    ) -> Any:
        """Execute one job inline under the retry policy.

        Returns the job's result, or a :class:`JobFailure` once the
        policy's attempts are exhausted (raises
        :class:`JobExecutionError` under ``strict``). A corrupt store
        replay additionally quarantines its entry so the retry
        regenerates instead of replaying the same damage.
        """
        log = log or AttemptLog(job.job_hash, job.label())
        store = self.trace_store if not materialize else None
        policy = self.retry
        journal = self.journal
        while True:
            self._check_interrupt()
            attempt = log.attempts + 1
            if journal is not None:
                journal.attempt_started(job.job_hash, attempt)
            self.telemetry.attempt_started(job.job_hash, attempt)
            before = store.stats.as_dict() if store is not None else None
            try:
                result = execute_job(
                    job, materialize, store, attempt, self.kernel
                )
            except Exception as error:
                if store is not None and store.quarantine_if_damaged(
                    job.trace_key, f"replay failed: {error}"
                ):
                    # the retry regenerates instead of replaying the
                    # same damage
                    self.stats.quarantined += 1
                    self.stats.replay_fallbacks += 1
                log.record(error)
                if journal is not None:
                    journal.attempt_failed(
                        job.job_hash, log.attempts,
                        f"{type(error).__name__}: {error}",
                    )
                self.telemetry.attempt_finished(
                    job.job_hash, "failed",
                    error=f"{type(error).__name__}: {error}",
                )
                if log.attempts >= policy.attempts:
                    return self._give_up(log)
                self.stats.retries += 1
                policy.sleep_before_retry(job.job_hash, log.attempts)
                continue
            if store is not None:
                delta = _stats_delta(store.stats.as_dict(), before)
                self.stats.absorb_trace_stats(delta)
                self.stats.passes_saved += 1 - delta.get("generated", 0)
            elif not materialize:
                self.stats.generation_passes += 1
            return result

    def _give_up(self, log: AttemptLog) -> JobFailure:
        """Exhausted retries: surface (non-strict) or raise (strict)."""
        failure = log.failure()
        self.stats.failures += 1
        if self.strict:
            raise JobExecutionError(failure)
        print(f"[engine: {failure.summary()}]", file=sys.stderr)
        return failure

    def _serial_pass(self, key) -> "tuple[Iterable, int]":
        """One access pass for ``key`` plus its generation-pass cost.

        With a store: replay a recorded entry (cost 0) or record during
        the walk (cost 1, and the entry is published for later runs and
        workers). Without: a plain generation pass (cost 1).
        """
        store = self.trace_store
        if store is None:
            return stream_workload(*key), 1
        before = store.stats.as_dict()
        source = store.source(key)
        generated = 0 if store.stats.hits > before["hits"] else 1
        # fold replay/recording accounting in after the walk completes,
        # so bytes_replayed from the lazy iteration are captured
        accounted = _AccountedSource(
            source, store, before, self.stats, generated
        )
        return accounted, generated

    # -- parallel: broadcast waves, then per-job futures -------------------

    def _execute_parallel(
        self, pending: "list[SimJob]", materialize: bool
    ) -> Iterable["tuple[SimJob, Any]"]:
        # group-by-trace scheduling: keep jobs that share a trace
        # adjacent so reused pool workers hit their trace memo
        # (materialize mode) or the store's OS page cache (replay)
        ordered = sorted(pending, key=lambda j: (j.trace_key, j.job_hash))
        store = self.trace_store
        store_dir: Optional[str] = None
        if store is not None and not materialize:
            store_dir = str(store.directory)
        logs: "dict[str, AttemptLog]" = {}
        if store_dir is not None and self._broadcast_active():
            remaining: "list[SimJob]" = []
            for key, group in _grouped_by_trace_key(ordered).items():
                if len(group) < 2:
                    remaining.extend(group)
                else:
                    yield from self._run_broadcast_wave(
                        key, group, store_dir, remaining, logs
                    )
            ordered = sorted(
                remaining, key=lambda j: (j.trace_key, j.job_hash)
            )
        elif self.broadcast == MODE_ON and store_dir is None:
            print(
                "[engine: --broadcast on has no effect without a trace "
                "store (streaming mode); replaying independently]",
                file=sys.stderr,
            )
        if not ordered:
            return
        supervisor = _PoolSupervisor(
            self, ordered, min(self.jobs, len(ordered)), materialize,
            store_dir, logs,
        )
        yield from supervisor.run()

    def _broadcast_active(self) -> bool:
        """Whether multi-job trace keys run as broadcast waves. ``auto``
        and ``on`` both broadcast when the prerequisites hold; ``on``
        only differs in warning when they don't."""
        if self.broadcast == MODE_OFF:
            return False
        if broadcast_supported():
            return True
        if self.broadcast == MODE_ON:
            print(
                "[engine: broadcast requested but shared memory is "
                "unavailable; replaying independently]", file=sys.stderr,
            )
        return False

    def _run_broadcast_wave(
        self, key, group: "list[SimJob]", store_dir: str,
        remaining: "list[SimJob]", logs: "dict[str, AttemptLog]",
    ) -> Iterable["tuple[SimJob, Any]"]:
        """One trace-key group as a broadcast wave.

        A reader process walks ``key`` exactly once (replaying the
        stored entry, or recording it during the walk when the key is
        cold) and tees every chunk into a shared-memory ring. The group
        is split into at most ``self.jobs`` *bundles*, one consumer
        process each: within a bundle the in-process fan-out pump
        shares a single chunk decode and pre-pass across its jobs, so
        the wave honors the ``--jobs`` concurrency contract while still
        costing one walk for the whole group (the ring's slot pacing
        bounds memory; the trace plane, not the CPU count, is the
        scarce resource here).

        The wave inherits the parallel ladder's failure semantics: a
        dead or erring reader aborts the ring and consumers degrade to
        independent replay mid-stream (bit-identical results, counted
        in ``broadcast_fallbacks``); a consumer that reports a clean
        error is charged a retry attempt; a consumer that dies is
        charged only if fault injection can attribute the crash to it.
        Jobs that did not finish in the wave carry their attempt logs
        into ``remaining`` and finish on the pool path, where the retry
        policy's wall-clock timeout also applies.
        """
        import multiprocessing
        from queue import Empty

        from repro.tracestore.broadcast import ChunkRing, run_reader

        stats = self.stats
        journal = self.journal
        telemetry = self.telemetry
        bundles = [
            group[start::min(self.jobs, len(group))]
            for start in range(min(self.jobs, len(group)))
        ]
        try:
            ring = ChunkRing(len(bundles))
        except (OSError, ValueError):
            remaining.extend(group)  # no shared memory: the pool replays
            return
        bundle_of = {
            job.job_hash: index
            for index, bundle in enumerate(bundles)
            for job in bundle
        }
        for job in group:
            # one dispatch per job even though the wave shares a walk —
            # keeps kill_at_job indices meaningful across modes
            self._dispatch_gate()
            if journal is not None:
                journal.attempt_started(job.job_hash, 1)
            telemetry.attempt_started(
                job.job_hash, 1,
                worker=f"bundle-{bundle_of[job.job_hash]}",
            )
        stats.broadcast_waves += 1
        out_queue = multiprocessing.Queue()
        status_queue = multiprocessing.Queue()
        reader = multiprocessing.Process(
            target=run_reader,
            args=(ring.producer(), store_dir, key, status_queue),
            daemon=True,
        )
        outstanding: "dict[int, tuple[list[SimJob], Any]]" = {}
        for index, bundle in enumerate(bundles):
            outstanding[index] = (bundle, multiprocessing.Process(
                target=execute_jobs_broadcast,
                args=(bundle, ring.consumer(index), index, store_dir,
                      self.kernel, out_queue),
                daemon=True,
            ))
        processes = [proc for _, proc in outstanding.values()]
        dead_since: "dict[int, float]" = {}
        reader_reaped = False
        try:
            reader.start()
            for proc in processes:
                proc.start()
            while outstanding:
                self._check_interrupt()
                if not reader_reaped and reader.exitcode is not None:
                    reader_reaped = True
                    self._reap_reader(status_queue, key, ring)
                try:
                    payload = out_queue.get(timeout=0.3)
                except Empty:
                    payload = None
                if payload is not None:
                    index, status, body, store_delta, shared = payload
                    bundle, proc = outstanding.pop(index)
                    ring.detach(index)  # its free tokens are gone with it
                    proc.join()
                    telemetry.absorb_bundle(
                        [job.job_hash for job in bundle],
                        shared.pop("telemetry", None) or {},
                    )
                    stats.broadcast_chunks += shared["broadcast_chunks"]
                    stats.bytes_shared += shared["bytes_shared"]
                    stats.broadcast_fallbacks += shared["broadcast_fallbacks"]
                    if store_delta:
                        # the bundle's fallback store handle started at
                        # zero, so its counters are already a delta
                        stats.absorb_trace_stats(store_delta)
                    if status == "ok":
                        by_hash = {job.job_hash: job for job in bundle}
                        stats.passes_saved += len(body) - (
                            store_delta or {}
                        ).get("generated", 0)
                        for job_hash, result in body:
                            yield by_hash[job_hash], result
                    else:
                        for job in bundle:
                            yield from self._charge_wave_job(
                                job, RuntimeError(body), remaining, logs
                            )
                    continue
                # no result this poll: reap consumers that died without
                # reporting. A just-exited consumer's result may still be
                # in the queue pipe, so give each death a grace period
                # for its payload to drain before declaring a crash.
                now = time.monotonic()
                for index in list(outstanding):
                    bundle, proc = outstanding[index]
                    if proc.exitcode is None:
                        continue
                    if now - dead_since.setdefault(index, now) < 1.0:
                        continue
                    del outstanding[index]
                    ring.detach(index)
                    proc.join()
                    for job in bundle:
                        yield from self._crashed_wave_job(
                            job, proc.exitcode, remaining, logs
                        )
        finally:
            ring.abort()
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            for proc in processes:
                proc.join(timeout=2.0)
            if reader.is_alive():
                reader.terminate()
            reader.join(timeout=2.0)
            out_queue.close()
            status_queue.close()
            ring.close()

    def _reap_reader(self, status_queue, key, ring) -> None:
        """The reader process ended: absorb its trace accounting and,
        unless it reported success, abort the ring so consumers degrade
        to independent replay. A reader that failed on damaged data
        also quarantines the entry, so every later replay of the key —
        consumer fallbacks included — regenerates instead of re-reading
        the same corruption."""
        from queue import Empty

        try:
            status, detail, delta = status_queue.get(timeout=1.0)
        except Empty:
            # hard death (SIGKILL, injected reader_kill): no sentinel
            # ever reached the ring — only the abort tells consumers
            ring.abort()
            return
        self.stats.absorb_trace_stats(delta)
        if status == "ok":
            return
        ring.abort()
        store = self.trace_store
        if store is not None and store.quarantine_if_damaged(
            key, f"broadcast reader failed: {detail}"
        ):
            self.stats.quarantined += 1
            self.stats.replay_fallbacks += 1

    def _charge_wave_job(
        self, job: SimJob, error: BaseException,
        remaining: "list[SimJob]", logs: "dict[str, AttemptLog]",
    ) -> Iterable["tuple[SimJob, Any]"]:
        """A wave consumer failed cleanly: charge the job's retry budget
        and route it (with its attempt log) to the pool path."""
        log = logs.setdefault(
            job.job_hash, AttemptLog(job.job_hash, job.label())
        )
        log.record(error)
        if self.journal is not None:
            self.journal.attempt_failed(
                job.job_hash, log.attempts, f"{type(error).__name__}: {error}"
            )
        self.telemetry.attempt_finished(
            job.job_hash, "failed", error=f"{type(error).__name__}: {error}"
        )
        if log.attempts >= self.retry.attempts:
            yield job, self._give_up(log)
            return
        self.stats.retries += 1
        remaining.append(job)

    def _crashed_wave_job(
        self, job: SimJob, exitcode: Optional[int],
        remaining: "list[SimJob]", logs: "dict[str, AttemptLog]",
    ) -> Iterable["tuple[SimJob, Any]"]:
        """A wave consumer died without reporting. As on the pool path,
        fault injection can say whether this job's own crash draw fired
        (charged) or the death was collateral (requeued for free)."""
        log = logs.setdefault(
            job.job_hash, AttemptLog(job.job_hash, job.label())
        )
        plan = active_plan()
        if plan and plan.spec("worker_crash") is not None and not plan.fires(
            "worker_crash", job.job_hash, log.attempts + 1
        ):
            self.stats.requeued += 1
            self.telemetry.attempt_finished(job.job_hash, "requeued")
            remaining.append(job)
            return
        yield from self._charge_wave_job(
            job,
            BrokenProcessPool(f"broadcast consumer died (exit {exitcode})"),
            remaining, logs,
        )

    def report(self, stream=sys.stderr) -> None:
        print(f"[{self.stats.format()}]", file=stream)


class _PoolSupervisor:
    """Drives a batch of jobs through a (respawnable) process pool.

    Each job is its own future, tracked with an attempt log and an
    optional wall-clock deadline. The supervisor recovers from the three
    parallel failure modes:

    * a **job exception** in a worker — charged to that job's retry
      budget; the job is requeued after its deterministic backoff;
    * a **dead worker** (``BrokenProcessPool``) — the pool is respawned
      and every in-flight job requeued. Completed results are already
      out; nothing is recomputed. When the active fault-injection plan
      can name the crashing job(s), only those are charged an attempt —
      innocents are requeued for free;
    * a **stalled job** (policy timeout exceeded) — the pool is killed
      and respawned; the stalled job is charged a timeout attempt, the
      other in-flight jobs are requeued for free.

    After :attr:`Engine.MAX_POOL_RESPAWNS` pool deaths the batch
    degrades to the serial path (the last rung of the ladder) instead
    of thrashing pool startup forever.
    """

    def __init__(
        self,
        engine: Engine,
        jobs: "list[SimJob]",
        workers: int,
        materialize: bool,
        store_dir: Optional[str],
        logs: Optional["dict[str, AttemptLog]"] = None,
    ) -> None:
        self.engine = engine
        self.stats = engine.stats
        self.policy = engine.retry
        self.jobs = jobs
        self.workers = workers
        self.materialize = materialize
        self.store_dir = store_dir
        # attempt logs carried over from a broadcast wave, so a job
        # requeued off a failed wave keeps its charged attempts
        self.seed_logs = logs or {}
        self.pool: Optional[ProcessPoolExecutor] = None
        self.respawns = 0

    # -- pool lifecycle ----------------------------------------------------

    def _spawn(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _kill_pool(self) -> None:
        """Hard-stop the pool: terminate workers, abandon futures."""
        if self.pool is None:
            return
        for process in list(getattr(self.pool, "_processes", {}).values()):
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
        self.pool.shutdown(wait=False, cancel_futures=True)
        self.pool = None

    def _respawn(self) -> None:
        self.respawns += 1
        self.stats.pool_respawns += 1
        self._kill_pool()
        if self.respawns <= Engine.MAX_POOL_RESPAWNS:
            self.pool = self._spawn()

    # -- main loop ---------------------------------------------------------

    def run(self) -> Iterable["tuple[SimJob, Any]"]:
        queue: "deque[tuple[SimJob, AttemptLog, float]]" = deque(
            (
                job,
                self.seed_logs.get(job.job_hash)
                or AttemptLog(job.job_hash, job.label()),
                0.0,
            )
            for job in self.jobs
        )
        in_flight: "dict[Any, tuple[SimJob, AttemptLog, Optional[float]]]" = {}
        self.pool = self._spawn()
        try:
            yield from self._record_missing()
            while queue or in_flight:
                self.engine._check_interrupt()
                if self.pool is None:  # respawn budget exhausted
                    yield from self._serial_remainder(queue, in_flight)
                    return
                broken = self._submit_ready(queue, in_flight)
                victims: "list[tuple[SimJob, AttemptLog]]" = []
                if not broken:
                    if not in_flight:
                        _sleep_until_ready(queue)
                        continue
                    done, _ = wait(
                        set(in_flight),
                        timeout=self._wait_budget(queue, in_flight),
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        job, log, _ = in_flight.pop(future)
                        try:
                            _, result, delta = future.result()
                        except BrokenProcessPool:
                            broken = True
                            victims.append((job, log))
                            continue
                        except Exception as error:
                            yield from self._charge(job, log, error, queue)
                            continue
                        self.engine.telemetry.absorb_attempt(
                            job.job_hash, delta.pop("telemetry", None) or {}
                        )
                        self.stats.absorb_trace_stats(delta)
                        if not self.materialize:
                            self.stats.passes_saved += 1 - delta.get(
                                "generated", 0
                            )
                        yield job, result
                if broken:
                    # jobs still in flight share the broken pool's fate:
                    # their futures raise the same BrokenProcessPool
                    victims.extend(
                        (job, log) for job, log, _ in in_flight.values()
                    )
                    in_flight.clear()
                    yield from self._handle_breakage(victims, queue)
                else:
                    yield from self._handle_timeouts(queue, in_flight)
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)

    def _submit_ready(self, queue, in_flight) -> bool:
        """Submit every queue entry whose backoff has elapsed.

        Returns True when the pool turned out to be broken mid-submit
        (the entry is requeued and the caller runs breakage recovery).
        """
        now = time.monotonic()
        journal = self.engine.journal
        for _ in range(len(queue)):
            job, log, ready_at = queue.popleft()
            if ready_at > now:
                queue.append((job, log, ready_at))
                continue
            if log.attempts == 0:
                # first dispatch only: retries are not new dispatches,
                # so kill_at_job indices match the serial schedule
                self.engine._dispatch_gate()
            if journal is not None:
                journal.attempt_started(job.job_hash, log.attempts + 1)
            self.engine.telemetry.attempt_started(
                job.job_hash, log.attempts + 1, worker="pool"
            )
            try:
                future = self.pool.submit(
                    execute_job_for_pool,
                    job,
                    materialize=self.engine.materialize,
                    trace_store_dir=self.store_dir,
                    attempt=log.attempts + 1,
                    kernel=self.engine.kernel,
                )
            except (BrokenProcessPool, RuntimeError):
                queue.append((job, log, ready_at))
                return True
            deadline = (
                now + self.policy.timeout
                if self.policy.timeout is not None
                else None
            )
            in_flight[future] = (job, log, deadline)
        return False

    def _wait_budget(self, queue, in_flight) -> Optional[float]:
        """Seconds to block in wait(): until the nearest deadline or
        backoff expiry, or indefinitely when neither is pending. With a
        graceful-shutdown event attached, the wait is bounded (0.3s) so
        a signal arriving mid-wait is noticed promptly —
        ``concurrent.futures.wait`` would otherwise sleep through it."""
        now = time.monotonic()
        marks = [
            deadline for _, _, deadline in in_flight.values()
            if deadline is not None
        ]
        marks.extend(ready_at for _, _, ready_at in queue if ready_at > now)
        budget = max(0.0, min(marks) - now) if marks else None
        if self.engine.interrupt is not None:
            budget = 0.3 if budget is None else min(budget, 0.3)
        return budget

    def _charge(
        self, job: SimJob, log: AttemptLog, error: BaseException, queue
    ) -> Iterable["tuple[SimJob, Any]"]:
        """Record a failed attempt; requeue with backoff or give up."""
        log.record(error)
        if self.engine.journal is not None:
            self.engine.journal.attempt_failed(
                job.job_hash, log.attempts,
                f"{type(error).__name__}: {error}",
            )
        self.engine.telemetry.attempt_finished(
            job.job_hash, "failed", error=f"{type(error).__name__}: {error}"
        )
        if log.attempts >= self.policy.attempts:
            yield job, self.engine._give_up(log)
            return
        self.stats.retries += 1
        ready_at = time.monotonic() + self.policy.backoff_for(
            job.job_hash, log.attempts
        )
        queue.append((job, log, ready_at))

    def _handle_breakage(self, victims, queue) -> Iterable:
        """A worker died: respawn the pool, requeue only the lost jobs.

        Every in-flight job's future errors with ``BrokenProcessPool``
        whether or not it was the one running in the dead worker. When
        fault injection is active the parent can recompute exactly which
        draws fired and charge only the culprits' retry budgets; real
        (uninjected) crashes are unattributable, so everyone in flight
        is charged — the retry budget still bounds the damage.
        """
        culprits = self._crash_culprits(victims)
        self._respawn()
        error = BrokenProcessPool("worker process died unexpectedly")
        for job, log in victims:
            if culprits is None or job.job_hash in culprits:
                yield from self._charge(job, log, error, queue)
            else:
                self.stats.requeued += 1
                self.engine.telemetry.attempt_finished(
                    job.job_hash, "requeued"
                )
                queue.append((job, log, 0.0))

    def _crash_culprits(self, victims) -> Optional[set]:
        """Job hashes whose injected worker-crash draw fired, or None
        when injection can't attribute the death (charge everyone)."""
        plan = active_plan()
        if not plan or plan.spec("worker_crash") is None:
            return None
        return {
            job.job_hash
            for job, log in victims
            if plan.fires("worker_crash", job.job_hash, log.attempts + 1)
        }

    def _handle_timeouts(self, queue, in_flight) -> Iterable:
        """Kill and respawn the pool when an in-flight job overruns its
        wall-clock budget; the overrunner is charged a timeout attempt,
        innocent in-flight jobs are requeued for free."""
        now = time.monotonic()
        expired = [
            future
            for future, (_, _, deadline) in in_flight.items()
            if deadline is not None and deadline <= now and not future.done()
        ]
        if not expired:
            return
        victims = []
        for future in list(in_flight):
            job, log, _ = in_flight.pop(future)
            if future in expired:
                self.stats.timeouts += 1
                error = TimeoutError(
                    f"job exceeded its {self.policy.timeout:.1f}s wall-clock"
                    " budget"
                )
                yield from self._charge(job, log, error, queue)
            else:
                victims.append((job, log))
        self._respawn()
        for job, log in victims:
            self.stats.requeued += 1
            self.engine.telemetry.attempt_finished(job.job_hash, "requeued")
            queue.append((job, log, 0.0))

    def _serial_remainder(self, queue, in_flight) -> Iterable:
        """The ladder's last rung: the pool died too often — finish the
        batch inline (serial), preserving each job's attempt log."""
        self.stats.serial_fallbacks += 1
        remainder = [(job, log) for job, log, _ in queue]
        remainder.extend((job, log) for job, log, _ in in_flight.values())
        queue.clear()
        in_flight.clear()
        for job, log in remainder:
            yield job, self.engine._solo_with_retries(
                job, self.materialize, log
            )

    def _record_missing(self) -> Iterable:
        """Pre-record each distinct missing trace exactly once, fanned
        across the pool, before any job runs — jobs then replay. Falls
        back to parent-side recording if the pool dies during it."""
        if self.store_dir is None:
            return
        store = self.engine.trace_store
        before = store.stats.as_dict()
        missing = [
            key
            for key in OrderedDict.fromkeys(job.trace_key for job in self.jobs)
            if not store.has(key)
        ]
        # has() may have quarantined structurally damaged entries
        self.stats.absorb_trace_stats(
            _stats_delta(store.stats.as_dict(), before)
        )
        if not missing:
            return
        record = partial(record_trace_for_pool, self.store_dir)
        try:
            for delta in self.pool.map(record, missing):
                self.stats.absorb_trace_stats(delta)
        except BrokenProcessPool:
            self._respawn()
            before = store.stats.as_dict()
            for key in missing:
                store.record(key)  # idempotent: skips published entries
            self.stats.absorb_trace_stats(
                _stats_delta(store.stats.as_dict(), before)
            )
        return
        yield  # pragma: no cover - generator-shaped for uniform caller


def _sleep_until_ready(queue) -> None:
    """Nothing in flight, everything backing off: sleep to the nearest
    ready_at so the supervisor doesn't busy-wait."""
    now = time.monotonic()
    nearest = min(ready_at for _, _, ready_at in queue)
    if nearest > now:
        time.sleep(min(nearest - now, 1.0))


def _grouped_by_trace_key(
    pending: "list[SimJob]",
) -> "OrderedDict[tuple, List[SimJob]]":
    groups: "OrderedDict[tuple, List[SimJob]]" = OrderedDict()
    for job in pending:
        groups.setdefault(job.trace_key, []).append(job)
    return groups


def _stats_delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    return {name: after[name] - before[name] for name in after}


class _AccountedSource:
    """A single-pass view of a trace-store source that folds the store's
    accounting delta (minus the generation passes the engine already
    counted) into ``stats`` when the walk completes.

    Exposes both walk shapes so the fan-out pump picks whichever its
    kernel wants: per-record iteration, or native chunks (a recorded
    entry decodes whole stored chunks columnar; a record-during-walk
    generation pass is batched generically with the tee side effects
    intact).
    """

    __slots__ = ("_source", "_store", "_before", "_stats", "_generated")

    def __init__(self, source, store: TraceStore, before: Dict[str, int],
                 stats: EngineStats, generated: int) -> None:
        self._source = source
        self._store = store
        self._before = before
        self._stats = stats
        self._generated = generated

    def _fold(self) -> None:
        delta = _stats_delta(self._store.stats.as_dict(), self._before)
        delta["generated"] -= self._generated
        self._stats.absorb_trace_stats(delta)

    def __iter__(self):
        yield from self._source
        self._fold()

    def iter_chunks(self):
        yield from self._source.iter_chunks()
        self._fold()
