"""The execution engine: runs a job graph serially or across processes.

The engine is the single place simulations happen. It takes a
deduplicated :class:`JobGraph`, satisfies what it can from the on-disk
:class:`ResultCache`, executes the remainder — inline, or fanned out over
a ``ProcessPoolExecutor`` when ``jobs > 1`` — and returns a
:class:`ResultMap` from job (hash) to result. ``stats`` counts scheduled
vs deduplicated vs cache-satisfied vs executed jobs so callers can
surface exactly how much work a run performed (a fully cached invocation
reports ``executed=0``).
"""

from __future__ import annotations

import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

from repro.engine.cache import ResultCache
from repro.engine.exec import execute_job, execute_job_with_hash
from repro.engine.graph import JobGraph
from repro.engine.job import SimJob


@dataclass
class EngineStats:
    """Work accounting for one engine (accumulated across run() calls)."""

    requested: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    executed: int = 0

    def format(self) -> str:
        unique = self.requested - self.deduplicated
        return (
            f"engine: {self.requested} jobs requested, "
            f"{self.deduplicated} deduplicated, {unique} unique, "
            f"{self.cache_hits} cache hits, {self.executed} simulated"
        )


class ResultMap(Dict[str, Any]):
    """Results keyed by job hash; also indexable directly by job."""

    def __getitem__(self, key: Union[str, SimJob]) -> Any:
        if isinstance(key, SimJob):
            key = key.job_hash
        return super().__getitem__(key)

    def get(self, key: Union[str, SimJob], default: Any = None) -> Any:
        if isinstance(key, SimJob):
            key = key.job_hash
        return super().get(key, default)


class Engine:
    """Executes job graphs with optional parallelism and disk caching.

    Args:
        jobs: worker processes for simulation jobs (1 = serial/inline).
        cache_dir: on-disk result cache directory, or None to disable.
        use_cache: set False to neither read nor write ``cache_dir``.
        materialize: compatibility flag — True generates each job's trace
            into memory (per-process memo) instead of streaming it;
            results are bit-identical either way, but streaming keeps
            peak memory independent of trace length. None defers to the
            ``REPRO_MATERIALIZE`` environment variable.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        materialize: Optional[bool] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if (cache_dir and use_cache) else None
        )
        self.materialize = materialize
        self.stats = EngineStats()

    def run(self, graph: JobGraph) -> ResultMap:
        """Execute every job in ``graph``.

        Args:
            graph: the deduplicated set of jobs to satisfy.

        Returns:
            A :class:`ResultMap` from job hash (or job) to result,
            covering every job in the graph.
        """
        self.stats.requested += graph.requested
        self.stats.deduplicated += graph.deduplicated
        results = ResultMap()
        pending = []
        for job in graph:
            cached = self.cache.load(job) if self.cache else None
            if cached is not None:
                self.stats.cache_hits += 1
                results[job.job_hash] = cached
            else:
                pending.append(job)
        if pending:
            for job, result in self._execute(pending):
                results[job.job_hash] = result
                self.stats.executed += 1
                if self.cache is not None:
                    self.cache.store(job, result)
        return results

    def _execute(self, pending: "list[SimJob]") -> Iterable["tuple[SimJob, Any]"]:
        if self.jobs == 1 or len(pending) == 1:
            for job in pending:
                yield job, execute_job(job, self.materialize)
            return
        # group-by-trace scheduling: keep jobs that share a generated
        # trace adjacent so reused pool workers hit their trace memo
        # (materialize mode) or at least their OS page cache (streaming)
        ordered = sorted(pending, key=lambda j: (j.trace_key, j.job_hash))
        by_hash = {job.job_hash: job for job in ordered}
        workers = min(self.jobs, len(ordered))
        run_job = partial(execute_job_with_hash, materialize=self.materialize)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for job_hash, result in pool.map(run_job, ordered, chunksize=1):
                yield by_hash[job_hash], result

    def report(self, stream=sys.stderr) -> None:
        print(f"[{self.stats.format()}]", file=stream)
