"""Job execution: trace streaming, predictor construction, dispatch.

This module is the worker side of the engine: :func:`execute_job` takes a
picklable :class:`SimJob` and returns a picklable result dataclass, so it
runs identically inline (serial mode) and inside a
``ProcessPoolExecutor`` worker (parallel mode). Results are bit-identical
either way because every job rebuilds its trace and predictor from the
job's seeds alone.

Every job kind runs **single-pass and O(1) in memory** by default: the
trace is a re-iterable :class:`~repro.trace.container.TraceSource` whose
accesses flow straight into the coverage driver / analysis consumers and
are garbage the moment they are processed. A timing job shares one walk
between coverage classification and the incremental
:class:`~repro.sim.timing.TimingModel` — no trace, no service list.

The **materialize compatibility flag** (``execute_job(job,
materialize=True)``, ``Engine(materialize=True)``, CLI
``--materialize``, env ``REPRO_MATERIALIZE=1``) restores the previous
behaviour: traces are generated into memory once and memoized per
process in a small bounded LRU keyed by ``(workload, length, seed)``,
which trades O(trace) memory for cheaper repeat walks when many jobs
share a trace. Both paths walk the identical access sequence through
identical consumers, so results are bit-identical — the flag only moves
the memory/time trade-off.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Callable, Dict, Optional

from repro.analysis.correlation import CorrelationDistanceAnalysis
from repro.analysis.joint import JointPredictabilityAnalysis
from repro.analysis.repetition import RepetitionAnalysis
from repro.common.config import SMSConfig, STeMSConfig, TMSConfig
from repro.engine.job import (
    CONFIGURABLE_PREFETCHER_KINDS,
    KIND_CORRELATION,
    KIND_COVERAGE,
    KIND_JOINT,
    KIND_REPETITION,
    KIND_TIMING,
    PrefetcherSpec,
    SimJob,
)
from repro.prefetch.base import Prefetcher
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.hybrid import NaiveHybridPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.sms.sms import SMSPrefetcher
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.tms.tms import TMSPrefetcher
from repro.sim.driver import SimulationDriver
from repro.sim.timing import TimingModel
from repro.trace.container import Trace, TraceLike
from repro.workloads.registry import (
    WORKLOAD_CATEGORIES,
    make_workload,
    stream_workload,
)

def default_materialize() -> bool:
    """Process-wide default for the materialize compatibility flag.

    Read from the ``REPRO_MATERIALIZE`` environment variable at call
    time, so setting it after import (tests, wrapper scripts) works.
    """
    return os.environ.get("REPRO_MATERIALIZE", "").lower() in (
        "1", "true", "yes",
    )


#: traces kept alive per process (materialize mode only); the suite has
#: 10 workloads and traces are the dominant memory term, so keep the cap
#: modest
_TRACE_MEMO_CAP = 16
_TRACE_MEMO: "OrderedDict[tuple, Trace]" = OrderedDict()


def materialized_trace(workload: str, length: int, seed: int) -> Trace:
    """Generate (or fetch from the per-process memo) one workload trace."""
    key = (workload, length, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = make_workload(workload).generate(length, seed=seed)
        _TRACE_MEMO[key] = trace
        while len(_TRACE_MEMO) > _TRACE_MEMO_CAP:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(key)
    return trace


def clear_trace_memo() -> None:
    _TRACE_MEMO.clear()


def job_trace(job: SimJob, materialize: bool) -> TraceLike:
    """The trace a job walks: a lazy source, or the memoized in-memory
    trace when the materialize compatibility flag is set."""
    if materialize:
        return materialized_trace(job.workload, job.length, job.seed)
    return stream_workload(job.workload, job.length, job.seed)


def build_prefetcher(
    spec: Optional[PrefetcherSpec], workload: str
) -> Optional[Prefetcher]:
    """Construct the predictor a spec describes for ``workload``.

    Scientific workloads get the deeper lookahead the paper argues for in
    §4.3; ``spec.overrides`` are applied to the main predictor's config
    via ``dataclasses.replace`` (sensitivity sweeps).
    """
    if spec is None:
        return None
    scientific = WORKLOAD_CATEGORIES.get(workload) == "scientific"
    overrides = dict(spec.overrides)
    kind = spec.kind
    main: Optional[Prefetcher]
    if overrides and kind not in CONFIGURABLE_PREFETCHER_KINDS:
        # PrefetcherSpec rejects this at construction; re-check here so a
        # hand-built spec can't silently run an unconfigured predictor
        raise ValueError(
            f"prefetcher kind {kind!r} does not take config overrides"
        )
    if kind == "none":
        return None
    if kind == "stride":
        return StridePrefetcher()
    if kind == "markov":
        main = MarkovPrefetcher()
    elif kind == "ghb":
        main = GHBPrefetcher()
    elif kind == "tms":
        base = TMSConfig(lookahead=12) if scientific else TMSConfig()
        main = TMSPrefetcher(replace(base, **overrides))
    elif kind == "sms":
        main = SMSPrefetcher(replace(SMSConfig(), **overrides))
    elif kind == "stems":
        base = STeMSConfig.scientific() if scientific else STeMSConfig()
        main = STeMSPrefetcher(replace(base, **overrides))
    elif kind == "hybrid":
        main = NaiveHybridPrefetcher(
            TMSConfig(lookahead=12) if scientific else TMSConfig(), SMSConfig()
        )
    else:
        raise ValueError(f"unknown prefetcher kind {kind!r}")
    if spec.with_stride:
        return CompositePrefetcher(main)
    return main


def _run_coverage(job: SimJob, trace: TraceLike) -> Any:
    prefetcher = build_prefetcher(job.prefetcher, job.workload)
    return SimulationDriver(job.system, prefetcher).run(trace)


def _run_timing(job: SimJob, trace: TraceLike) -> Any:
    # one shared walk: the driver classifies each access and feeds the
    # incremental timing model in the same pass (no service list)
    prefetcher = build_prefetcher(job.prefetcher, job.workload)
    warm = int(job.length * float(job.param("warmup_fraction", 0.0)))
    model = TimingModel(
        job.system.timing,
        workload=job.workload,
        prefetcher_name=job.prefetcher.kind if job.prefetcher else "none",
        measure_from=warm,
    )
    SimulationDriver(job.system, prefetcher, service_consumer=model).run(trace)
    return model.finalize()


def _run_joint(job: SimJob, trace: TraceLike) -> Any:
    skip = float(job.param("skip_fraction", 0.0))
    if not 0.0 <= skip < 1.0:
        raise ValueError(f"skip_fraction must be in [0, 1), got {skip}")
    return JointPredictabilityAnalysis(
        job.system,
        measure_from=int(job.length * skip),
        workload=job.workload,
    ).consume(trace)


def _run_repetition(job: SimJob, trace: TraceLike) -> Any:
    return RepetitionAnalysis(
        job.system,
        max_elements=int(job.param("max_elements", 60000)),
        workload=job.workload,
    ).consume(trace)


def _run_correlation(job: SimJob, trace: TraceLike) -> Any:
    return CorrelationDistanceAnalysis(
        job.system, workload=job.workload
    ).consume(trace)


_EXECUTORS: Dict[str, Callable[[SimJob, TraceLike], Any]] = {
    KIND_COVERAGE: _run_coverage,
    KIND_TIMING: _run_timing,
    KIND_JOINT: _run_joint,
    KIND_REPETITION: _run_repetition,
    KIND_CORRELATION: _run_correlation,
}


def execute_job(job: SimJob, materialize: Optional[bool] = None) -> Any:
    """Run one job to completion and return its result dataclass.

    Args:
        job: the simulation/analysis description to execute.
        materialize: compatibility flag — True walks a memoized in-memory
            trace instead of a streaming source; None (default) defers to
            the ``REPRO_MATERIALIZE`` environment variable.

    Returns:
        The kind-specific result dataclass; bit-identical across both
        trace modes, serial/parallel execution and cache round-trips.
    """
    if materialize is None:
        materialize = default_materialize()
    return _EXECUTORS[job.kind](job, job_trace(job, materialize))


def execute_job_with_hash(
    job: SimJob, materialize: Optional[bool] = None
) -> "tuple[str, Any]":
    """Pool-friendly wrapper: pairs the result with the job's hash."""
    return job.job_hash, execute_job(job, materialize)
