"""Job execution: trace streaming, predictor construction, dispatch.

This module is the worker side of the engine: :func:`execute_job` takes a
picklable :class:`SimJob` and returns a picklable result dataclass, so it
runs identically inline (serial mode) and inside a
``ProcessPoolExecutor`` worker (parallel mode). Results are bit-identical
either way because every job rebuilds its trace and predictor from the
job's seeds alone.

Every job kind runs **single-pass and O(1) in memory** by default: the
trace is a re-iterable :class:`~repro.trace.container.TraceSource` whose
accesses flow straight into the coverage driver / analysis consumers and
are garbage the moment they are processed. A timing job shares one walk
between coverage classification and the incremental
:class:`~repro.sim.timing.TimingModel` — no trace, no service list.
When a :class:`~repro.tracestore.TraceStore` is supplied, the source
replays the recorded binary trace (or records it during the first walk)
instead of regenerating it — same sequence, same results, no generator
cost; :func:`execute_job_for_pool` is the worker entry that also
returns the replay/recording accounting to the parent engine.

The **materialize compatibility flag** (``execute_job(job,
materialize=True)``, ``Engine(materialize=True)``, CLI
``--materialize``, env ``REPRO_MATERIALIZE=1``) restores the previous
behaviour: traces are generated into memory once and memoized per
process in a small bounded LRU keyed by ``(workload, length, seed)``,
which trades O(trace) memory for cheaper repeat walks when many jobs
share a trace. Both paths walk the identical access sequence through
identical consumers, so results are bit-identical — the flag only moves
the memory/time trade-off.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.tracestore import TraceStore

from repro.analysis.correlation import CorrelationDistanceAnalysis
from repro.analysis.joint import JointPredictabilityAnalysis
from repro.analysis.repetition import RepetitionAnalysis
from repro.common.config import SMSConfig, STeMSConfig, TMSConfig
from repro.engine.faultinject import maybe_fail_job
from repro.engine.job import (
    CONFIGURABLE_PREFETCHER_KINDS,
    KIND_CORRELATION,
    KIND_COVERAGE,
    KIND_JOINT,
    KIND_REPETITION,
    KIND_TIMING,
    PrefetcherSpec,
    SimJob,
)
from repro.prefetch.base import Prefetcher
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.hybrid import NaiveHybridPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.sms.sms import SMSPrefetcher
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.tms.tms import TMSPrefetcher
from repro.kernels import resolve_kernel
from repro.sim.driver import SimulationDriver
from repro.sim.timing import TimingModel
from repro.telemetry import process_registry, telemetry_enabled
from repro.trace.container import Trace, TraceLike
from repro.workloads.registry import (
    WORKLOAD_CATEGORIES,
    make_workload,
    stream_workload,
)

def default_materialize() -> bool:
    """Process-wide default for the materialize compatibility flag.

    Read from the ``REPRO_MATERIALIZE`` environment variable at call
    time, so setting it after import (tests, wrapper scripts) works.
    """
    return os.environ.get("REPRO_MATERIALIZE", "").lower() in (
        "1", "true", "yes",
    )


#: traces kept alive per process (materialize mode only); the suite has
#: 10 workloads and traces are the dominant memory term, so keep the cap
#: modest
_TRACE_MEMO_CAP = 16
_TRACE_MEMO: "OrderedDict[tuple, Trace]" = OrderedDict()


def materialized_trace(workload: str, length: int, seed: int) -> Trace:
    """Generate (or fetch from the per-process memo) one workload trace."""
    key = (workload, length, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = make_workload(workload).generate(length, seed=seed)
        _TRACE_MEMO[key] = trace
        while len(_TRACE_MEMO) > _TRACE_MEMO_CAP:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(key)
    return trace


def clear_trace_memo() -> None:
    _TRACE_MEMO.clear()


def job_trace(
    job: SimJob, materialize: bool, trace_store: Optional["TraceStore"] = None
) -> TraceLike:
    """The trace a job walks.

    Precedence: the memoized in-memory trace when the materialize
    compatibility flag is set; otherwise a :class:`TraceStore` source
    when a store is supplied (replay if recorded, record-during-walk if
    not); otherwise a fresh streaming generation pass. All three yield
    the identical access sequence for a given trace key.
    """
    if materialize:
        return materialized_trace(job.workload, job.length, job.seed)
    if trace_store is not None:
        return trace_store.source(job.trace_key)
    return stream_workload(job.workload, job.length, job.seed)


def build_prefetcher(
    spec: Optional[PrefetcherSpec], workload: str
) -> Optional[Prefetcher]:
    """Construct the predictor a spec describes for ``workload``.

    Scientific workloads get the deeper lookahead the paper argues for in
    §4.3; ``spec.overrides`` are applied to the main predictor's config
    via ``dataclasses.replace`` (sensitivity sweeps).
    """
    if spec is None:
        return None
    scientific = WORKLOAD_CATEGORIES.get(workload) == "scientific"
    overrides = dict(spec.overrides)
    kind = spec.kind
    main: Optional[Prefetcher]
    if overrides and kind not in CONFIGURABLE_PREFETCHER_KINDS:
        # PrefetcherSpec rejects this at construction; re-check here so a
        # hand-built spec can't silently run an unconfigured predictor
        raise ValueError(
            f"prefetcher kind {kind!r} does not take config overrides"
        )
    if kind == "none":
        return None
    if kind == "stride":
        return StridePrefetcher()
    if kind == "markov":
        main = MarkovPrefetcher()
    elif kind == "ghb":
        main = GHBPrefetcher()
    elif kind == "tms":
        base = TMSConfig(lookahead=12) if scientific else TMSConfig()
        main = TMSPrefetcher(replace(base, **overrides))
    elif kind == "sms":
        main = SMSPrefetcher(replace(SMSConfig(), **overrides))
    elif kind == "stems":
        base = STeMSConfig.scientific() if scientific else STeMSConfig()
        main = STeMSPrefetcher(replace(base, **overrides))
    elif kind == "hybrid":
        main = NaiveHybridPrefetcher(
            TMSConfig(lookahead=12) if scientific else TMSConfig(), SMSConfig()
        )
    else:
        raise ValueError(f"unknown prefetcher kind {kind!r}")
    if spec.with_stride:
        return CompositePrefetcher(main)
    return main


def timing_model_for_job(job: SimJob) -> TimingModel:
    """The incremental ROB/MLP model a timing job's walk feeds."""
    warm = int(job.length * float(job.param("warmup_fraction", 0.0)))
    return TimingModel(
        job.system.timing,
        workload=job.workload,
        prefetcher_name=job.prefetcher.kind if job.prefetcher else "none",
        measure_from=warm,
    )


def analysis_for_job(job: SimJob) -> Any:
    """The :class:`StreamingAnalysis` consumer for an analysis-kind job.

    Shared by the solo execution path (which drives ``consume(trace)``)
    and the fan-out scheduler (which pushes ``update(access)`` from a
    shared walk) so both construct identical analysis state.
    """
    if job.kind == KIND_JOINT:
        skip = float(job.param("skip_fraction", 0.0))
        if not 0.0 <= skip < 1.0:
            raise ValueError(f"skip_fraction must be in [0, 1), got {skip}")
        return JointPredictabilityAnalysis(
            job.system,
            measure_from=int(job.length * skip),
            workload=job.workload,
        )
    if job.kind == KIND_REPETITION:
        return RepetitionAnalysis(
            job.system,
            max_elements=int(job.param("max_elements", 60000)),
            workload=job.workload,
        )
    if job.kind == KIND_CORRELATION:
        return CorrelationDistanceAnalysis(
            job.system, workload=job.workload
        )
    raise ValueError(f"job kind {job.kind!r} is not an analysis kind")


def _run_coverage(job: SimJob, trace: TraceLike, kernel: Optional[str]) -> Any:
    prefetcher = build_prefetcher(job.prefetcher, job.workload)
    return SimulationDriver(job.system, prefetcher).run(trace, kernel)


def _run_timing(job: SimJob, trace: TraceLike, kernel: Optional[str]) -> Any:
    # one shared walk: the driver classifies each access and feeds the
    # incremental timing model in the same pass (no service list)
    prefetcher = build_prefetcher(job.prefetcher, job.workload)
    model = timing_model_for_job(job)
    SimulationDriver(job.system, prefetcher, service_consumer=model).run(
        trace, kernel
    )
    return model.finalize()


def _run_analysis(job: SimJob, trace: TraceLike, kernel: Optional[str]) -> Any:
    return analysis_for_job(job).consume(trace, kernel)


_EXECUTORS: Dict[str, Callable[[SimJob, TraceLike, Optional[str]], Any]] = {
    KIND_COVERAGE: _run_coverage,
    KIND_TIMING: _run_timing,
    KIND_JOINT: _run_analysis,
    KIND_REPETITION: _run_analysis,
    KIND_CORRELATION: _run_analysis,
}


def execute_job(
    job: SimJob,
    materialize: Optional[bool] = None,
    trace_store: Optional["TraceStore"] = None,
    attempt: int = 1,
    kernel: Optional[str] = None,
) -> Any:
    """Run one job to completion and return its result dataclass.

    Args:
        job: the simulation/analysis description to execute.
        materialize: compatibility flag — True walks a memoized in-memory
            trace instead of a streaming source; None (default) defers to
            the ``REPRO_MATERIALIZE`` environment variable.
        trace_store: when given (and not materializing), the job's trace
            is replayed from — or recorded into — this on-disk store
            instead of being regenerated.
        attempt: 1-based attempt number (retry ladder); folded into the
            fault-injection draw so a retried job re-rolls its faults.
        kernel: trace-walk kernel (``"python"``/``"vector"``/None, see
            :func:`repro.kernels.resolve_kernel`). An execution detail:
            it never enters the job hash, and both kernels produce
            bit-identical results.

    Returns:
        The kind-specific result dataclass; bit-identical across all
        trace modes, kernels, serial/parallel execution and cache
        round-trips.

    A mid-walk :class:`~repro.tracestore.TraceFormatError` from a store
    replay (a corrupt or truncated entry caught by the codec's CRC) is
    *not* handled here — callers recover by quarantining the entry and
    retrying, at which point the store regenerates (see
    ``execute_job_recovering``).
    """
    if materialize is None:
        materialize = default_materialize()
    maybe_fail_job(job.job_hash, attempt)
    return _EXECUTORS[job.kind](
        job, job_trace(job, materialize, trace_store), kernel
    )


def execute_job_recovering(
    job: SimJob,
    materialize: Optional[bool] = None,
    trace_store: Optional["TraceStore"] = None,
    attempt: int = 1,
    kernel: Optional[str] = None,
) -> Any:
    """:func:`execute_job` with the replay→regeneration fallback wired.

    When execution fails and the store entry the job replayed does not
    verify — damage surfaces either as a
    :class:`~repro.tracestore.TraceFormatError` from the codec CRC or
    as the consumer choking on a garbage decoded access — the damaged
    entry is quarantined (``quarantine/`` + reason file, accounted on
    the store's stats) and the job is re-executed; the store then
    records a fresh trace during the retry walk. One fallback only — a
    failure with a verified-clean (or absent) entry is the job's own
    and propagates to the caller's retry ladder.
    """
    if trace_store is None:
        return execute_job(job, materialize, None, attempt, kernel)
    try:
        return execute_job(job, materialize, trace_store, attempt, kernel)
    except Exception as error:
        damaged = trace_store.quarantine_if_damaged(
            job.trace_key, f"replay failed: {error}"
        )
        # a racing recoverer may have already quarantined (and cleanly
        # re-recorded) the damaged entry this walk read — the evidence
        # in quarantine/ still licenses one retry
        if not damaged and not trace_store.was_quarantined(job.trace_key):
            raise
        trace_store.stats.replay_fallbacks += 1
        return execute_job(job, materialize, trace_store, attempt, kernel)


def execute_job_with_hash(
    job: SimJob, materialize: Optional[bool] = None
) -> "tuple[str, Any]":
    """Pool-friendly wrapper: pairs the result with the job's hash."""
    return job.job_hash, execute_job(job, materialize)


def execute_job_for_pool(
    job: SimJob,
    materialize: Optional[bool] = None,
    trace_store_dir: Optional[Union[str, Path]] = None,
    attempt: int = 1,
    kernel: Optional[str] = None,
) -> Tuple[str, Any, Dict[str, int]]:
    """Worker-side entry: result plus the trace-plane accounting delta.

    Opens a per-call :class:`TraceStore` handle when a directory is
    given, so its stats are exactly this job's replay/recording work;
    the parent engine folds the returned dict into its
    :class:`~repro.engine.engine.EngineStats`. Store-replay corruption
    is recovered in-worker (quarantine + regenerate, reported through
    the stats delta); other failures propagate to the parent's retry
    supervisor.

    With telemetry on, the dict additionally carries a ``"telemetry"``
    key — the worker's phase-timer delta plus a span self-report
    (wall/CPU time, kernel, store hit/miss, bytes replayed) — which
    the parent pops before folding the trace counters; the tuple shape
    itself never changes.
    """
    if materialize is None:
        materialize = default_materialize()
    store = None
    if trace_store_dir is not None and not materialize:
        from repro.tracestore import TraceStore

        store = TraceStore(trace_store_dir)
    telemetry = telemetry_enabled()
    if telemetry:
        phase_before = process_registry().snapshot()
        wall0, cpu0 = time.perf_counter(), time.process_time()
    result = execute_job_recovering(job, materialize, store, attempt, kernel)
    if store is not None:
        stats = store.stats.as_dict()
    elif materialize:
        stats = {}
    else:
        stats = {"generated": 1}
    if telemetry:
        span = {
            "worker": f"worker-{os.getpid()}",
            "wall_s": time.perf_counter() - wall0,
            "cpu_s": time.process_time() - cpu0,
            "kernel": resolve_kernel(kernel),
        }
        if store is not None:
            span["store"] = "hit" if stats.get("hits") else "miss"
            span["bytes_replayed"] = stats.get("bytes_replayed", 0)
            if stats.get("replay_fallbacks"):
                span["fallback"] = "replay->regenerate"
        stats = dict(stats)
        stats["telemetry"] = {
            "metrics": process_registry().delta_since(phase_before),
            "span": span,
        }
    return job.job_hash, result, stats


def execute_jobs_broadcast(
    jobs: "list[SimJob]",
    ring_consumer: Any,
    index: int,
    trace_store_dir: Union[str, Path],
    kernel: Optional[str],
    out_queue: Any,
) -> None:
    """Broadcast-consumer process entry: a job bundle fed from one ring.

    Runs the bundle through the same fan-out pump a serial group uses
    (:func:`~repro.engine.fanout.run_group`) — every job in the bundle
    shares one chunk decode and one vectorized pre-pass — but the
    access stream is a :class:`~repro.tracestore.broadcast.ChunkCursor`
    decoding chunks straight out of shared memory: zero file IO, zero
    index decode on the consumer side. If the reader dies or a slot
    fails its CRC the cursor degrades to an independent replay
    mid-stream; results are bit-identical either way.

    Reports ``(index, status, payload, store_stats, broadcast_stats)``
    on ``out_queue`` — ``status`` is ``"ok"`` (payload = a list of
    ``(job_hash, result)`` pairs) or ``"error"`` (payload = the error
    description; the parent charges each bundled job's retry budget and
    requeues them through the pool path). Injected ``worker_crash``
    draws kill the process outright, exactly as they would a pool
    worker. With telemetry on, the broadcast-accounting dict carries a
    ``"telemetry"`` key (phase-timer delta + bundle span self-report)
    that the parent pops before folding the counters.
    """
    from repro.engine.fanout import run_group
    from repro.tracestore.broadcast import ChunkCursor, replay_fallback

    bundle = list(jobs)
    fallback = replay_fallback(str(trace_store_dir), bundle[0].trace_key)
    cursor = ChunkCursor(ring_consumer, fallback)
    telemetry = telemetry_enabled()
    if telemetry:
        phase_before = process_registry().snapshot()
        wall0, cpu0 = time.perf_counter(), time.process_time()

    def accounting() -> dict:
        shared = cursor.accounting()
        if telemetry:
            span = {
                "worker": f"bundle-{index}",
                "wall_s": time.perf_counter() - wall0,
                "cpu_s": time.process_time() - cpu0,
                "kernel": resolve_kernel(kernel),
                "bundle_jobs": len(bundle),
            }
            if shared["broadcast_fallbacks"]:
                span["fallback"] = "broadcast->replay"
            shared["telemetry"] = {
                "metrics": process_registry().delta_since(phase_before),
                "span": span,
            }
        return shared

    try:
        results = run_group(bundle, cursor, kernel)
    except BaseException as error:  # noqa: BLE001 - reported, not silenced
        out_queue.put((
            index, "error", f"{type(error).__name__}: {error}",
            fallback.stats, accounting(),
        ))
        ring_consumer.close()
        return
    out_queue.put((
        index, "ok", [(job.job_hash, result) for job, result in results],
        fallback.stats, accounting(),
    ))
    ring_consumer.close()


def record_trace_for_pool(
    trace_store_dir: Union[str, Path], key: "tuple[str, int, int]"
) -> Dict[str, int]:
    """Worker-side trace recording: generate ``key`` into the store.

    Lets a cold parallel run record its distinct trace keys across the
    pool instead of one after another in the parent; returns the
    accounting delta (idempotent — a key another worker already
    published costs nothing and reports nothing).
    """
    from repro.tracestore import TraceStore

    store = TraceStore(trace_store_dir)
    store.record(tuple(key))
    return store.stats.as_dict()
