"""Job execution: trace materialization, predictor construction, dispatch.

This module is the worker side of the engine: :func:`execute_job` takes a
picklable :class:`SimJob` and returns a picklable result dataclass, so it
runs identically inline (serial mode) and inside a
``ProcessPoolExecutor`` worker (parallel mode). Results are bit-identical
either way because every job rebuilds its trace and predictor from the
job's seeds alone.

Traces are memoized per process in a small bounded LRU keyed by
``(workload, length, seed)``: many jobs share one trace (a figure runs
several predictors over each workload), and pool workers are reused
across jobs, so each process generates each trace at most once while
holding only a handful in memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Any, Callable, Dict, Optional

from repro.analysis.correlation import correlation_distance_analysis
from repro.analysis.joint import joint_coverage_analysis
from repro.analysis.repetition import repetition_analysis
from repro.common.config import SMSConfig, STeMSConfig, TMSConfig
from repro.engine.job import (
    CONFIGURABLE_PREFETCHER_KINDS,
    KIND_CORRELATION,
    KIND_COVERAGE,
    KIND_JOINT,
    KIND_REPETITION,
    KIND_TIMING,
    PrefetcherSpec,
    SimJob,
)
from repro.prefetch.base import Prefetcher
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.hybrid import NaiveHybridPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.prefetch.sms.sms import SMSPrefetcher
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.tms.tms import TMSPrefetcher
from repro.sim.driver import SimulationDriver
from repro.sim.timing import simulate_timing
from repro.trace.container import Trace
from repro.workloads.registry import WORKLOAD_CATEGORIES, make_workload

#: traces kept alive per process; the suite has 10 workloads and traces
#: are the dominant memory term, so keep the cap modest
_TRACE_MEMO_CAP = 16
_TRACE_MEMO: "OrderedDict[tuple, Trace]" = OrderedDict()


def materialized_trace(workload: str, length: int, seed: int) -> Trace:
    """Generate (or fetch from the per-process memo) one workload trace."""
    key = (workload, length, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = make_workload(workload).generate(length, seed=seed)
        _TRACE_MEMO[key] = trace
        while len(_TRACE_MEMO) > _TRACE_MEMO_CAP:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(key)
    return trace


def clear_trace_memo() -> None:
    _TRACE_MEMO.clear()


def build_prefetcher(
    spec: Optional[PrefetcherSpec], workload: str
) -> Optional[Prefetcher]:
    """Construct the predictor a spec describes for ``workload``.

    Scientific workloads get the deeper lookahead the paper argues for in
    §4.3; ``spec.overrides`` are applied to the main predictor's config
    via ``dataclasses.replace`` (sensitivity sweeps).
    """
    if spec is None:
        return None
    scientific = WORKLOAD_CATEGORIES.get(workload) == "scientific"
    overrides = dict(spec.overrides)
    kind = spec.kind
    main: Optional[Prefetcher]
    if overrides and kind not in CONFIGURABLE_PREFETCHER_KINDS:
        # PrefetcherSpec rejects this at construction; re-check here so a
        # hand-built spec can't silently run an unconfigured predictor
        raise ValueError(
            f"prefetcher kind {kind!r} does not take config overrides"
        )
    if kind == "none":
        return None
    if kind == "stride":
        return StridePrefetcher()
    if kind == "markov":
        main = MarkovPrefetcher()
    elif kind == "ghb":
        main = GHBPrefetcher()
    elif kind == "tms":
        base = TMSConfig(lookahead=12) if scientific else TMSConfig()
        main = TMSPrefetcher(replace(base, **overrides))
    elif kind == "sms":
        main = SMSPrefetcher(replace(SMSConfig(), **overrides))
    elif kind == "stems":
        base = STeMSConfig.scientific() if scientific else STeMSConfig()
        main = STeMSPrefetcher(replace(base, **overrides))
    elif kind == "hybrid":
        main = NaiveHybridPrefetcher(
            TMSConfig(lookahead=12) if scientific else TMSConfig(), SMSConfig()
        )
    else:
        raise ValueError(f"unknown prefetcher kind {kind!r}")
    if spec.with_stride:
        return CompositePrefetcher(main)
    return main


def _run_coverage(job: SimJob) -> Any:
    trace = materialized_trace(job.workload, job.length, job.seed)
    prefetcher = build_prefetcher(job.prefetcher, job.workload)
    return SimulationDriver(job.system, prefetcher).run(trace)


def _run_timing(job: SimJob) -> Any:
    trace = materialized_trace(job.workload, job.length, job.seed)
    prefetcher = build_prefetcher(job.prefetcher, job.workload)
    run = SimulationDriver(job.system, prefetcher, record_service=True).run(trace)
    warm = int(len(trace) * float(job.param("warmup_fraction", 0.0)))
    name = job.prefetcher.kind if job.prefetcher else "none"
    return simulate_timing(
        trace,
        run.service,
        job.system.timing,
        prefetcher_name=name,
        measure_from=warm,
    )


def _run_joint(job: SimJob) -> Any:
    trace = materialized_trace(job.workload, job.length, job.seed)
    return joint_coverage_analysis(
        trace, job.system, skip_fraction=float(job.param("skip_fraction", 0.0))
    )


def _run_repetition(job: SimJob) -> Any:
    trace = materialized_trace(job.workload, job.length, job.seed)
    return repetition_analysis(
        trace, job.system, max_elements=int(job.param("max_elements", 60000))
    )


def _run_correlation(job: SimJob) -> Any:
    trace = materialized_trace(job.workload, job.length, job.seed)
    return correlation_distance_analysis(trace, job.system)


_EXECUTORS: Dict[str, Callable[[SimJob], Any]] = {
    KIND_COVERAGE: _run_coverage,
    KIND_TIMING: _run_timing,
    KIND_JOINT: _run_joint,
    KIND_REPETITION: _run_repetition,
    KIND_CORRELATION: _run_correlation,
}


def execute_job(job: SimJob) -> Any:
    """Run one job to completion and return its result dataclass."""
    return _EXECUTORS[job.kind](job)


def execute_job_with_hash(job: SimJob) -> "tuple[str, Any]":
    """Pool-friendly wrapper: pairs the result with the job's hash."""
    return job.job_hash, execute_job(job)
