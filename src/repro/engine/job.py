"""Job descriptions: what to simulate, hashed for dedup and caching.

A :class:`SimJob` is a pure *description* — workload, trace length, seed,
system configuration, prefetcher specification and kind-specific
parameters — with no behaviour attached. Execution lives in
:mod:`repro.engine.exec`; describing work separately from running it is
what lets the engine deduplicate identical runs across experiments,
farm jobs out to worker processes, and key an on-disk result cache.

Every job has a stable content hash derived from the canonical JSON form
of its fields, so the same experiment declared twice — or declared by
two different figures — maps to the same hash (and therefore the same
simulation and cache entry) regardless of declaration order or process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

from repro.common.config import SystemConfig

#: a SimulationDriver coverage run (CoverageResult)
KIND_COVERAGE = "coverage"
#: a coverage run with service recording plus the timing model (TimingResult)
KIND_TIMING = "timing"
#: the Fig. 6 idealized joint-predictability analysis (JointCoverageResult)
KIND_JOINT = "joint"
#: the Fig. 7 Sequitur repetition analysis (RepetitionBreakdown pair)
KIND_REPETITION = "repetition"
#: the Fig. 8 correlation-distance analysis (CorrelationDistanceResult)
KIND_CORRELATION = "correlation"

JOB_KINDS = (
    KIND_COVERAGE,
    KIND_TIMING,
    KIND_JOINT,
    KIND_REPETITION,
    KIND_CORRELATION,
)

#: predictor kinds build_prefetcher() can construct
PREFETCHER_KINDS = (
    "none", "stride", "markov", "ghb", "tms", "sms", "stems", "hybrid",
)
#: the subset whose config dataclass accepts ``overrides``
CONFIGURABLE_PREFETCHER_KINDS = ("tms", "sms", "stems")


@dataclass(frozen=True)
class PrefetcherSpec:
    """Declarative prefetcher choice for a job.

    ``overrides`` is a sorted tuple of ``(field, value)`` pairs applied to
    the predictor's config dataclass (e.g. ``(("lookahead", 16),)`` for a
    sensitivity sweep point); tuples keep the spec hashable and
    canonical. Only the kinds in :data:`CONFIGURABLE_PREFETCHER_KINDS`
    consume overrides — a spec that would silently drop them is rejected
    at construction so a sweep can't degenerate into N identical runs.
    """

    kind: str = "none"
    with_stride: bool = False
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in PREFETCHER_KINDS:
            raise ValueError(
                f"unknown prefetcher kind {self.kind!r}; "
                f"choose from {PREFETCHER_KINDS}"
            )
        if self.overrides and self.kind not in CONFIGURABLE_PREFETCHER_KINDS:
            raise ValueError(
                f"prefetcher kind {self.kind!r} does not take config "
                f"overrides (got {dict(self.overrides)}); only "
                f"{CONFIGURABLE_PREFETCHER_KINDS} do"
            )

    @staticmethod
    def make(
        kind: str, with_stride: bool = False, **overrides: Any
    ) -> "PrefetcherSpec":
        return PrefetcherSpec(
            kind=kind,
            with_stride=with_stride,
            overrides=tuple(sorted(overrides.items())),
        )


@dataclass(frozen=True)
class SimJob:
    """One unit of simulation work, identified by its content.

    A job is pure data — executable anywhere, by any process, with a
    bit-identical result. Fractional knobs (``skip_fraction``,
    ``warmup_fraction``) are resolved against the *requested* ``length``
    at execution time, so streaming and materialized runs agree without
    either needing the generated trace's exact final length.

    Attributes:
        kind: one of :data:`JOB_KINDS` (what to compute).
        workload: name from the ten-workload suite.
        length: requested trace length in accesses (generators may
            overshoot by up to one burst).
        seed: trace-generation seed.
        system: full system configuration the job runs under.
        prefetcher: declarative predictor choice, or None for baseline.
        params: kind-specific knobs (``skip_fraction`` for joint
            analysis, ``warmup_fraction`` for timing, ``max_elements``
            for repetition) as sorted ``(name, value)`` pairs.
    """

    kind: str
    workload: str
    length: int
    seed: int
    system: SystemConfig
    prefetcher: Optional[PrefetcherSpec] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; choose from {JOB_KINDS}"
            )

    @staticmethod
    def make(
        kind: str,
        workload: str,
        length: int,
        seed: int,
        system: SystemConfig,
        prefetcher: Optional[PrefetcherSpec] = None,
        **params: Any,
    ) -> "SimJob":
        """Build a job with ``params`` canonicalized into sorted pairs.

        Args:
            kind: one of :data:`JOB_KINDS`.
            workload: workload name.
            length: requested trace length in accesses.
            seed: trace-generation seed.
            system: system configuration.
            prefetcher: predictor spec, or None for the baseline.
            **params: kind-specific knobs, stored sorted by name.

        Returns:
            The frozen, hashable job description.
        """
        return SimJob(
            kind=kind,
            workload=workload,
            length=length,
            seed=seed,
            system=system,
            prefetcher=prefetcher,
            params=tuple(sorted(params.items())),
        )

    def param(self, name: str, default: Any = None) -> Any:
        """The kind-specific knob ``name``, or ``default`` if unset."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def trace_key(self) -> Tuple[str, int, int]:
        """The ``(workload, length, seed)`` triple naming this job's trace.

        Trace generation is seed-deterministic, so any two jobs with
        equal trace keys walk bit-identical access sequences no matter
        which process generates them. The key is the unit of sharing in
        the trace plane: the serial engine fans one generation pass out
        to every pending job with the same key, and the
        :class:`~repro.tracestore.TraceStore` records/replays one binary
        trace file per key (its entry name is a stable hash of exactly
        this triple). The key deliberately excludes the system config,
        prefetcher and kind-specific params — those change what a job
        *computes* over the trace, never the trace itself.
        """
        return (self.workload, self.length, self.seed)

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON-able description (the hash input)."""
        return {
            "kind": self.kind,
            "workload": self.workload,
            "length": self.length,
            "seed": self.seed,
            "system": dataclasses.asdict(self.system),
            "prefetcher": (
                dataclasses.asdict(self.prefetcher) if self.prefetcher else None
            ),
            "params": [list(pair) for pair in self.params],
        }

    @property
    def job_hash(self) -> str:
        return _job_hash(self)

    def label(self) -> str:
        """Short human-readable identity for logs and progress output."""
        spec = self.prefetcher
        prefetcher = spec.kind if spec else "none"
        if spec and spec.with_stride:
            prefetcher += "+stride"
        if spec and spec.overrides:
            prefetcher += "[" + ",".join(f"{k}={v}" for k, v in spec.overrides) + "]"
        return f"{self.kind}:{self.workload}:{prefetcher}"


@lru_cache(maxsize=4096)
def _job_hash(job: SimJob) -> str:
    # no default=: a non-JSON field value must fail loudly here rather
    # than hash (and cache) under a lossy string form
    payload = json.dumps(job.describe(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()
