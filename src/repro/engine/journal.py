"""Durable runs: the crash-safe write-ahead run journal.

Every journaled sweep lives under ``<cache-dir>/runs/<run_id>/`` as two
files:

``journal.jsonl``
    An append-only write-ahead log. Each line is one event, framed as
    ``<crc32 hex8> <canonical JSON>`` and fsync'd before the engine
    moves on, so the log survives a SIGKILL, an OOM kill or a power cut
    with at worst one torn trailing line (which readers detect and drop
    — everything before it is trustworthy). The first event is the run
    header (argv, config hash, package/cache/store versions); the rest
    are job lifecycle events: ``job_scheduled`` (with the job's full
    canonical description, so the graph can be rebuilt from the journal
    alone), ``attempt_started`` / ``attempt_failed``, and
    ``job_completed`` — written only *after* the result is durably in
    the result cache, with the cache shard it landed in.

``manifest.json``
    A small atomically-replaced summary (run id, status, pid, progress
    counters) so ``--list-runs`` and ``repro-fsck`` can classify runs
    without replaying journals. Status moves ``running →
    clean | degraded | failed | interrupted``; a manifest still claiming
    ``running`` for a dead pid is a crashed — and therefore resumable —
    run.

Resume (:mod:`repro.experiments.runner` ``--resume <run_id|last>``)
rebuilds the :class:`~repro.engine.graph.JobGraph` from the journal's
``job_scheduled`` descriptions via :func:`job_from_description`,
cross-checks journaled completions against the result cache, and
re-executes only the jobs with no durable result — jobs are pure and
traces seed-deterministic, so the resumed run is bit-identical to an
uninterrupted one.

:class:`GracefulShutdown` is the signal side of durability: the first
SIGINT/SIGTERM sets a cooperative event the engine polls between job
dispatches (drain, flush, exit with the resumable code 3); a second
SIGINT hard-aborts.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import sys
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import __version__ as _PACKAGE_VERSION
from repro.common.addresses import AddressMap
from repro.common.config import CacheConfig, SystemConfig, TimingConfig
from repro.engine.cache import CACHE_VERSION
from repro.engine.faults import JobFailure
from repro.engine.job import PrefetcherSpec, SimJob
from repro.tracestore.store import STORE_VERSION

#: subdirectory of a cache dir holding one directory per journaled run
RUNS_DIR = "runs"
JOURNAL_NAME = "journal.jsonl"
MANIFEST_NAME = "manifest.json"

#: bumped when the event schema changes incompatibly
JOURNAL_VERSION = 1

#: terminal manifest statuses (anything else means the run never ended
#: cleanly — still running, or crashed with the status stuck at running)
TERMINAL_STATUSES = ("clean", "degraded", "failed", "interrupted")


class JournalError(ValueError):
    """A journal or manifest is structurally unusable."""


def new_run_id() -> str:
    """A filesystem-safe, time-sortable identifier for one run."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{os.getpid()}-{os.urandom(2).hex()}"


def runs_root(cache_dir: Union[str, Path]) -> Path:
    """Where a cache directory keeps its journaled runs."""
    return Path(cache_dir) / RUNS_DIR


def config_hash(config: Any) -> str:
    """Stable content hash of an experiment config dataclass."""
    import hashlib

    payload = json.dumps(dataclasses.asdict(config), sort_keys=True,
                         default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


# -- line framing -----------------------------------------------------------


def encode_line(event: Dict[str, Any]) -> str:
    """One event as a CRC-framed journal line (without the newline)."""
    payload = json.dumps(event, sort_keys=True, separators=(",", ":"))
    return f"{zlib.crc32(payload.encode()):08x} {payload}"


def decode_line(line: str) -> Dict[str, Any]:
    """Parse one framed line; raises :class:`JournalError` on damage."""
    crc_hex, sep, payload = line.partition(" ")
    if not sep or len(crc_hex) != 8:
        raise JournalError("missing CRC frame")
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        raise JournalError("bad CRC field") from None
    if zlib.crc32(payload.encode()) != expected:
        raise JournalError("CRC mismatch")
    try:
        event = json.loads(payload)
    except ValueError:
        raise JournalError("bad event JSON") from None
    if not isinstance(event, dict):
        raise JournalError("event is not an object")
    return event


# -- writer -----------------------------------------------------------------


class RunJournal:
    """Write-ahead journal + manifest for one run (the writer side).

    Create with :meth:`create`; every ``append`` is flushed and fsync'd
    before returning, so an event the engine has moved past is durable.
    The journal is a context manager; :meth:`finish` (or
    :meth:`close`) releases the file handle.
    """

    def __init__(self, directory: Union[str, Path], run_id: str,
                 fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.run_id = run_id
        self.fsync = fsync
        self.jobs_scheduled = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self._handle = (self.directory / JOURNAL_NAME).open(
            "a", encoding="utf-8"
        )

    @staticmethod
    def create(
        root: Union[str, Path],
        run_id: Optional[str] = None,
        header: Optional[Dict[str, Any]] = None,
        fsync: bool = True,
    ) -> "RunJournal":
        """Start a new journaled run under ``root`` (the runs directory).

        Args:
            root: the runs root (``<cache-dir>/runs``), created if
                missing.
            run_id: explicit identifier (must be new), or None for an
                auto-generated one.
            header: extra run-header fields (argv, experiments, config
                hash…) recorded in the ``run_started`` event and
                mirrored into the manifest.
            fsync: set False to skip the per-event fsync (tests only —
                crash safety is the point of the journal).

        Raises:
            JournalError: when ``run_id`` is unusable or already taken.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        if run_id is not None:
            if not run_id or any(
                c not in "abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
                for c in run_id
            ):
                raise JournalError(
                    f"run id {run_id!r} is not filesystem-safe "
                    "(use letters, digits, '.', '_', '-')"
                )
            directory = root / run_id
            if directory.exists():
                raise JournalError(f"run {run_id!r} already exists")
        else:
            while True:
                run_id = new_run_id()
                directory = root / run_id
                if not directory.exists():
                    break
        directory.mkdir(parents=True)
        journal = RunJournal(directory, run_id, fsync=fsync)
        started = time.strftime("%Y-%m-%dT%H:%M:%S")
        event: Dict[str, Any] = {
            "event": "run_started",
            "journal": JOURNAL_VERSION,
            "run_id": run_id,
            "started": started,
            "started_unix": time.time(),
            "pid": os.getpid(),
            "versions": {
                "repro": _PACKAGE_VERSION,
                "cache": CACHE_VERSION,
                "store": STORE_VERSION,
                "python": sys.version.split()[0],
            },
        }
        event.update(header or {})
        journal.header = event
        journal.append(event)
        journal._write_manifest("running")
        return journal

    # -- low-level ---------------------------------------------------------

    def append(self, event: Dict[str, Any]) -> None:
        """Write one event durably (flush + fsync before returning).

        Every event gets a ``t`` epoch timestamp (µs resolution) unless
        the caller supplied one — the telemetry plane's ``repro-report``
        derives queueing and attempt durations from these, and readers
        use ``.get`` so journals from before the field remain valid.
        """
        event.setdefault("t", round(time.time(), 6))
        self._handle.write(encode_line(event) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def _write_manifest(self, status: str,
                        extra: Optional[Dict[str, Any]] = None) -> None:
        header = getattr(self, "header", {})
        manifest = {
            "run_id": self.run_id,
            "status": status,
            "pid": os.getpid(),
            "started": header.get("started"),
            "started_unix": header.get("started_unix"),
            "argv": header.get("argv"),
            "experiments": header.get("experiments"),
            "repro": _PACKAGE_VERSION,
            "jobs_scheduled": self.jobs_scheduled,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
        }
        manifest.update(extra or {})
        write_manifest(self.directory, manifest, fsync=self.fsync)

    # -- lifecycle events ---------------------------------------------------

    def job_scheduled(self, job: SimJob) -> None:
        """WAL intent: ``job`` is part of this run (full description)."""
        self.jobs_scheduled += 1
        self.append({
            "event": "job_scheduled",
            "job": job.job_hash,
            "label": job.label(),
            "trace_key": list(job.trace_key),
            "describe": job.describe(),
        })

    def attempt_started(self, job_hash: str, attempt: int) -> None:
        self.append({
            "event": "attempt_started", "job": job_hash, "attempt": attempt,
        })

    def attempt_failed(self, job_hash: str, attempt: int,
                       error: str) -> None:
        self.append({
            "event": "attempt_failed", "job": job_hash, "attempt": attempt,
            "error": error,
        })

    def job_completed(self, job: SimJob, shard: Optional[Path] = None,
                      source: str = "executed") -> None:
        """``job`` has a durable result (cache shard written, or served
        from the cache). Only ever written *after* the store succeeds —
        the completion is the commit record."""
        self.jobs_completed += 1
        self.append({
            "event": "job_completed",
            "job": job.job_hash,
            "source": source,
            "shard": str(shard) if shard is not None else None,
        })

    def job_failed(self, failure: JobFailure) -> None:
        """``job`` exhausted its retries (a resume re-attempts it)."""
        self.jobs_failed += 1
        self.append({
            "event": "job_failed",
            "job": failure.job_hash,
            "attempts": failure.attempts,
            "error": f"{failure.error_type}: {failure.error}",
        })

    def finish(self, status: str,
               stats: Optional[Dict[str, Any]] = None) -> None:
        """Seal the run: terminal event + manifest status + close."""
        if status not in TERMINAL_STATUSES:
            raise JournalError(f"not a terminal status: {status!r}")
        event: Dict[str, Any] = {
            "event": "run_finished",
            "status": status,
            "finished": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        if stats:
            event["stats"] = stats
        self.append(event)
        self._write_manifest(status, {"finished": event["finished"]})
        self.close()

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def write_manifest(directory: Union[str, Path], manifest: Dict[str, Any],
                   fsync: bool = True) -> Path:
    """Atomically (re)write a run directory's manifest."""
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


# -- reader -----------------------------------------------------------------


@dataclass
class JournalDamage:
    """Where (and how) a journal stopped being readable."""

    line: int                 #: 1-based line number of the first bad line
    reason: str
    torn_tail: bool           #: damage is the file's final line (normal
    #: crash evidence) rather than mid-file corruption


@dataclass
class RunRecord:
    """Everything a reader can recover about one journaled run."""

    run_id: str
    directory: Path
    manifest: Dict[str, Any] = field(default_factory=dict)
    header: Dict[str, Any] = field(default_factory=dict)
    scheduled: "Dict[str, Dict[str, Any]]" = field(default_factory=dict)
    labels: Dict[str, str] = field(default_factory=dict)
    completed: "Dict[str, str]" = field(default_factory=dict)  # hash→source
    failed: "Dict[str, str]" = field(default_factory=dict)     # hash→error
    attempts: Dict[str, int] = field(default_factory=dict)
    finished_status: Optional[str] = None
    damage: Optional[JournalDamage] = None
    valid_bytes: int = 0      #: byte length of the journal's valid prefix

    @property
    def argv(self) -> List[str]:
        argv = self.header.get("argv") or self.manifest.get("argv")
        if not isinstance(argv, list):
            raise JournalError(
                f"run {self.run_id}: no recorded argv (header lost?)"
            )
        return [str(part) for part in argv]

    @property
    def started(self) -> str:
        return str(self.header.get("started")
                   or self.manifest.get("started") or "")

    @property
    def started_unix(self) -> float:
        """Sub-second start time — what ``last`` selection orders by
        (the human-readable ``started`` only has 1s resolution)."""
        try:
            return float(self.header.get("started_unix")
                         or self.manifest.get("started_unix") or 0.0)
        except (TypeError, ValueError):
            return 0.0

    def incomplete(self) -> List[str]:
        """Scheduled jobs with no durable completion, journal order."""
        return [h for h in self.scheduled if h not in self.completed]

    def status(self) -> str:
        """Effective status, preferring the manifest but detecting
        crashes: ``running`` with a dead pid means the process died
        without sealing the run."""
        status = str(self.manifest.get("status") or "unknown")
        if status == "running" and not _pid_alive(self.manifest.get("pid")):
            return "crashed"
        return status

    def resumable(self) -> bool:
        return self.status() in ("interrupted", "crashed") or (
            self.status() in ("degraded", "failed") and bool(self.failed)
        ) or bool(self.incomplete()) and self.status() != "running"

    def jobs(self) -> List[SimJob]:
        """The run's job graph, rebuilt from the journal descriptions.

        Raises:
            JournalError: when a description no longer reproduces its
                recorded content hash (schema drift or a forged line).
        """
        out = []
        for job_hash, describe in self.scheduled.items():
            job = job_from_description(describe)
            if job.job_hash != job_hash:
                raise JournalError(
                    f"run {self.run_id}: job {job_hash[:12]} does not "
                    "rebuild to its recorded hash (incompatible schema?)"
                )
            out.append(job)
        return out


def _pid_alive(pid: Any) -> bool:
    if not isinstance(pid, int) or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by other
        return True
    return True


def read_journal(path: Union[str, Path]) -> "Tuple[List[Dict[str, Any]], Optional[JournalDamage], int]":
    """Parse a journal file's valid prefix.

    Returns:
        ``(events, damage, valid_bytes)`` — every event before the first
        damaged line, a :class:`JournalDamage` describing that line (or
        None for a fully clean file), and the byte length of the valid
        prefix (what ``repro-fsck --repair`` truncates to).
    """
    path = Path(path)
    events: List[Dict[str, Any]] = []
    damage: Optional[JournalDamage] = None
    valid_bytes = 0
    with path.open("rb") as handle:
        raw = handle.read()
    lines = raw.split(b"\n")
    # a trailing newline leaves one empty terminal element — not a line
    if lines and lines[-1] == b"":
        lines.pop()
    offset = 0
    for number, blob in enumerate(lines, start=1):
        line_bytes = len(blob) + 1  # + the newline
        terminated = offset + line_bytes <= len(raw)
        try:
            if not terminated:
                raise JournalError("unterminated line (torn write)")
            events.append(decode_line(blob.decode("utf-8", "strict")))
        except (JournalError, UnicodeDecodeError) as error:
            damage = JournalDamage(
                line=number,
                reason=str(error),
                torn_tail=(number == len(lines)),
            )
            break
        offset += line_bytes
        valid_bytes = offset
    return events, damage, valid_bytes


def load_run(run_dir: Union[str, Path]) -> RunRecord:
    """Read one run directory (journal + manifest) into a record.

    Tolerates a missing or corrupt manifest (derived fields fall back to
    the journal header) and a damaged journal (the valid prefix is
    used); raises :class:`JournalError` only when the journal itself is
    absent.
    """
    run_dir = Path(run_dir)
    journal_path = run_dir / JOURNAL_NAME
    if not journal_path.is_file():
        raise JournalError(f"{run_dir}: no {JOURNAL_NAME}")
    record = RunRecord(run_id=run_dir.name, directory=run_dir)
    manifest_path = run_dir / MANIFEST_NAME
    if manifest_path.is_file():
        try:
            loaded = json.loads(manifest_path.read_text())
            if isinstance(loaded, dict):
                record.manifest = loaded
        except (OSError, ValueError):
            pass  # fsck reports it; the journal remains authoritative
    events, record.damage, record.valid_bytes = read_journal(journal_path)
    for event in events:
        kind = event.get("event")
        if kind == "run_started":
            record.header = event
        elif kind == "job_scheduled":
            job_hash = str(event.get("job"))
            describe = event.get("describe")
            if isinstance(describe, dict):
                record.scheduled[job_hash] = describe
            record.labels[job_hash] = str(event.get("label", job_hash[:12]))
        elif kind == "attempt_started":
            job_hash = str(event.get("job"))
            record.attempts[job_hash] = max(
                record.attempts.get(job_hash, 0), int(event.get("attempt", 1))
            )
        elif kind == "job_completed":
            record.completed[str(event.get("job"))] = str(
                event.get("source", "executed")
            )
            record.failed.pop(str(event.get("job")), None)
        elif kind == "job_failed":
            record.failed[str(event.get("job"))] = str(event.get("error", ""))
        elif kind == "run_finished":
            record.finished_status = str(event.get("status"))
    return record


def list_runs(root: Union[str, Path]) -> List[RunRecord]:
    """Every readable run under the runs root, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    records = []
    for run_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        try:
            records.append(load_run(run_dir))
        except JournalError:
            continue  # fsck's department
    records.sort(key=lambda r: (r.started_unix, r.started, r.run_id))
    return records


def find_run(root: Union[str, Path], selector: str) -> RunRecord:
    """Resolve ``--resume``'s argument: a run id, or ``last``.

    ``last`` picks the most recently started readable run.

    Raises:
        JournalError: when nothing matches.
    """
    root = Path(root)
    if selector == "last":
        records = list_runs(root)
        if not records:
            raise JournalError(f"no journaled runs under {root}")
        return records[-1]
    run_dir = root / selector
    if not run_dir.is_dir():
        known = ", ".join(r.run_id for r in list_runs(root)[-5:]) or "none"
        raise JournalError(
            f"no run {selector!r} under {root} (recent: {known})"
        )
    return load_run(run_dir)


def mark_resumed(record: RunRecord, resumed_by: str) -> None:
    """Annotate a superseded run's manifest with its successor."""
    manifest = dict(record.manifest)
    manifest.setdefault("run_id", record.run_id)
    manifest["resumed_by"] = resumed_by
    write_manifest(record.directory, manifest)


# -- job reconstruction -----------------------------------------------------


def job_from_description(describe: Dict[str, Any]) -> SimJob:
    """Rebuild a :class:`SimJob` from its canonical JSON description.

    The inverse of :meth:`SimJob.describe` — what lets ``--resume``
    reconstruct the job graph from the journal alone. Callers should
    verify ``job.job_hash`` against the recorded hash.
    """
    system_desc = describe["system"]
    system = SystemConfig(
        l1=CacheConfig(**system_desc["l1"]),
        l2=CacheConfig(**system_desc["l2"]),
        address_map=AddressMap(**system_desc["address_map"]),
        svb_entries=int(system_desc["svb_entries"]),
        timing=TimingConfig(**system_desc["timing"]),
    )
    prefetcher = None
    spec_desc = describe.get("prefetcher")
    if spec_desc is not None:
        prefetcher = PrefetcherSpec(
            kind=spec_desc["kind"],
            with_stride=bool(spec_desc["with_stride"]),
            overrides=tuple(
                (str(name), value) for name, value in spec_desc["overrides"]
            ),
        )
    return SimJob(
        kind=describe["kind"],
        workload=describe["workload"],
        length=int(describe["length"]),
        seed=int(describe["seed"]),
        system=system,
        prefetcher=prefetcher,
        params=tuple(
            (str(name), value) for name, value in describe.get("params", [])
        ),
    )


# -- graceful shutdown ------------------------------------------------------


class GracefulShutdown:
    """Two-stage signal policy for journaled runs.

    The first SIGINT (or SIGTERM) sets :attr:`event` — the engine polls
    it between job dispatches, stops scheduling new work, cancels
    in-flight futures, and raises
    :class:`~repro.engine.faults.RunInterrupted` so the runner can seal
    the journal and exit with the resumable code 3. A second SIGINT
    skips the drain entirely: the previous handler is restored and
    ``KeyboardInterrupt`` raised on the spot (hard abort).
    """

    def __init__(self) -> None:
        self.event = threading.Event()
        self._previous: Dict[int, Any] = {}

    def install(self) -> "GracefulShutdown":
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        return self

    def uninstall(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        self._previous.clear()

    def _handle(self, signum: int, frame: Any) -> None:
        if self.event.is_set() and signum == signal.SIGINT:
            previous = self._previous.get(signal.SIGINT)
            signal.signal(
                signal.SIGINT, previous or signal.default_int_handler
            )
            raise KeyboardInterrupt
        self.event.set()
        name = signal.Signals(signum).name
        print(
            f"[{name}: finishing the current job, flushing the journal "
            "(^C again to hard-abort)]",
            file=sys.stderr,
        )

    def __enter__(self) -> "GracefulShutdown":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()
