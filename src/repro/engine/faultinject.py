"""Deterministic fault injection: exercise every recovery path on demand.

Enabled by the ``REPRO_FAULT_INJECT`` environment variable (inherited by
pool workers), whose value is a comma-separated spec string::

    REPRO_FAULT_INJECT="worker_crash:0.1@seed=7,trace_corrupt:1"

Each clause is ``kind[:rate][@param=value[@param=value…]]`` — ``rate``
is the per-opportunity firing probability (default 1). Supported kinds:

``worker_crash``
    A pool worker calls ``os._exit`` before executing the job (the
    parent sees a ``BrokenProcessPool``); in serial mode the same draw
    raises :class:`InjectedCrash` so serial and parallel runs exercise
    their respective recovery paths on the *same* jobs.
``job_fail``
    Job execution raises :class:`InjectedFault` (a clean exception, no
    process damage) — exercises the retry/`JobFailure` ladder.
``stall``
    Job execution sleeps ``secs`` (default 30, ``stall:0.5@secs=5``)
    before running — exercises the per-job timeout kill/requeue path.

The three execution-side kinds also accept ``@max_attempt=N``: the
fault is suppressed on attempts beyond ``N``, so
``job_fail:1@max_attempt=2`` fails every job's first two attempts and
lets the third succeed — a fully deterministic retry-ladder vector.
``trace_corrupt``
    A freshly recorded trace-store entry has payload bytes flipped on
    disk — exercises CRC rejection, quarantine, and regeneration.
``cache_corrupt``
    A freshly stored result-cache shard is truncated to garbage —
    exercises the corrupt-shard warning, quarantine, and re-execution.
``kill_at_job``
    The *parent* process dies with ``os._exit`` (no cleanup, no atexit,
    no journal sealing — a faithful SIGKILL/power-cut stand-in) the
    moment the engine dispatches its N-th job, where N is the
    ``@index=N`` parameter (1-based, default 1). Unlike the other kinds
    this one counts dispatches rather than drawing per site, so "crash
    at an arbitrary point mid-sweep" is exactly reproducible — the
    vector behind the crash → ``--resume`` → bit-identical-parity tests.
``reader_kill``
    A broadcast *reader* process (:mod:`repro.tracestore.broadcast`)
    dies with ``os._exit`` the moment it has broadcast its N-th chunk
    (``@after=N``, 1-based, default 1) — a SIGKILL mid-stream. Like
    ``kill_at_job`` it is positional, not probabilistic: the vector
    behind the reader-death → consumers-degrade-to-replay →
    bit-identical-parity tests.

Every decision is a pure function of ``(kind, site key, attempt,
seed)`` via a sha256 draw — no global RNG state — so an injected run is
exactly repeatable in any process and any execution order. File
corruption additionally leaves a ``<name>.faulted`` marker next to the
target so each path is damaged **at most once**: the regenerated
replacement stays clean and the run converges. A run with faults
injected therefore completes with results bit-identical to a clean run;
only the recovery counters differ (that equivalence is what
``tests/test_faults.py`` and ``benchmarks/faults_smoke.py`` assert).
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.engine.faults import _unit_draw

ENV_VAR = "REPRO_FAULT_INJECT"

FAULT_KINDS = (
    "worker_crash", "job_fail", "stall", "trace_corrupt", "cache_corrupt",
    "kill_at_job", "reader_kill",
)

#: exit status an injected worker crash dies with (diagnostic only)
CRASH_EXIT_CODE = 113

#: exit status an injected whole-process kill dies with (``kill_at_job``)
KILL_EXIT_CODE = 86

#: dispatch counter backing ``kill_at_job`` (parent process only)
_DISPATCHES = 0

#: chunks-broadcast counter backing ``reader_kill`` (reader process only)
_READER_CHUNKS = 0


class InjectedFault(RuntimeError):
    """A clean injected job failure (the retry ladder's test vector)."""


class InjectedCrash(InjectedFault):
    """A serial-mode stand-in for a worker crash."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed clause of the injection spec string."""

    kind: str
    rate: float = 1.0
    params: Tuple[Tuple[str, str], ...] = ()

    def param(self, name: str, default: str = "") -> str:
        for key, value in self.params:
            if key == name:
                return value
        return default


class FaultPlan:
    """The parsed spec: which faults fire, where, with what seed."""

    def __init__(self, specs: Dict[str, FaultSpec], seed: int = 0) -> None:
        self.specs = specs
        self.seed = seed

    def __bool__(self) -> bool:
        return bool(self.specs)

    def spec(self, kind: str) -> Optional[FaultSpec]:
        return self.specs.get(kind)

    def fires(self, kind: str, site: str, attempt: int = 0) -> bool:
        """Deterministically decide whether ``kind`` fires at ``site``."""
        spec = self.specs.get(kind)
        if spec is None:
            return False
        return _unit_draw(kind, site, attempt, self.seed) < spec.rate

    @staticmethod
    def parse(text: str) -> "FaultPlan":
        """Parse a spec string (raises ``ValueError`` on a bad clause)."""
        specs: Dict[str, FaultSpec] = {}
        seed = 0
        for clause in filter(None, (c.strip() for c in text.split(","))):
            head, *param_parts = clause.split("@")
            kind, _, rate_text = head.partition(":")
            kind = kind.strip()
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in {ENV_VAR} "
                    f"(choose from {FAULT_KINDS})"
                )
            try:
                rate = float(rate_text) if rate_text else 1.0
            except ValueError:
                raise ValueError(
                    f"bad rate {rate_text!r} for fault {kind!r}"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"fault rate must be in [0, 1], got {rate} for {kind!r}"
                )
            params = []
            for part in param_parts:
                name, sep, value = part.partition("=")
                if not sep or not name:
                    raise ValueError(
                        f"bad fault parameter {part!r} for {kind!r} "
                        "(expected name=value)"
                    )
                if name == "seed":
                    seed = int(value)
                else:
                    params.append((name, value))
            specs[kind] = FaultSpec(kind=kind, rate=rate,
                                    params=tuple(params))
        return FaultPlan(specs, seed=seed)


_CACHED: Optional[Tuple[str, FaultPlan]] = None


def active_plan() -> FaultPlan:
    """The plan from ``REPRO_FAULT_INJECT``, re-parsed when the variable
    changes (cheap per-call check, so tests can flip it at runtime)."""
    global _CACHED, _DISPATCHES, _READER_CHUNKS
    text = os.environ.get(ENV_VAR, "").strip()
    if _CACHED is None or _CACHED[0] != text:
        _CACHED = (text, FaultPlan.parse(text) if text else FaultPlan({}))
        _DISPATCHES = 0  # a new plan restarts the positional countdowns
        _READER_CHUNKS = 0
    return _CACHED[1]


def _in_pool_worker() -> bool:
    """True inside a ``ProcessPoolExecutor``/multiprocessing child."""
    import multiprocessing

    return multiprocessing.parent_process() is not None


def maybe_fail_job(job_hash: str, attempt: int) -> None:
    """Execution-side injection point, called once per job attempt.

    Order: ``stall`` (sleep) first, then ``worker_crash`` (process
    death in a pool worker, :class:`InjectedCrash` serially), then
    ``job_fail``. The attempt number is folded into every draw, so a
    retried job re-rolls rather than failing forever.
    """
    plan = active_plan()
    if not plan:
        return

    def armed(kind: str) -> bool:
        if not plan.fires(kind, job_hash, attempt):
            return False
        cap = plan.spec(kind).param("max_attempt")
        return not cap or attempt <= int(cap)

    if armed("stall"):
        time.sleep(float(plan.spec("stall").param("secs", "30")))
    if armed("worker_crash"):
        if _in_pool_worker():
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrash(
            f"injected worker crash (job {job_hash[:12]}, attempt {attempt})"
        )
    if armed("job_fail"):
        raise InjectedFault(
            f"injected job failure (job {job_hash[:12]}, attempt {attempt})"
        )


def maybe_kill_run() -> None:
    """Whole-process kill point, called once per engine job dispatch.

    With ``kill_at_job@index=N`` active, the N-th dispatch (1-based,
    counted in the parent only — pool workers never kill the run)
    terminates the process via ``os._exit`` with
    :data:`KILL_EXIT_CODE`: no finalizers, no journal sealing, exactly
    the footprint of a SIGKILL mid-sweep. The rate field is ignored —
    this kind is positional, not probabilistic.
    """
    global _DISPATCHES
    plan = active_plan()
    spec = plan.spec("kill_at_job")
    if spec is None or _in_pool_worker():
        return
    _DISPATCHES += 1
    if _DISPATCHES == int(spec.param("index", "1")):
        sys.stderr.write(
            f"[faultinject: kill_at_job fired at dispatch {_DISPATCHES}]\n"
        )
        sys.stderr.flush()
        # take live pool workers down too — a real SIGKILL of the run
        # kills the whole process group, and orphaned workers would
        # otherwise linger forever holding inherited pipe fds (hanging
        # any harness that reads our stdout/stderr to EOF)
        import multiprocessing

        for child in multiprocessing.active_children():
            try:
                child.kill()
            except (OSError, ValueError):
                pass
        os._exit(KILL_EXIT_CODE)


def maybe_kill_reader() -> None:
    """Broadcast-reader kill point, called once per broadcast chunk.

    With ``reader_kill@after=N`` active, the N-th chunk a reader
    broadcasts (1-based, counted per reader process) terminates the
    reader via ``os._exit`` with :data:`CRASH_EXIT_CODE` — a faithful
    SIGKILL mid-stream: no sentinel reaches the ring, so consumers
    discover the death by timeout and degrade to independent replay.
    Positional like ``kill_at_job``; the rate field is ignored.
    """
    global _READER_CHUNKS
    plan = active_plan()
    spec = plan.spec("reader_kill")
    if spec is None:
        return
    _READER_CHUNKS += 1
    if _READER_CHUNKS == int(spec.param("after", "1")):
        sys.stderr.write(
            f"[faultinject: reader_kill fired after chunk {_READER_CHUNKS}]\n"
        )
        sys.stderr.flush()
        os._exit(CRASH_EXIT_CODE)


def _already_faulted(path: Path) -> bool:
    return path.with_name(path.name + ".faulted").exists()


def _mark_faulted(path: Path) -> None:
    path.with_name(path.name + ".faulted").write_text("injected\n")


def maybe_corrupt_trace(path: Union[str, Path]) -> bool:
    """Flip payload bytes of a just-published trace entry (once per path).

    Damages the middle of the file — past the header, ahead of the
    footer — so structural checks pass and the CRC catches it mid-walk,
    which is the hardest corruption mode to recover from.

    Returns:
        True when the file was corrupted.
    """
    plan = active_plan()
    path = Path(path)
    if not plan.fires("trace_corrupt", path.name) or _already_faulted(path):
        return False
    try:
        size = path.stat().st_size
        with path.open("r+b") as handle:
            handle.seek(size // 2)
            chunk = handle.read(8)
            handle.seek(size // 2)
            handle.write(bytes(b ^ 0xFF for b in chunk))
    except OSError:
        return False
    _mark_faulted(path)
    return True


def maybe_corrupt_cache(path: Union[str, Path]) -> bool:
    """Truncate a just-stored cache shard to garbage (once per path)."""
    plan = active_plan()
    path = Path(path)
    if not plan.fires("cache_corrupt", path.name) or _already_faulted(path):
        return False
    try:
        path.write_text("{corrupt-by-fault-injection")
    except OSError:
        return False
    _mark_faulted(path)
    return True
