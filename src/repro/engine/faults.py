"""Fault-tolerance primitives for the execution plane.

This module is the policy layer the engine's recovery paths share:

* :class:`RetryPolicy` — how many times a job may be attempted, how long
  to back off between attempts (exponential with *deterministic* jitter,
  so two runs of the same sweep retry on the same schedule), and the
  per-job wall-clock timeout the parallel supervisor enforces.
* :class:`JobFailure` — the structured record a job leaves in the
  :class:`~repro.engine.engine.ResultMap` when it exhausts its retries
  under the default (non-strict) degradation mode. Callers that index
  the map can distinguish "failed after N attempts" from "absent".
* :class:`JobExecutionError` — the exception the strict mode raises
  instead; it wraps the same :class:`JobFailure`.
* :func:`quarantine_file` — the shared move-aside helper: a damaged
  store entry or cache shard is relocated into a ``quarantine/``
  subdirectory next to a ``<name>.reason.txt`` file instead of being
  deleted, so corruption is debuggable after the run recovers.

Nothing here imports the engine, the store, or the cache — those layers
import *this*, which keeps the policy reusable from pool workers.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

#: subdirectory (of a store or cache root) holding quarantined files
QUARANTINE_DIR = "quarantine"


def _unit_draw(*parts: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` keyed by ``parts``.

    Stable across processes, platforms and interpreter hash
    randomization — the basis of both the retry jitter and the
    fault-injection harness, so injected runs are exactly repeatable.
    """
    payload = "\x1f".join(str(part) for part in parts).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine re-attempts a failing job.

    Attributes:
        attempts: total tries per job (1 = no retries).
        backoff: base sleep in seconds before attempt ``n+1``; the
            actual sleep is ``backoff * 2**(n-1)`` scaled by a
            deterministic jitter factor in ``[0.5, 1.5)`` derived from
            ``(job key, attempt, seed)`` — exponential, but identical
            across reruns of the same sweep.
        timeout: per-job wall-clock budget in seconds (parallel mode
            only — the supervisor kills and respawns the pool when an
            in-flight job exceeds it), or None for no limit.
        seed: jitter seed, folded into every backoff draw.
    """

    attempts: int = 3
    backoff: float = 0.05
    timeout: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def backoff_for(self, key: str, attempt: int) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (1-based)."""
        if self.backoff == 0:
            return 0.0
        jitter = 0.5 + _unit_draw("backoff", key, attempt, self.seed)
        return self.backoff * (2 ** (attempt - 1)) * jitter

    def sleep_before_retry(self, key: str, attempt: int) -> None:
        delay = self.backoff_for(key, attempt)
        if delay > 0:
            time.sleep(delay)

    @staticmethod
    def none() -> "RetryPolicy":
        """A single-attempt policy (the pre-fault-plane behaviour)."""
        return RetryPolicy(attempts=1, backoff=0.0)


@dataclass(frozen=True)
class JobFailure:
    """A job that exhausted its retries, as a result-map value.

    Attributes:
        job_hash: the failed job's content hash.
        label: the job's human-readable label.
        attempts: how many times execution was attempted.
        error_type: the final exception's class name.
        error: the final exception's message.
        history: ``(error_type, message)`` per failed attempt, oldest
            first — the full degradation trail for debugging.
    """

    job_hash: str
    label: str
    attempts: int
    error_type: str
    error: str
    history: Tuple[Tuple[str, str], ...] = ()

    def summary(self) -> str:
        return (
            f"{self.label} failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.error}"
        )


class JobExecutionError(RuntimeError):
    """Raised under strict mode when a job exhausts its retries."""

    def __init__(self, failure: JobFailure) -> None:
        super().__init__(failure.summary())
        self.failure = failure


class RunInterrupted(BaseException):
    """A cooperative shutdown request stopped the run between jobs.

    Raised by the engine's dispatch gate when the graceful-shutdown
    event is set (SIGINT/SIGTERM): no new jobs are dispatched, in-flight
    futures are cancelled, and the exception propagates to the runner,
    which seals the journal as ``interrupted`` and exits with the
    resumable code 3. Derives from :class:`BaseException` (like
    ``KeyboardInterrupt``) so ordinary ``except Exception`` recovery
    paths never swallow it.
    """

    def __init__(self, completed: int = 0, pending: int = 0) -> None:
        super().__init__(
            f"run interrupted ({completed} job(s) journaled complete, "
            f"{pending} pending)"
        )
        self.completed = completed
        self.pending = pending


@dataclass
class AttemptLog:
    """Mutable per-job attempt trail the engine builds a failure from."""

    job_hash: str
    label: str
    errors: List[Tuple[str, str]] = field(default_factory=list)

    def record(self, error: BaseException) -> None:
        self.errors.append((type(error).__name__, str(error)))

    @property
    def attempts(self) -> int:
        return len(self.errors)

    def failure(self) -> JobFailure:
        error_type, message = self.errors[-1] if self.errors else ("", "")
        return JobFailure(
            job_hash=self.job_hash,
            label=self.label,
            attempts=self.attempts,
            error_type=error_type,
            error=message,
            history=tuple(self.errors),
        )


def quarantine_file(
    path: Union[str, Path], root: Union[str, Path], reason: str
) -> Optional[Path]:
    """Move a damaged file into ``root/quarantine/`` with a reason file.

    The file keeps its name (a retrying writer immediately publishes a
    fresh copy at the old path); a sibling ``<name>.reason.txt`` records
    why it was pulled. Collisions append a numeric suffix so repeated
    corruption of a regenerated entry never silently overwrites the
    evidence of the previous one.

    Args:
        path: the damaged file.
        root: the store/cache root the quarantine directory lives under.
        reason: one-line explanation written to the reason file.

    Returns:
        The quarantined file's new path, or None when ``path`` vanished
        before the move (a racing recoverer already quarantined it) —
        never raises for a missing source.
    """
    path = Path(path)
    directory = Path(root) / QUARANTINE_DIR
    directory.mkdir(parents=True, exist_ok=True)
    target = directory / path.name
    serial = 0
    while target.exists():
        serial += 1
        target = directory / f"{path.name}.{serial}"
    try:
        shutil.move(str(path), str(target))
    except OSError:
        return None
    target.with_name(target.name + ".reason.txt").write_text(
        f"{reason}\nquarantined_at={time.strftime('%Y-%m-%dT%H:%M:%S')}"
        f" pid={os.getpid()}\n"
    )
    return target
