"""The ten-workload suite of Table 1, as composed synthetic generators.

Component weights encode each application's documented behaviour mix:
OLTP is pointer-chase heavy with both stable and page-private layouts;
web serving mixes connection/file behaviour with a larger spatially
regular share; DSS is dominated by compulsory scans with a small join
component; the scientific kernels are single-behaviour. Noise components
supply the unpredictable ("neither") miss share the paper reports
(34-38% for commercial workloads).
"""

from __future__ import annotations

import zlib
from typing import Dict, List

from repro.trace.container import TraceSource
from repro.workloads.base import ComposedWorkload
from repro.workloads.components import (
    ChainTraversalComponent,
    GatherComponent,
    GraphTraversalComponent,
    GridSweepComponent,
    HotStructureComponent,
    NoiseComponent,
    ScanComponent,
)

#: evaluation order used by every figure (matches the paper's grouping)
WORKLOAD_NAMES: List[str] = [
    "apache",
    "zeus",
    "db2",
    "oracle",
    "qry2",
    "qry16",
    "qry17",
    "em3d",
    "ocean",
    "sparse",
]

WORKLOAD_CATEGORIES: Dict[str, str] = {
    "apache": "web",
    "zeus": "web",
    "db2": "oltp",
    "oracle": "oltp",
    "qry2": "dss",
    "qry16": "dss",
    "qry17": "dss",
    "em3d": "scientific",
    "ocean": "scientific",
    "sparse": "scientific",
}

#: address-space stride between components (16 GB keeps them disjoint)
_BASE_STRIDE = 1 << 34


def _seed(name: str, component: str) -> int:
    """Stable per-(workload, component) setup seed."""
    return zlib.crc32(f"{name}/{component}".encode())


def _base(slot: int) -> int:
    return (slot + 1) * _BASE_STRIDE


def _commercial(
    name: str,
    *,
    stable_weight: float,
    private_weight: float,
    scan_weight: float,
    hot_weight: float,
    noise_weight: float,
    stable_chains: int,
    stable_pages: int,
    private_chains: int,
    private_pages: int,
    scan_blocks: int,
    hot_regions: int,
    noise_gap: int,
    description: str,
) -> ComposedWorkload:
    components = []
    if stable_weight > 0:
        components.append(
            (
                ChainTraversalComponent(
                    label="chain-stable",
                    base_pc=0x10000,
                    address_base=_base(0),
                    setup_seed=_seed(name, "stable"),
                    num_chains=stable_chains,
                    pages_per_chain=stable_pages,
                    layout_mode="stable",
                    layout_blocks=6,
                    pointer_chase=True,
                    mutation_rate=0.015,
                ),
                stable_weight,
            )
        )
    if private_weight > 0:
        components.append(
            (
                ChainTraversalComponent(
                    label="chain-private",
                    base_pc=0x20000,
                    address_base=_base(1),
                    setup_seed=_seed(name, "private"),
                    num_chains=private_chains,
                    pages_per_chain=private_pages,
                    layout_mode="private",
                    layout_blocks=5,
                    pointer_chase=True,
                    mutation_rate=0.015,
                ),
                private_weight,
            )
        )
    if scan_weight > 0:
        components.append(
            (
                ScanComponent(
                    label="scan",
                    base_pc=0x30000,
                    address_base=_base(2),
                    setup_seed=_seed(name, "scan"),
                    data_blocks=scan_blocks,
                ),
                scan_weight,
            )
        )
    if hot_weight > 0:
        components.append(
            (
                HotStructureComponent(
                    label="hot",
                    base_pc=0x40000,
                    address_base=_base(3),
                    setup_seed=_seed(name, "hot"),
                    num_regions=hot_regions,
                ),
                hot_weight,
            )
        )
    if noise_weight > 0:
        components.append(
            (
                NoiseComponent(
                    label="noise",
                    base_pc=0x50000,
                    address_base=_base(4),
                    instr_gap=noise_gap,
                ),
                noise_weight,
            )
        )
    return ComposedWorkload(
        name,
        WORKLOAD_CATEGORIES[name],
        components,
        description=description,
    )


def _make_apache() -> ComposedWorkload:
    return _commercial(
        "apache",
        stable_weight=0.26,
        private_weight=0.10,
        scan_weight=0.22,
        hot_weight=0.18,
        noise_weight=0.24,
        stable_chains=6,
        stable_pages=128,
        private_chains=4,
        private_pages=96,
        scan_blocks=12,
        hot_regions=48,
        noise_gap=16,
        description="SPECweb99 on Apache: mixed temporal/spatial, miss-heavy",
    )


def _make_zeus() -> ComposedWorkload:
    return _commercial(
        "zeus",
        stable_weight=0.24,
        private_weight=0.08,
        scan_weight=0.26,
        hot_weight=0.22,
        noise_weight=0.20,
        stable_chains=6,
        stable_pages=112,
        private_chains=4,
        private_pages=80,
        scan_blocks=12,
        hot_regions=64,
        noise_gap=18,
        description="SPECweb99 on Zeus: like apache with fewer off-chip stalls",
    )


def _make_db2() -> ComposedWorkload:
    return _commercial(
        "db2",
        stable_weight=0.22,
        private_weight=0.22,
        scan_weight=0.06,
        hot_weight=0.18,
        noise_weight=0.26,
        stable_chains=8,
        stable_pages=160,
        private_chains=8,
        private_pages=160,
        scan_blocks=10,
        hot_regions=48,
        noise_gap=14,
        description="TPC-C on DB2: pointer-chase dominated buffer-pool traffic",
    )


def _make_oracle() -> ComposedWorkload:
    return _commercial(
        "oracle",
        stable_weight=0.20,
        private_weight=0.20,
        scan_weight=0.04,
        hot_weight=0.32,
        noise_weight=0.22,
        stable_chains=8,
        stable_pages=144,
        private_chains=8,
        private_pages=144,
        scan_blocks=10,
        hot_regions=96,
        noise_gap=14,
        description="TPC-C on Oracle: larger SGA, fewer off-chip stalls",
    )


def _make_dss(name: str, scan_weight: float, join_weight: float,
              scan_blocks: int, description: str) -> ComposedWorkload:
    components = [
        (
            ScanComponent(
                label="scan",
                base_pc=0x30000,
                address_base=_base(2),
                setup_seed=_seed(name, "scan"),
                data_blocks=scan_blocks,
            ),
            scan_weight,
        ),
        (
            ChainTraversalComponent(
                label="join-inner",
                base_pc=0x10000,
                address_base=_base(0),
                setup_seed=_seed(name, "join"),
                num_chains=4,
                pages_per_chain=128,
                layout_mode="stable",
                layout_blocks=6,
                pointer_chase=True,
                mutation_rate=0.01,
            ),
            join_weight,
        ),
        (
            HotStructureComponent(
                label="hot",
                base_pc=0x40000,
                address_base=_base(3),
                setup_seed=_seed(name, "hot"),
                num_regions=32,
            ),
            0.08,
        ),
        (
            NoiseComponent(
                label="noise",
                base_pc=0x50000,
                address_base=_base(4),
                instr_gap=14,
            ),
            0.25,
        ),
    ]
    return ComposedWorkload(name, "dss", components, description=description)


def _make_qry2() -> ComposedWorkload:
    return _make_dss("qry2", 0.55, 0.12, 14, "TPC-H Q2: join-dominated")


def _make_qry16() -> ComposedWorkload:
    return _make_dss("qry16", 0.52, 0.14, 12, "TPC-H Q16: join-dominated")


def _make_qry17() -> ComposedWorkload:
    return _make_dss("qry17", 0.60, 0.07, 16, "TPC-H Q17: balanced scan-join")


def _make_em3d() -> ComposedWorkload:
    components = [
        (
            GraphTraversalComponent(
                label="graph",
                base_pc=0x60000,
                address_base=_base(5),
                setup_seed=_seed("em3d", "graph"),
                num_nodes=14000,
                degree=2,
            ),
            0.95,
        ),
        (
            NoiseComponent(
                label="noise",
                base_pc=0x50000,
                address_base=_base(4),
                instr_gap=20,
            ),
            0.05,
        ),
    ]
    return ComposedWorkload(
        "em3d", "scientific", components,
        description="em3d: perfectly repetitive sequence over scattered nodes",
    )


def _make_ocean() -> ComposedWorkload:
    components = [
        (
            GridSweepComponent(
                label="grid",
                base_pc=0x70000,
                address_base=_base(6),
                num_arrays=3,
                blocks_per_array=4096,
            ),
            0.72,
        ),
        (
            # boundary/ghost-cell exchange: scattered pages revisited in a
            # fixed order every iteration -- repetitive but not strided,
            # which is where streaming beats the baseline stride engine
            ChainTraversalComponent(
                label="boundary",
                base_pc=0x72000,
                address_base=_base(0),
                setup_seed=_seed("ocean", "boundary"),
                num_chains=2,
                pages_per_chain=192,
                layout_mode="stable",
                layout_blocks=10,
                pointer_chase=False,
                mutation_rate=0.0,
                unstable_access_prob=0.02,
                instr_gap=8,
            ),
            0.22,
        ),
        (
            NoiseComponent(
                label="noise",
                base_pc=0x50000,
                address_base=_base(4),
                instr_gap=22,
            ),
            0.06,
        ),
    ]
    return ComposedWorkload(
        "ocean", "scientific", components,
        description="ocean: dense grid relaxation sweeps + boundary exchange",
    )


def _make_sparse() -> ComposedWorkload:
    components = [
        (
            GatherComponent(
                label="spmv",
                base_pc=0x80000,
                address_base=_base(7),
                setup_seed=_seed("sparse", "spmv"),
                num_rows=3072,
                nnz_per_row=8,
                x_blocks=16384,
            ),
            0.94,
        ),
        (
            NoiseComponent(
                label="noise",
                base_pc=0x50000,
                address_base=_base(4),
                instr_gap=22,
            ),
            0.06,
        ),
    ]
    return ComposedWorkload(
        "sparse", "scientific", components,
        description="sparse: SpMV with a repetitive random gather",
    )


_FACTORIES = {
    "apache": _make_apache,
    "zeus": _make_zeus,
    "db2": _make_db2,
    "oracle": _make_oracle,
    "qry2": _make_qry2,
    "qry16": _make_qry16,
    "qry17": _make_qry17,
    "em3d": _make_em3d,
    "ocean": _make_ocean,
    "sparse": _make_sparse,
}


def make_workload(name: str) -> ComposedWorkload:
    """Build the named workload generator (see :data:`WORKLOAD_NAMES`)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory()


def stream_workload(name: str, n_accesses: int, seed: int = 42) -> TraceSource:
    """A re-iterable lazy trace source for the named workload.

    Unlike ``make_workload(name).stream(...)``, each iteration pass
    rebuilds the workload from scratch, so the source always replays the
    identical access sequence regardless of how often it is walked.
    """
    template = make_workload(name)  # validates the name; supplies metadata
    return TraceSource(
        name=template.name,
        category=template.category,
        factory=lambda: make_workload(name).iter_accesses(n_accesses, seed),
        metadata=template.trace_metadata(n_accesses, seed),
        length_hint=n_accesses,
    )
