"""Synthetic workload generators modelling the paper's application suite.

Each generator is a :class:`~repro.workloads.base.ComposedWorkload` built
from reusable :mod:`~repro.workloads.components` that implement the
structural behaviours the paper attributes to each application (DESIGN.md
lists the substitution rationale). All generators are deterministic given
a seed.
"""

from repro.workloads.base import ComposedWorkload, TraceComponent
from repro.workloads.registry import (
    WORKLOAD_CATEGORIES,
    WORKLOAD_NAMES,
    make_workload,
)

__all__ = [
    "ComposedWorkload",
    "TraceComponent",
    "WORKLOAD_CATEGORIES",
    "WORKLOAD_NAMES",
    "make_workload",
]
