"""Workload composition framework.

A workload is a weighted set of :class:`TraceComponent` behaviours; the
composer interleaves component *bursts* (one page visit, one scan page,
one noise access, ...) with a deficit scheduler so each component
converges to its target share of accesses while bursts from different
components interleave — mirroring how real applications keep many spatial
generations live at once (§3.1).
"""

from __future__ import annotations

import abc
import random
from typing import List, Sequence, Tuple

from repro.trace.container import Trace


class TraceComponent(abc.ABC):
    """One access-pattern behaviour inside a workload."""

    #: short identifier used in metadata and tests
    label: str = "component"
    #: consecutive bursts emitted per scheduler activation. Real programs
    #: execute phases — a transaction touches several pages back to back —
    #: so related misses cluster in the global sequence; without this the
    #: interleave is uniformly hostile in a way real traces are not.
    run_bursts: int = 1

    @abc.abstractmethod
    def emit_burst(self, trace: Trace, rng: random.Random) -> int:
        """Append one burst of accesses to ``trace``; returns accesses added."""


class ComposedWorkload:
    """A named, seeded mixture of trace components."""

    def __init__(
        self,
        name: str,
        category: str,
        components: Sequence[Tuple[TraceComponent, float]],
        description: str = "",
    ) -> None:
        if not components:
            raise ValueError("a workload needs at least one component")
        total = sum(weight for _, weight in components)
        if total <= 0:
            raise ValueError("component weights must sum to a positive value")
        self.name = name
        self.category = category
        self.description = description
        self._components: List[TraceComponent] = [c for c, _ in components]
        self._shares: List[float] = [w / total for _, w in components]

    def generate(self, n_accesses: int, seed: int = 42) -> Trace:
        """Generate a trace of at least ``n_accesses`` references."""
        if n_accesses <= 0:
            raise ValueError(f"n_accesses must be positive, got {n_accesses}")
        rng = random.Random(seed)
        trace = Trace(
            name=self.name,
            category=self.category,
            metadata={
                "seed": seed,
                "requested_accesses": n_accesses,
                "components": [c.label for c in self._components],
                "shares": list(self._shares),
            },
        )
        emitted = [0] * len(self._components)
        while len(trace) < n_accesses:
            total = max(1, len(trace))
            # deficit scheduling: run the component furthest below its share
            deficits = [
                share * total - count
                for share, count in zip(self._shares, emitted)
            ]
            pick = max(range(len(deficits)), key=deficits.__getitem__)
            component = self._components[pick]
            for _ in range(max(1, component.run_bursts)):
                emitted[pick] += component.emit_burst(trace, rng)
        return trace
