"""Workload composition framework.

A workload is a weighted set of :class:`TraceComponent` behaviours; the
composer interleaves component *bursts* (one page visit, one scan page,
one noise access, ...) with a deficit scheduler so each component
converges to its target share of accesses while bursts from different
components interleave — mirroring how real applications keep many spatial
generations live at once (§3.1).
"""

from __future__ import annotations

import abc
import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.trace.container import Trace, TraceSource
from repro.trace.events import MemoryAccess


class _BurstBuffer:
    """Minimal append-sink used for streaming generation.

    Components only ever call ``append`` (and read the returned access's
    ``index``), so this duck-types the :class:`Trace` append API while
    holding just the current burst in memory; the composer drains it
    after every scheduler activation.
    """

    __slots__ = ("chunk", "total")

    def __init__(self) -> None:
        self.chunk: List[MemoryAccess] = []
        self.total = 0

    def __len__(self) -> int:
        return self.total

    def append(
        self,
        pc: int,
        address: int,
        is_write: bool = False,
        depends_on: Optional[int] = None,
        instr_gap: int = 4,
    ) -> MemoryAccess:
        access = MemoryAccess(
            index=self.total,
            pc=pc,
            address=address,
            is_write=is_write,
            depends_on=depends_on,
            instr_gap=instr_gap,
        )
        self.chunk.append(access)
        self.total += 1
        return access

    def drain(self) -> List[MemoryAccess]:
        chunk, self.chunk = self.chunk, []
        return chunk


class TraceComponent(abc.ABC):
    """One access-pattern behaviour inside a workload."""

    #: short identifier used in metadata and tests
    label: str = "component"
    #: consecutive bursts emitted per scheduler activation. Real programs
    #: execute phases — a transaction touches several pages back to back —
    #: so related misses cluster in the global sequence; without this the
    #: interleave is uniformly hostile in a way real traces are not.
    run_bursts: int = 1

    @abc.abstractmethod
    def emit_burst(self, trace: Trace, rng: random.Random) -> int:
        """Append one burst of accesses to ``trace``; returns accesses added."""


class ComposedWorkload:
    """A named, seeded mixture of trace components."""

    def __init__(
        self,
        name: str,
        category: str,
        components: Sequence[Tuple[TraceComponent, float]],
        description: str = "",
    ) -> None:
        if not components:
            raise ValueError("a workload needs at least one component")
        total = sum(weight for _, weight in components)
        if total <= 0:
            raise ValueError("component weights must sum to a positive value")
        self.name = name
        self.category = category
        self.description = description
        self._components: List[TraceComponent] = [c for c, _ in components]
        self._shares: List[float] = [w / total for _, w in components]

    def trace_metadata(self, n_accesses: int, seed: int) -> dict:
        """Metadata attached to any trace/source generated with these args."""
        return {
            "seed": seed,
            "requested_accesses": n_accesses,
            "components": [c.label for c in self._components],
            "shares": list(self._shares),
        }

    def iter_accesses(
        self, n_accesses: int, seed: int = 42
    ) -> Iterator[MemoryAccess]:
        """Lazily generate at least ``n_accesses`` references.

        This is the single generation code path: accesses are yielded
        burst by burst as the deficit scheduler produces them, so only
        the current burst is ever buffered. Components keep internal
        cursor state, so each generator pass must run on a *fresh*
        workload instance (see :func:`repro.workloads.registry.stream_workload`).
        """
        if n_accesses <= 0:
            raise ValueError(f"n_accesses must be positive, got {n_accesses}")
        rng = random.Random(seed)
        buffer = _BurstBuffer()
        emitted = [0] * len(self._components)
        while len(buffer) < n_accesses:
            total = max(1, len(buffer))
            # deficit scheduling: run the component furthest below its share
            deficits = [
                share * total - count
                for share, count in zip(self._shares, emitted)
            ]
            pick = max(range(len(deficits)), key=deficits.__getitem__)
            component = self._components[pick]
            for _ in range(max(1, component.run_bursts)):
                emitted[pick] += component.emit_burst(buffer, rng)
            yield from buffer.drain()

    def stream(self, n_accesses: int, seed: int = 42) -> TraceSource:
        """A lazy :class:`TraceSource` over this workload's accesses.

        Note: bound to *this* instance's component state — iterate at
        most once. Re-iterable sources come from
        :func:`repro.workloads.registry.stream_workload`, which rebuilds
        the workload per pass.
        """
        return TraceSource(
            name=self.name,
            category=self.category,
            factory=lambda: self.iter_accesses(n_accesses, seed),
            metadata=self.trace_metadata(n_accesses, seed),
            length_hint=n_accesses,
        )

    def generate(self, n_accesses: int, seed: int = 42) -> Trace:
        """Generate a materialized trace of at least ``n_accesses`` references."""
        return self.stream(n_accesses, seed).materialize()
