"""Reusable access-pattern components.

Each component models one structural behaviour the paper attributes to its
applications:

* :class:`ChainTraversalComponent` — repeated pointer-chased traversals of
  scattered buffer-pool pages (OLTP/web; temporal correlation, and spatial
  correlation when the page layout is code-stable);
* :class:`ScanComponent` — scans of never-before-seen pages with a fixed
  layout (DSS; compulsory misses, spatial-only opportunity);
* :class:`HotStructureComponent` — a small, hot working set (cache hits);
* :class:`NoiseComponent` — isolated, unpredictable accesses (the
  "neither" category of Fig. 6);
* :class:`GraphTraversalComponent` — em3d: a perfectly repetitive miss
  sequence that jumps randomly over memory (temporal-perfect,
  spatially ambiguous);
* :class:`GridSweepComponent` — ocean: dense sequential sweeps (both
  correlations strong, stride-friendly);
* :class:`GatherComponent` — sparse SpMV: sequential matrix arrays plus a
  repetitive random gather with iteration-parity delta toggling.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.trace.container import Trace
from repro.workloads.base import TraceComponent

_BLOCK = 64
_REGION = 2048
_BLOCKS_PER_REGION = _REGION // _BLOCK


def _scatter_pages(rng: random.Random, count: int, span_pages: int) -> List[int]:
    """``count`` distinct page indices scattered across ``span_pages`` slots."""
    if count > span_pages:
        raise ValueError(f"cannot scatter {count} pages into {span_pages} slots")
    return rng.sample(range(span_pages), count)


class ChainTraversalComponent(TraceComponent):
    """Repeated traversals of page chains in a scattered buffer pool.

    Pages are visited chain-by-chain in a fixed order; each visit runs a
    per-component code path over the page. ``layout_mode``:

    * ``"stable"`` — the same block offsets on every page (code-correlated
      layout: spatially predictable, SMS-friendly);
    * ``"private"`` — per-page random offsets, fixed across visits (the
      addresses repeat so TMS predicts them, but the shared PC+offset
      index sees conflicting patterns so SMS cannot).

    ``pointer_chase=True`` makes each page's first access depend on the
    previous page's pointer load — the dependent-miss chains TMS
    parallelizes (§2.1).
    """

    def __init__(
        self,
        label: str,
        base_pc: int,
        address_base: int,
        setup_seed: int,
        num_chains: int = 8,
        pages_per_chain: int = 128,
        layout_mode: str = "stable",
        layout_blocks: int = 6,
        pointer_chase: bool = True,
        mutation_rate: float = 0.01,
        unstable_access_prob: float = 0.08,
        write_prob: float = 0.15,
        instr_gap: int = 6,
        run_bursts: int = 3,
    ) -> None:
        if layout_mode not in ("stable", "private"):
            raise ValueError(f"unknown layout_mode {layout_mode!r}")
        self.label = label
        self.run_bursts = run_bursts
        self.base_pc = base_pc
        self.address_base = address_base
        self.layout_mode = layout_mode
        self.pointer_chase = pointer_chase
        self.mutation_rate = mutation_rate
        self.unstable_access_prob = unstable_access_prob
        self.write_prob = write_prob
        self.instr_gap = instr_gap
        self.layout_blocks = layout_blocks

        setup = random.Random(setup_seed)
        total_pages = num_chains * pages_per_chain
        span = max(total_pages * 4, 64)
        slots = _scatter_pages(setup, total_pages, span)
        self._page_span = span
        self._next_fresh_slot = span  # fresh pages for mutations go past span
        self._chains: List[List[int]] = [
            [
                address_base + slots[c * pages_per_chain + p] * _REGION
                for p in range(pages_per_chain)
            ]
            for c in range(num_chains)
        ]
        # stable layout: header, then data offsets, shared by all pages
        data = setup.sample(range(2, _BLOCKS_PER_REGION), layout_blocks)
        self._stable_offsets: List[int] = [0] + data
        self._private_offsets: Dict[int, List[int]] = {}
        self._private_rng = random.Random(setup_seed ^ 0x5F5F5F5F)

        self._chain: Optional[int] = None
        self._pos = 0
        self._last_pointer_index: Optional[int] = None

    def _offsets_for(self, page_addr: int) -> List[int]:
        if self.layout_mode == "stable":
            return self._stable_offsets
        offsets = self._private_offsets.get(page_addr)
        if offsets is None:
            data = self._private_rng.sample(
                range(2, _BLOCKS_PER_REGION), self.layout_blocks
            )
            offsets = [0] + data
            self._private_offsets[page_addr] = offsets
        return offsets

    def _fresh_page(self) -> int:
        addr = self.address_base + self._next_fresh_slot * _REGION
        self._next_fresh_slot += 1
        return addr

    def emit_burst(self, trace: Trace, rng: random.Random) -> int:
        if self._chain is None:
            self._chain = rng.randrange(len(self._chains))
            self._pos = 0
            self._last_pointer_index = None
            if self.mutation_rate > 0:
                chain = self._chains[self._chain]
                for i in range(len(chain)):
                    if rng.random() < self.mutation_rate:
                        chain[i] = self._fresh_page()
        chain = self._chains[self._chain]
        page_addr = chain[self._pos]
        emitted = self._visit_page(trace, rng, page_addr)
        self._pos += 1
        if self._pos >= len(chain):
            self._chain = None
        return emitted

    def _visit_page(self, trace: Trace, rng: random.Random, page_addr: int) -> int:
        offsets = list(self._offsets_for(page_addr))
        if rng.random() < self.unstable_access_prob:
            extra = rng.randrange(_BLOCKS_PER_REGION)
            if extra not in offsets:
                offsets.append(extra)
        if len(offsets) > 3 and rng.random() < 0.1:
            # occasional local reordering among data blocks (Fig. 8's +-2
            # correlation-distance mass): never moves the trigger
            swap = rng.randrange(1, len(offsets) - 1)
            offsets[swap], offsets[swap + 1] = offsets[swap + 1], offsets[swap]
        emitted = 0
        first_index = None
        for step, offset in enumerate(offsets):
            depends = None
            if step == 0 and self.pointer_chase:
                depends = self._last_pointer_index
            is_write = step > 0 and rng.random() < self.write_prob
            access = trace.append(
                pc=self.base_pc + step * 4,
                address=page_addr + offset * _BLOCK,
                is_write=is_write,
                depends_on=depends,
                instr_gap=self.instr_gap,
            )
            if step == 0:
                first_index = access.index
            emitted += 1
        # the header holds the next-page pointer: chase it from access 0
        self._last_pointer_index = first_index
        return emitted


class ScanComponent(TraceComponent):
    """Sequential scan over never-before-seen pages with a fixed layout.

    Models DSS table scans: every page is compulsory (TMS cannot help) but
    the layout is produced by the same code on every page, so SMS learns
    it once and predicts all subsequent pages (§2.4). Pages are scattered
    with a bijective multiplicative hash — real buffer pools allocate the
    next free frame, so scans are not contiguous in physical memory.
    """

    #: odd multiplier => bijection on the page-slot space (a power of two)
    _HASH_MULTIPLIER = 0x9E3779B1

    def __init__(
        self,
        label: str,
        base_pc: int,
        address_base: int,
        setup_seed: int,
        data_blocks: int = 14,
        write_prob: float = 0.05,
        instr_gap: int = 5,
        span_pages_log2: int = 22,
        block_presence: float = 0.9,
        run_bursts: int = 4,
    ) -> None:
        self.label = label
        self.run_bursts = run_bursts
        self.base_pc = base_pc
        self.address_base = address_base
        self.write_prob = write_prob
        self.instr_gap = instr_gap
        #: per-page probability that a given data block is actually touched
        #: (tuples failing the predicate are skipped on real scans)
        self.block_presence = block_presence
        self._span_mask = (1 << span_pages_log2) - 1
        setup = random.Random(setup_seed)
        data = setup.sample(range(2, _BLOCKS_PER_REGION), data_blocks)
        self._offsets = [0, 1] + data  # page id, slot directory, tuples
        self._page_counter = 0

    def emit_burst(self, trace: Trace, rng: random.Random) -> int:
        slot = (self._page_counter * self._HASH_MULTIPLIER) & self._span_mask
        self._page_counter += 1
        page_addr = self.address_base + slot * _REGION
        emitted = 0
        for step, offset in enumerate(self._offsets):
            if step > 1 and rng.random() > self.block_presence:
                continue
            is_write = step > 1 and rng.random() < self.write_prob
            trace.append(
                pc=self.base_pc + step * 4,
                address=page_addr + offset * _BLOCK,
                is_write=is_write,
                instr_gap=self.instr_gap,
            )
            emitted += 1
        return emitted


class HotStructureComponent(TraceComponent):
    """A small hot working set visited in a repeating order (cache hits)."""

    def __init__(
        self,
        label: str,
        base_pc: int,
        address_base: int,
        setup_seed: int,
        num_regions: int = 48,
        blocks_per_visit: int = 4,
        instr_gap: int = 4,
        run_bursts: int = 2,
    ) -> None:
        self.label = label
        self.run_bursts = run_bursts
        self.base_pc = base_pc
        self.instr_gap = instr_gap
        setup = random.Random(setup_seed)
        slots = _scatter_pages(setup, num_regions, num_regions * 4)
        self._regions = [address_base + s * _REGION for s in slots]
        self._offsets = setup.sample(range(_BLOCKS_PER_REGION), blocks_per_visit)
        self._position = 0

    def emit_burst(self, trace: Trace, rng: random.Random) -> int:
        region = self._regions[self._position % len(self._regions)]
        self._position += 1
        for step, offset in enumerate(self._offsets):
            trace.append(
                pc=self.base_pc + step * 4,
                address=region + offset * _BLOCK,
                instr_gap=self.instr_gap,
            )
        return len(self._offsets)


class NoiseComponent(TraceComponent):
    """Isolated accesses to random, never-revisited blocks.

    These are the Fig. 6 "neither" misses: no address repetition (defeats
    TMS) and single-block regions (the trigger is the only access, which
    SMS cannot predict).
    """

    def __init__(
        self,
        label: str,
        base_pc: int,
        address_base: int,
        write_prob: float = 0.1,
        instr_gap: int = 18,
        span_blocks_log2: int = 27,
        run_bursts: int = 6,
    ) -> None:
        self.label = label
        self.run_bursts = run_bursts
        self.base_pc = base_pc
        self.address_base = address_base
        self.write_prob = write_prob
        self.instr_gap = instr_gap
        self._span_mask = (1 << span_blocks_log2) - 1

    def emit_burst(self, trace: Trace, rng: random.Random) -> int:
        block = rng.getrandbits(40) & self._span_mask
        trace.append(
            pc=self.base_pc,
            address=self.address_base + block * _BLOCK,
            is_write=rng.random() < self.write_prob,
            instr_gap=self.instr_gap,
        )
        return 1


class GraphTraversalComponent(TraceComponent):
    """em3d-style graph sweep: a sequential node-array walk whose neighbor
    links jump randomly over the whole array.

    Every iteration visits the node array in the same order with the same
    neighbor lists, so the global miss sequence repeats perfectly (TMS ~
    perfect, §5.5). Spatially, the node-array walk is dense but random
    neighbor hits trigger regions early and at varying offsets, so the
    same trigger PC leads to many different patterns — SMS cannot
    disambiguate them (§5.2) and covers only part of the traffic.
    """

    def __init__(
        self,
        label: str,
        base_pc: int,
        address_base: int,
        setup_seed: int,
        num_nodes: int = 40000,
        degree: int = 2,
        nodes_per_burst: int = 4,
        instr_gap: int = 7,
    ) -> None:
        self.label = label
        self.base_pc = base_pc
        self.instr_gap = instr_gap
        self.degree = degree
        self.nodes_per_burst = nodes_per_burst
        setup = random.Random(setup_seed)
        self._node_addr = [address_base + b * _BLOCK for b in range(num_nodes)]
        self._neighbors = [
            [setup.randrange(num_nodes) for _ in range(degree)]
            for _ in range(num_nodes)
        ]
        self._cursor = 0

    def emit_burst(self, trace: Trace, rng: random.Random) -> int:
        emitted = 0
        n = len(self._node_addr)
        for _ in range(self.nodes_per_burst):
            node = self._cursor % n
            self._cursor += 1
            node_access = trace.append(
                pc=self.base_pc,
                address=self._node_addr[node],
                instr_gap=self.instr_gap,
            )
            emitted += 1
            for j, neighbor in enumerate(self._neighbors[node]):
                trace.append(
                    pc=self.base_pc + 4 + j * 4,
                    address=self._node_addr[neighbor],
                    depends_on=node_access.index,  # pointer chase
                    instr_gap=self.instr_gap,
                )
                emitted += 1
        return emitted


class GridSweepComponent(TraceComponent):
    """ocean-style relaxation: dense sequential sweeps over large arrays.

    Spatial patterns are dense and perfectly stable; the sweep repeats
    every iteration so the temporal sequence is repetitive too. The
    stride-1 structure also favours the baseline stride prefetcher, which
    is why the paper's ocean speedups are modest for all predictors.
    """

    def __init__(
        self,
        label: str,
        base_pc: int,
        address_base: int,
        num_arrays: int = 3,
        blocks_per_array: int = 12288,
        blocks_per_burst: int = 8,
        phases: int = 2,
        instr_gap: int = 8,
        write_last_array: bool = True,
    ) -> None:
        self.label = label
        self.base_pc = base_pc
        self.instr_gap = instr_gap
        self.blocks_per_burst = blocks_per_burst
        self.phases = phases
        self.write_last_array = write_last_array
        # odd padding keeps the arrays from aliasing to the same cache sets
        self._arrays = [
            address_base + i * (blocks_per_array + 1031) * _BLOCK
            for i in range(num_arrays)
        ]
        self._blocks_per_array = blocks_per_array
        self._phase = 0
        self._position = 0

    def emit_burst(self, trace: Trace, rng: random.Random) -> int:
        emitted = 0
        stride = 1 + (self._phase % 2)  # phase 1 is a red-black half-sweep
        for _ in range(self.blocks_per_burst):
            if self._position >= self._blocks_per_array:
                self._position = 0
                self._phase = (self._phase + 1) % self.phases
                stride = 1 + (self._phase % 2)
            for a, base in enumerate(self._arrays):
                is_write = self.write_last_array and a == len(self._arrays) - 1
                trace.append(
                    pc=self.base_pc + (self._phase * len(self._arrays) + a) * 4,
                    address=base + self._position * _BLOCK,
                    is_write=is_write,
                    instr_gap=self.instr_gap,
                )
                emitted += 1
            self._position += stride
        return emitted


class GatherComponent(TraceComponent):
    """sparse-style SpMV: sequential matrix arrays plus a repetitive
    random gather from the source vector.

    The gather targets are fixed per matrix, so every iteration repeats
    exactly the same global miss sequence (TMS ~ perfect). Odd and even
    rows, however, interleave their index/value/gather accesses
    differently — and since a given source-vector region is gathered from
    rows of both parities, the *same spatial pattern toggles between two
    delta sequences*: reconstruction picks the wrong deltas for half the
    visits, which is exactly why the paper's STeMS loses coverage on
    sparse (§5.5).
    """

    def __init__(
        self,
        label: str,
        base_pc: int,
        address_base: int,
        setup_seed: int,
        num_rows: int = 4096,
        nnz_per_row: int = 8,
        x_blocks: int = 32768,
        rows_per_burst: int = 2,
        instr_gap: int = 6,
    ) -> None:
        self.label = label
        self.base_pc = base_pc
        self.instr_gap = instr_gap
        self.rows_per_burst = rows_per_burst
        self.num_rows = num_rows
        self.nnz_per_row = nnz_per_row
        setup = random.Random(setup_seed)
        nnz = num_rows * nnz_per_row
        self._col_base = address_base
        self._val_base = address_base + (1 << 30)
        self._x_base = address_base + (2 << 30)
        self._y_base = address_base + (3 << 30)
        #: fixed gather target block per nonzero (the matrix's sparsity)
        self._gather_blocks = [setup.randrange(x_blocks) for _ in range(nnz)]
        self._row = 0
        self._iteration = 0

    def emit_burst(self, trace: Trace, rng: random.Random) -> int:
        emitted = 0
        for _ in range(self.rows_per_burst):
            row = self._row
            emitted += self._emit_row(trace, row)
            self._row += 1
            if self._row >= self.num_rows:
                self._row = 0
                self._iteration += 1
        return emitted

    def _emit_row(self, trace: Trace, row: int) -> int:
        emitted = 0
        base_e = row * self.nnz_per_row
        # index/value loads: sequential blocks (16 idx / 8 values per block)
        col_access = trace.append(
            pc=self.base_pc,
            address=self._col_base + (base_e // 16) * _BLOCK,
            instr_gap=self.instr_gap,
        )
        emitted += 1
        gathers = [
            self._gather_blocks[base_e + e] for e in range(self.nnz_per_row)
        ]
        # value-block loads: even rows load all values up front, odd rows
        # spread them between gathers — same addresses and order across
        # iterations (TMS-perfect), different delta interleave per parity
        value_points = (
            {0} if row % 2 == 0 else {0, len(gathers) // 2, len(gathers) - 1}
        )
        for e, gather_block in enumerate(gathers):
            if e in value_points:
                trace.append(
                    pc=self.base_pc + 4,
                    address=self._val_base + ((base_e + e) // 8) * _BLOCK,
                    instr_gap=self.instr_gap,
                )
                emitted += 1
            trace.append(
                pc=self.base_pc + 8 + (e % 2) * 4,
                address=self._x_base + gather_block * _BLOCK,
                depends_on=col_access.index,
                instr_gap=self.instr_gap,
            )
            emitted += 1
        if row % 8 == 0:
            trace.append(
                pc=self.base_pc + 16,
                address=self._y_base + (row // 8) * _BLOCK,
                is_write=True,
                instr_gap=self.instr_gap,
            )
            emitted += 1
        return emitted
