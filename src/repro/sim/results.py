"""Result records produced by the coverage driver and the timing model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


#: per-access service classes recorded for the timing model
SERVICE_L1 = "l1"
SERVICE_L2 = "l2"
SERVICE_MEMORY = "mem"
SERVICE_SVB = "svb"
SERVICE_PREFETCHED_L1 = "pf"


@dataclass
class CoverageResult:
    """Coverage accounting for one (workload, prefetcher) run (Fig. 9).

    ``covered``/``uncovered`` count *read* accesses only, matching the
    paper's off-chip read-miss metric; ``baseline_misses`` is their sum.
    """

    workload: str
    prefetcher: str
    accesses: int = 0
    reads: int = 0
    writes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    covered: int = 0
    uncovered: int = 0
    issued_prefetches: int = 0
    overpredictions: int = 0
    #: per-access service class (populated when record_service=True)
    service: Optional[List[str]] = None
    prefetcher_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def baseline_misses(self) -> int:
        return self.covered + self.uncovered

    @property
    def coverage(self) -> float:
        """Fraction of off-chip read misses eliminated (Fig. 9 'Covered')."""
        if self.baseline_misses == 0:
            return 0.0
        return self.covered / self.baseline_misses

    @property
    def overprediction_rate(self) -> float:
        """Erroneous fetches normalized to baseline misses (Fig. 9)."""
        if self.baseline_misses == 0:
            return 0.0
        return self.overpredictions / self.baseline_misses

    @property
    def accuracy(self) -> float:
        """Useful fraction of issued prefetches."""
        if self.issued_prefetches == 0:
            return 0.0
        return self.covered / self.issued_prefetches

    def summary_row(self) -> str:
        return (
            f"{self.workload:<8} {self.prefetcher:<8} "
            f"coverage={self.coverage:6.1%} "
            f"overpred={self.overprediction_rate:6.1%} "
            f"misses={self.baseline_misses}"
        )


@dataclass
class TimingResult:
    """Output of the analytical timing model (Fig. 10)."""

    workload: str
    prefetcher: str
    cycles: float
    instructions: int
    memory_stall_cycles: float = 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "TimingResult") -> float:
        """Speedup of *this* configuration relative to ``baseline``."""
        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles
