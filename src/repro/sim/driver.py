"""Trace-driven coverage simulation (the Fig. 9 methodology).

The driver walks a trace through the cache hierarchy with one prefetcher
attached, maintaining the SVB for stream-based prefetchers and L1-install
semantics for SMS, and classifies every read access:

* **covered** — serviced by a prefetched block (present in the SVB at
  request time, or first touch of an L1-installed prefetch);
* **uncovered** — an off-chip miss the prefetcher did not hide;
* **overprediction** — a prefetched block discarded without ever being
  demand-referenced (SVB eviction/drain or unused L1 eviction).

Prefetch requests for blocks already on chip (L1, L2 or SVB) are dropped
without cost: they would not generate an off-chip fetch.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import SystemConfig
from repro.memsys.hierarchy import Hierarchy, ServiceLevel
from repro.memsys.svb import StreamedValueBuffer
from repro.prefetch.base import TARGET_L1, TARGET_SVB, AccessEvent, Prefetcher
from repro.sim.results import (
    SERVICE_L1,
    SERVICE_L2,
    SERVICE_MEMORY,
    SERVICE_PREFETCHED_L1,
    SERVICE_SVB,
    CoverageResult,
)
from repro.trace.container import Trace


class SimulationDriver:
    """Runs one prefetcher over one trace and accounts coverage."""

    def __init__(
        self,
        system: SystemConfig,
        prefetcher: Optional[Prefetcher] = None,
        record_service: bool = False,
    ) -> None:
        self.system = system
        self.prefetcher = prefetcher
        self.record_service = record_service

    def run(self, trace: Trace) -> CoverageResult:
        system = self.system
        prefetcher = self.prefetcher
        amap = system.address_map
        hierarchy = Hierarchy(system)
        result = CoverageResult(
            workload=trace.name,
            prefetcher=prefetcher.name if prefetcher else "none",
        )
        def _discard(block: int, stream: int) -> None:
            result.overpredictions += 1
            if prefetcher is not None:
                prefetcher.on_svb_discard(block, stream)

        svb = StreamedValueBuffer(system.svb_entries, on_discard_unused=_discard)
        service = [] if self.record_service else None

        for access in trace:
            block = amap.block_of(access.address)
            is_read = not access.is_write
            result.accesses += 1
            if is_read:
                result.reads += 1
            else:
                result.writes += 1

            covered = False
            stream_id = -1
            if block in svb:
                consumed = svb.consume(block)
                stream_id = consumed if consumed is not None else -1
                outcome = hierarchy.fill_from_svb(block)
                level = ServiceLevel.SVB
                covered = True
                if is_read:
                    result.covered += 1
                klass = SERVICE_SVB
            else:
                outcome = hierarchy.access(block)
                level = outcome.level
                if outcome.prefetch_hit:
                    covered = True
                    if is_read:
                        result.covered += 1
                    klass = SERVICE_PREFETCHED_L1
                elif level is ServiceLevel.L1:
                    result.l1_hits += 1
                    klass = SERVICE_L1
                elif level is ServiceLevel.L2:
                    result.l2_hits += 1
                    klass = SERVICE_L2
                else:
                    if is_read:
                        result.uncovered += 1
                    klass = SERVICE_MEMORY
            if service is not None:
                service.append(klass)

            if prefetcher is None:
                self._account_evictions(result, outcome, None)
                continue

            self._account_evictions(result, outcome, prefetcher)
            prefetcher.on_access(
                AccessEvent(
                    access=access,
                    block=block,
                    level=level,
                    covered=covered,
                    stream_id=stream_id,
                )
            )
            for request in prefetcher.pop_requests():
                target = request.target or prefetcher.install_target
                pf_block = request.block
                if pf_block in svb or hierarchy.present(pf_block) is not None:
                    continue  # already on chip: no off-chip fetch needed
                result.issued_prefetches += 1
                if target == TARGET_SVB:
                    svb.insert(pf_block, request.stream_id)
                elif target == TARGET_L1:
                    outcome = hierarchy.install_prefetch(pf_block)
                    self._account_evictions(result, outcome, prefetcher)
                else:
                    raise ValueError(f"unknown prefetch target {target!r}")

        # end of run: whatever was fetched but never used is erroneous
        svb.drain_unused()
        result.overpredictions += hierarchy.l1.unused_prefetch_count()
        if prefetcher is not None and hasattr(prefetcher, "finish"):
            prefetcher.finish()
            if hasattr(prefetcher, "stats"):
                result.prefetcher_stats = prefetcher.stats.to_dict()
        result.service = service
        return result

    @staticmethod
    def _account_evictions(result, outcome, prefetcher) -> None:
        if outcome.l1_unused_prefetch_evicted:
            result.overpredictions += 1
        if prefetcher is not None:
            for block in outcome.l1_evictions:
                prefetcher.on_l1_eviction(block)
