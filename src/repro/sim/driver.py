"""Trace-driven coverage simulation (the Fig. 9 methodology).

The driver walks a trace through the cache hierarchy with one prefetcher
attached, maintaining the SVB for stream-based prefetchers and L1-install
semantics for SMS, and classifies every read access:

* **covered** — serviced by a prefetched block (present in the SVB at
  request time, or first touch of an L1-installed prefetch);
* **uncovered** — an off-chip miss the prefetcher did not hide;
* **overprediction** — a prefetched block discarded without ever being
  demand-referenced (SVB eviction/drain or unused L1 eviction).

Prefetch requests for blocks already on chip (L1, L2 or SVB) are dropped
without cost: they would not generate an off-chip fetch.

The driver is the single walk of the trace: it accepts a materialized
:class:`Trace` or a lazy :class:`TraceSource` and, instead of recording
the per-access service classification into a list, can feed it directly
to a ``service_consumer`` (the incremental
:class:`~repro.sim.timing.TimingModel`) — which is how a coverage +
timing job runs end to end in O(1) memory.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Iterable, Optional, Protocol, Tuple

from repro.common.config import SystemConfig
from repro.kernels import KERNEL_VECTOR, resolve_kernel
from repro.kernels.prepass import AccessChunk, iter_trace_chunks
from repro.memsys.hierarchy import Hierarchy, ServiceLevel
from repro.memsys.svb import StreamedValueBuffer
from repro.prefetch.base import TARGET_L1, TARGET_SVB, AccessEvent, Prefetcher
from repro.sim.results import (
    SERVICE_L1,
    SERVICE_L2,
    SERVICE_MEMORY,
    SERVICE_PREFETCHED_L1,
    SERVICE_SVB,
    CoverageResult,
)
from repro.telemetry import PHASE_FINALIZE, PHASE_WALK, phases_active
from repro.trace.container import Trace, TraceLike
from repro.trace.events import MemoryAccess


class ServiceConsumer(Protocol):
    """Anything that consumes the per-access service classification."""

    def update(self, access: MemoryAccess, service_class: str) -> None:
        """Observe one classified access, in trace order."""


class DriverWalk:
    """One in-progress push-mode trace walk (see ``SimulationDriver.start``).

    ``step(access, block)`` advances the simulation by one access;
    ``step_chunk(chunk)`` advances it by one precomputed
    :class:`~repro.kernels.AccessChunk` (the vector kernel's entry
    point: block ids come from the chunk's batched pre-pass and the
    per-access calls run inside one C-driven ``map``); ``finish()``
    runs the end-of-trace accounting and returns the
    :class:`CoverageResult`. All are bound closures over the walk's
    hoisted state, so pushing accesses one at a time costs one call per
    access over the classic pull loop — which is what lets the engine
    fan a single trace walk out to many independent walks at once.
    """

    __slots__ = ("step", "step_chunk", "finish")

    def __init__(self, step, step_chunk, finish) -> None:
        self.step = step
        self.step_chunk = step_chunk
        self.finish = finish


class SimulationDriver:
    """Runs one prefetcher over one trace and accounts coverage.

    Args:
        system: cache/SVB geometry and timing parameters.
        prefetcher: the predictor under test, or None for the baseline.
        record_service: materialize the per-access service classification
            into ``result.service`` (O(trace) memory; only needed when a
            separate timing pass will replay it).
        service_consumer: incremental sink fed ``(access, service_class)``
            during the walk — the streaming alternative to
            ``record_service`` (the driver does not call its
            ``finalize()``; the caller owns the consumer's lifecycle).
    """

    def __init__(
        self,
        system: SystemConfig,
        prefetcher: Optional[Prefetcher] = None,
        record_service: bool = False,
        service_consumer: Optional[ServiceConsumer] = None,
    ) -> None:
        self.system = system
        self.prefetcher = prefetcher
        self.record_service = record_service
        self.service_consumer = service_consumer

    def start(self, workload_name: str) -> DriverWalk:
        """Begin a push-mode walk: the caller supplies each access.

        The step body is deliberately flat: every per-access attribute
        lookup that can be hoisted into a closure cell is, and the
        counter updates run on cell integers written back to the result
        once at :meth:`DriverWalk.finish`. ``run()`` drives the same
        closures, so pushed and pulled walks are bit-identical.

        Args:
            workload_name: stamped on the :class:`CoverageResult`
                (``run()`` passes ``trace.name``).

        Returns:
            A :class:`DriverWalk` whose ``step(access, block)`` consumes
            one access and whose ``finish()`` returns the result.
        """
        system = self.system
        prefetcher = self.prefetcher
        hierarchy = Hierarchy(system)
        result = CoverageResult(
            workload=workload_name,
            prefetcher=prefetcher.name if prefetcher else "none",
        )

        def _discard(block: int, stream: int) -> None:
            result.overpredictions += 1
            if prefetcher is not None:
                prefetcher.on_svb_discard(block, stream)

        svb = StreamedValueBuffer(system.svb_entries, on_discard_unused=_discard)
        service = [] if self.record_service else None

        # -- hoisted bindings for the hot loop --------------------------------
        svb_contains = svb.__contains__
        svb_consume = svb.consume
        svb_insert = svb.insert
        hier_access = hierarchy.access
        hier_fill_from_svb = hierarchy.fill_from_svb
        hier_present = hierarchy.present
        hier_install = hierarchy.install_prefetch
        service_append = service.append if service is not None else None
        consumer = self.service_consumer
        consumer_update = consumer.update if consumer is not None else None
        on_access = prefetcher.on_access if prefetcher is not None else None
        pop_requests = prefetcher.pop_requests if prefetcher is not None else None
        on_l1_eviction = (
            prefetcher.on_l1_eviction if prefetcher is not None else None
        )
        install_target = (
            prefetcher.install_target if prefetcher is not None else None
        )
        level_l1 = ServiceLevel.L1
        level_l2 = ServiceLevel.L2
        level_svb = ServiceLevel.SVB

        accesses = reads = writes = 0
        covered_count = uncovered_count = 0
        l1_hits = l2_hits = issued_prefetches = 0
        overpredictions_local = 0

        def step(access: MemoryAccess, block: int) -> None:
            nonlocal accesses, reads, writes, covered_count, uncovered_count
            nonlocal l1_hits, l2_hits, issued_prefetches, overpredictions_local

            is_read = not access.is_write
            accesses += 1
            if is_read:
                reads += 1
            else:
                writes += 1

            covered = False
            stream_id = -1
            if svb_contains(block):
                consumed = svb_consume(block)
                stream_id = consumed if consumed is not None else -1
                outcome = hier_fill_from_svb(block)
                level = level_svb
                covered = True
                if is_read:
                    covered_count += 1
                klass = SERVICE_SVB
            else:
                outcome = hier_access(block)
                level = outcome.level
                if outcome.prefetch_hit:
                    covered = True
                    if is_read:
                        covered_count += 1
                    klass = SERVICE_PREFETCHED_L1
                elif level is level_l1:
                    l1_hits += 1
                    klass = SERVICE_L1
                elif level is level_l2:
                    l2_hits += 1
                    klass = SERVICE_L2
                else:
                    if is_read:
                        uncovered_count += 1
                    klass = SERVICE_MEMORY
            if service_append is not None:
                service_append(klass)
            if consumer_update is not None:
                consumer_update(access, klass)

            if outcome.l1_unused_prefetch_evicted:
                overpredictions_local += 1

            if prefetcher is None:
                return

            for evicted in outcome.l1_evictions:
                on_l1_eviction(evicted)
            on_access(
                AccessEvent(
                    access=access,
                    block=block,
                    level=level,
                    covered=covered,
                    stream_id=stream_id,
                )
            )
            for request in pop_requests():
                target = request.target or install_target
                pf_block = request.block
                if svb_contains(pf_block) or hier_present(pf_block) is not None:
                    continue  # already on chip: no off-chip fetch needed
                issued_prefetches += 1
                if target == TARGET_SVB:
                    svb_insert(pf_block, request.stream_id)
                elif target == TARGET_L1:
                    outcome2 = hier_install(pf_block)
                    if outcome2.l1_unused_prefetch_evicted:
                        overpredictions_local += 1
                    for evicted in outcome2.l1_evictions:
                        on_l1_eviction(evicted)
                else:
                    raise ValueError(f"unknown prefetch target {target!r}")

        if prefetcher is None:
            # baseline specialization: with no prefetcher the SVB stays
            # empty and no block is ever marked prefetched, so the SVB
            # probe, coverage branches and prefetch drain are dead code —
            # same counters, same service classes, same outcomes
            def step(access: MemoryAccess, block: int) -> None:  # noqa: F811
                nonlocal accesses, reads, writes, uncovered_count
                nonlocal l1_hits, l2_hits

                accesses += 1
                if access.is_write:
                    writes += 1
                    is_read = False
                else:
                    reads += 1
                    is_read = True

                level = hier_access(block).level
                if level is level_l1:
                    l1_hits += 1
                    klass = SERVICE_L1
                elif level is level_l2:
                    l2_hits += 1
                    klass = SERVICE_L2
                else:
                    if is_read:
                        uncovered_count += 1
                    klass = SERVICE_MEMORY
                if service_append is not None:
                    service_append(klass)
                if consumer_update is not None:
                    consumer_update(access, klass)

        def finish() -> CoverageResult:
            result.accesses = accesses
            result.reads = reads
            result.writes = writes
            result.covered = covered_count
            result.uncovered = uncovered_count
            result.l1_hits = l1_hits
            result.l2_hits = l2_hits
            result.issued_prefetches = issued_prefetches
            result.overpredictions += overpredictions_local

            # end of walk: whatever was fetched but never used is erroneous
            svb.drain_unused()
            result.overpredictions += hierarchy.l1.unused_prefetch_count()
            if prefetcher is not None and hasattr(prefetcher, "finish"):
                prefetcher.finish()
                if hasattr(prefetcher, "stats"):
                    result.prefetcher_stats = prefetcher.stats.to_dict()
            result.service = service
            return result

        block_bits = system.address_map.block_bits

        def step_chunk(chunk: AccessChunk) -> None:
            # same step closure per access, driven by one C-level map;
            # block ids come precomputed from the chunk's pre-pass
            deque(
                map(step, chunk.accesses, chunk.blocks_for(block_bits)),
                maxlen=0,
            )

        return DriverWalk(step, step_chunk, finish)

    def run(self, trace: TraceLike, kernel: Optional[str] = None) -> CoverageResult:
        """Walk ``trace`` (materialized or streaming) through the system.

        Pulls the whole trace through :meth:`start`'s step closure, so a
        pulled run and an externally pushed walk (the engine's
        multi-consumer fan-out) execute identical code and produce
        bit-identical results. Under the vector kernel the pull happens
        chunk-at-a-time through ``step_chunk`` — same closures, batched
        pre-pass — and remains bit-identical by construction.
        """
        walk = self.start(trace.name)
        timer = phases_active()
        if resolve_kernel(kernel) == KERNEL_VECTOR:
            step_chunk = walk.step_chunk
            if timer is None:
                for chunk in iter_trace_chunks(trace):
                    step_chunk(chunk)
                return walk.finish()
            for chunk in iter_trace_chunks(trace):
                start = perf_counter()
                step_chunk(chunk)
                timer.add(PHASE_WALK, perf_counter() - start)
            return self._finish_timed(walk, timer)
        step = walk.step
        if timer is None:
            for access, block in self._access_blocks(trace):
                step(access, block)
            return walk.finish()
        # the python pump times the whole record loop (trace production
        # included): per-record timer calls would dwarf the walk itself
        start = perf_counter()
        for access, block in self._access_blocks(trace):
            step(access, block)
        timer.add(PHASE_WALK, perf_counter() - start)
        return self._finish_timed(walk, timer)

    @staticmethod
    def _finish_timed(walk: "DriverWalk", timer) -> CoverageResult:
        start = perf_counter()
        result = walk.finish()
        timer.add(PHASE_FINALIZE, perf_counter() - start)
        return result

    def _access_blocks(
        self, trace: TraceLike
    ) -> Iterable[Tuple[MemoryAccess, int]]:
        """Pairs of (access, block id), precomputed when possible.

        A materialized :class:`Trace` gets its block ids computed in one
        C-speed comprehension pass; a streaming source computes them on
        the fly so the walk stays O(1) in memory.
        """
        block_bits = self.system.address_map.block_bits
        if isinstance(trace, Trace):
            accesses = trace.accesses
            blocks = [a.address >> block_bits for a in accesses]
            return zip(accesses, blocks)
        return ((a, a.address >> block_bits) for a in trace)

