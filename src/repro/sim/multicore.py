"""Multiprocessor simulation: per-core hierarchies with write-invalidate
sharing.

The paper evaluates a 16-processor directory-based SMP; STeMS state is
entirely per-processor (§4), so the first-order multiprocessor effect on
the predictors is *coherence invalidations*: a write by one core removes
the block from every other core's caches and SVB, and an invalidated
block terminates its spatial generation exactly like an eviction (§2.4).

:class:`MulticoreDriver` models that: N cores with private L1/L2/SVB and
private prefetchers, a round-robin interleave of per-core traces, and a
block-granularity write-invalidate protocol (a simplified directory — we
track, per block, which cores may hold it). Invalidation latency and
bandwidth are not modelled; coverage accounting matches the uniprocessor
driver.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.common.config import SystemConfig
from repro.memsys.hierarchy import Hierarchy, ServiceLevel
from repro.memsys.svb import StreamedValueBuffer
from repro.prefetch.base import TARGET_L1, TARGET_SVB, AccessEvent, Prefetcher
from repro.sim.results import CoverageResult
from repro.trace.container import Trace

PrefetcherFactory = Callable[[], Optional[Prefetcher]]


@dataclass
class MulticoreResult:
    """Aggregate + per-core coverage for one multicore run."""

    per_core: List[CoverageResult]
    invalidations: int = 0
    #: invalidations that hit a block staged in some core's SVB
    svb_invalidations: int = 0

    @property
    def covered(self) -> int:
        return sum(r.covered for r in self.per_core)

    @property
    def uncovered(self) -> int:
        return sum(r.uncovered for r in self.per_core)

    @property
    def coverage(self) -> float:
        total = self.covered + self.uncovered
        return self.covered / total if total else 0.0

    @property
    def overpredictions(self) -> int:
        return sum(r.overpredictions for r in self.per_core)


class _Core:
    """Private state of one processor."""

    def __init__(self, core_id: int, system: SystemConfig,
                 prefetcher: Optional[Prefetcher], workload: str) -> None:
        self.core_id = core_id
        self.hierarchy = Hierarchy(system)
        self.prefetcher = prefetcher
        self.result = CoverageResult(
            workload=workload,
            prefetcher=prefetcher.name if prefetcher else "none",
        )
        self.svb = StreamedValueBuffer(
            system.svb_entries, on_discard_unused=self._on_discard
        )
        self.cursor = 0  # next access index in this core's trace

    def _on_discard(self, block: int, stream: int) -> None:
        self.result.overpredictions += 1
        if self.prefetcher is not None:
            self.prefetcher.on_svb_discard(block, stream)


class MulticoreDriver:
    """Round-robin multicore coverage simulation with write-invalidate."""

    def __init__(
        self,
        system: SystemConfig,
        prefetcher_factory: PrefetcherFactory,
    ) -> None:
        self.system = system
        self.prefetcher_factory = prefetcher_factory

    def run(self, traces: Sequence[Trace]) -> MulticoreResult:
        if not traces:
            raise ValueError("need at least one per-core trace")
        amap = self.system.address_map
        cores = [
            _Core(i, self.system, self.prefetcher_factory(), trace.name)
            for i, trace in enumerate(traces)
        ]
        #: simplified directory: block -> cores that may hold a copy
        sharers: Dict[int, Set[int]] = defaultdict(set)
        result = MulticoreResult(per_core=[c.result for c in cores])

        live = True
        while live:
            live = False
            for core, trace in zip(cores, traces):
                if core.cursor >= len(trace):
                    continue
                live = True
                access = trace[core.cursor]
                core.cursor += 1
                block = amap.block_of(access.address)
                self._step(core, access, block, sharers, result, cores)
        for core in cores:
            core.svb.drain_unused()
            core.result.overpredictions += core.hierarchy.l1.unused_prefetch_count()
            if core.prefetcher is not None and hasattr(core.prefetcher, "finish"):
                core.prefetcher.finish()
        return result

    # -- one access on one core ---------------------------------------------------

    def _step(self, core, access, block, sharers, result, cores) -> None:
        is_read = not access.is_write
        core.result.accesses += 1
        if is_read:
            core.result.reads += 1
        else:
            core.result.writes += 1

        covered = False
        stream_id = -1
        if block in core.svb:
            consumed = core.svb.consume(block)
            stream_id = consumed if consumed is not None else -1
            outcome = core.hierarchy.fill_from_svb(block)
            level = ServiceLevel.SVB
            covered = True
            if is_read:
                core.result.covered += 1
        else:
            outcome = core.hierarchy.access(block)
            level = outcome.level
            if outcome.prefetch_hit:
                covered = True
                if is_read:
                    core.result.covered += 1
            elif level is ServiceLevel.L1:
                core.result.l1_hits += 1
            elif level is ServiceLevel.L2:
                core.result.l2_hits += 1
            elif is_read:
                core.result.uncovered += 1
        sharers[block].add(core.core_id)

        # write-invalidate: remove every other core's copy; invalidations
        # terminate spatial generations like evictions (§2.4)
        if access.is_write:
            for other_id in list(sharers[block]):
                if other_id == core.core_id:
                    continue
                other = cores[other_id]
                invalidated = other.hierarchy.l1.invalidate(block)
                other.hierarchy.l2.invalidate(block)
                if block in other.svb:
                    other.svb.consume(block)  # dropped, not counted as used
                    other.result.overpredictions += 1
                    result.svb_invalidations += 1
                if invalidated and other.prefetcher is not None:
                    other.prefetcher.on_l1_eviction(block)
                result.invalidations += 1
            sharers[block] = {core.core_id}

        if core.prefetcher is None:
            self._forward_evictions(core, outcome)
            return
        self._forward_evictions(core, outcome)
        core.prefetcher.on_access(
            AccessEvent(access=access, block=block, level=level,
                        covered=covered, stream_id=stream_id)
        )
        for request in core.prefetcher.pop_requests():
            target = request.target or core.prefetcher.install_target
            pf_block = request.block
            if pf_block in core.svb or core.hierarchy.present(pf_block) is not None:
                continue
            core.result.issued_prefetches += 1
            sharers[pf_block].add(core.core_id)
            if target == TARGET_SVB:
                core.svb.insert(pf_block, request.stream_id)
            elif target == TARGET_L1:
                outcome = core.hierarchy.install_prefetch(pf_block)
                self._forward_evictions(core, outcome)
            else:
                raise ValueError(f"unknown prefetch target {target!r}")

    @staticmethod
    def _forward_evictions(core, outcome) -> None:
        if outcome.l1_unused_prefetch_evicted:
            core.result.overpredictions += 1
        if core.prefetcher is not None:
            for block in outcome.l1_evictions:
                core.prefetcher.on_l1_eviction(block)
