"""Result export: CSV / JSON writers and an ASCII bar renderer.

Experiment harnesses return plain dataclasses; these helpers turn any
list of them into files (for plotting elsewhere) or quick terminal
charts (for eyeballing figure shapes without matplotlib).
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

PathLike = Union[str, Path]


def _as_records(rows: Sequence[Any]) -> List[Dict[str, Any]]:
    records = []
    for row in rows:
        if dataclasses.is_dataclass(row) and not isinstance(row, type):
            record = dataclasses.asdict(row)
            # include computed properties (speedup, coverage, ...)
            for name in dir(type(row)):
                attr = getattr(type(row), name, None)
                if isinstance(attr, property):
                    record[name] = getattr(row, name)
            records.append(record)
        elif isinstance(row, Mapping):
            records.append(dict(row))
        else:
            raise TypeError(f"cannot export row of type {type(row).__name__}")
    return records


def write_csv(rows: Sequence[Any], path: PathLike) -> Path:
    """Write dataclass/mapping rows as CSV; returns the path."""
    records = _as_records(rows)
    if not records:
        raise ValueError("nothing to export")
    path = Path(path)
    fields = list(records[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for record in records:
            writer.writerow({k: record.get(k, "") for k in fields})
    return path


def write_json(rows: Sequence[Any], path: PathLike) -> Path:
    """Write dataclass/mapping rows as a JSON array; returns the path."""
    records = _as_records(rows)
    path = Path(path)
    with path.open("w") as handle:
        json.dump(records, handle, indent=2, default=str)
    return path


def ascii_bars(
    values: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:6.1%}",
) -> str:
    """Render a labeled horizontal bar chart, e.g. for coverage figures.

    >>> print(ascii_bars({"tms": 0.3, "stems": 0.6}, width=10))
    tms    30.0% |#####     |
    stems  60.0% |##########|
    """
    if not values:
        return ""
    label_width = max(len(k) for k in values)
    peak = max(values.values()) or 1.0
    lines = []
    for label, value in values.items():
        filled = int(round(width * value / peak)) if peak > 0 else 0
        filled = max(0, min(width, filled))
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"{label:<{label_width}} {fmt.format(value)} |{bar}|")
    return "\n".join(lines)
