"""Result export: CSV / JSON writers, result codecs and an ASCII bar renderer.

Experiment harnesses return plain dataclasses; these helpers turn any
list of them into files (for plotting elsewhere) or quick terminal
charts (for eyeballing figure shapes without matplotlib).

:func:`encode_result` / :func:`decode_result` are the tagged-JSON codecs
the engine's on-disk result cache uses: every result type an engine job
can produce (coverage, timing, and the three trace analyses) round-trips
through a plain JSON document.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

PathLike = Union[str, Path]


def _as_records(rows: Sequence[Any]) -> List[Dict[str, Any]]:
    records = []
    for row in rows:
        if dataclasses.is_dataclass(row) and not isinstance(row, type):
            record = dataclasses.asdict(row)
            # include computed properties (speedup, coverage, ...)
            for name in dir(type(row)):
                attr = getattr(type(row), name, None)
                if isinstance(attr, property):
                    record[name] = getattr(row, name)
            records.append(record)
        elif isinstance(row, Mapping):
            records.append(dict(row))
        else:
            raise TypeError(f"cannot export row of type {type(row).__name__}")
    return records


def write_csv(rows: Sequence[Any], path: PathLike) -> Path:
    """Write dataclass/mapping rows as CSV; returns the path."""
    records = _as_records(rows)
    if not records:
        raise ValueError("nothing to export")
    path = Path(path)
    fields = list(records[0].keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for record in records:
            writer.writerow({k: record.get(k, "") for k in fields})
    return path


def write_json(rows: Sequence[Any], path: PathLike) -> Path:
    """Write dataclass/mapping rows as a JSON array; returns the path."""
    records = _as_records(rows)
    path = Path(path)
    with path.open("w") as handle:
        json.dump(records, handle, indent=2, default=str)
    return path


def _result_types() -> Dict[str, type]:
    """Result dataclasses an engine job can produce, by type name.

    Imported lazily so the codec layer never participates in import
    cycles with the analysis modules.
    """
    from repro.analysis.correlation import CorrelationDistanceResult
    from repro.analysis.joint import JointCoverageResult
    from repro.analysis.repetition import RepetitionBreakdown
    from repro.sim.results import CoverageResult, TimingResult

    return {
        cls.__name__: cls
        for cls in (
            CoverageResult,
            TimingResult,
            JointCoverageResult,
            RepetitionBreakdown,
            CorrelationDistanceResult,
        )
    }


def encode_result(result: Any) -> Dict[str, Any]:
    """Encode an engine result (or tuple of results) as tagged JSON data."""
    if isinstance(result, tuple):
        return {"__result__": "tuple", "items": [encode_result(r) for r in result]}
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        name = type(result).__name__
        if name not in _result_types():
            raise TypeError(f"unregistered result type {name!r}")
        record: Dict[str, Any] = {"__result__": name}
        for field in dataclasses.fields(result):
            value = getattr(result, field.name)
            if isinstance(value, Counter):
                # JSON objects stringify int keys; a pair list round-trips
                value = {"__counter__": sorted(value.items())}
            record[field.name] = value
        return record
    raise TypeError(f"cannot encode result of type {type(result).__name__}")


def decode_result(record: Mapping[str, Any]) -> Any:
    """Inverse of :func:`encode_result`."""
    tag = record["__result__"]
    if tag == "tuple":
        return tuple(decode_result(item) for item in record["items"])
    try:
        cls = _result_types()[tag]
    except KeyError:
        raise ValueError(f"unknown result type tag {tag!r}") from None
    kwargs: Dict[str, Any] = {}
    for field in dataclasses.fields(cls):
        value = record[field.name]
        if isinstance(value, Mapping) and "__counter__" in value:
            value = Counter({key: count for key, count in value["__counter__"]})
        kwargs[field.name] = value
    return cls(**kwargs)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 40,
    fmt: str = "{:6.1%}",
) -> str:
    """Render a labeled horizontal bar chart, e.g. for coverage figures.

    >>> print(ascii_bars({"tms": 0.3, "stems": 0.6}, width=10))
    tms    30.0% |#####     |
    stems  60.0% |##########|
    """
    if not values:
        return ""
    label_width = max(len(k) for k in values)
    peak = max(values.values()) or 1.0
    lines = []
    for label, value in values.items():
        filled = int(round(width * value / peak)) if peak > 0 else 0
        filled = max(0, min(width, filled))
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"{label:<{label_width}} {fmt.format(value)} |{bar}|")
    return "\n".join(lines)
