"""Analytical out-of-order timing model (the Fig. 10 methodology).

A full cycle-accurate core is infeasible here; this model keeps the three
effects that determine prefetching speedup shape (DESIGN.md §4):

1. **Issue rate** — time advances by ``instr_gap / issue_width`` per
   access (compute between memory references).
2. **Dependence stalls** — an access whose address was produced by an
   earlier access (pointer chase) cannot start before that access
   completes: dependent off-chip misses serialize in the baseline, which
   is exactly what temporal streaming removes.
3. **Limited overlap** — independent misses overlap, but only while they
   fit in the reorder window (``rob_window`` instructions) and the MSHR
   budget (``max_outstanding_misses``): spatial bursts already enjoy
   overlap in the baseline, so covering them helps less — the paper's
   explanation for SMS's weak OLTP speedups (§5.6).

Covered accesses cost the SVB hit latency (or the L1 latency for
L1-installed prefetches): prefetches are assumed timely, consistent with
the coverage driver's definition of a covered miss.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.common.config import TimingConfig
from repro.sim.results import (
    SERVICE_L1,
    SERVICE_L2,
    SERVICE_MEMORY,
    SERVICE_PREFETCHED_L1,
    SERVICE_SVB,
    CoverageResult,
    TimingResult,
)
from repro.trace.container import Trace


def _latency_table(config: TimingConfig) -> Dict[str, int]:
    return {
        SERVICE_L1: config.l1_latency,
        SERVICE_L2: config.l2_latency,
        SERVICE_MEMORY: config.memory_latency,
        SERVICE_SVB: config.svb_latency,
        SERVICE_PREFETCHED_L1: config.l1_latency,
    }


def simulate_timing(
    trace: Trace,
    service: Sequence[str],
    config: TimingConfig = TimingConfig(),
    prefetcher_name: str = "none",
    measure_from: int = 0,
) -> TimingResult:
    """Estimate execution cycles for ``trace`` under the recorded service
    classification (produced by a driver run with ``record_service=True``).

    ``measure_from`` excludes the first N accesses from the reported cycle
    and instruction counts — the paper measures from checkpoints with
    warmed predictor state (§5.1), so performance comparisons should skip
    the cold training prefix.
    """
    if len(service) != len(trace):
        raise ValueError(
            f"service classification length {len(service)} does not match "
            f"trace length {len(trace)}"
        )
    if not 0 <= measure_from <= len(trace):
        raise ValueError(f"measure_from {measure_from} out of range")
    latency = _latency_table(config)
    n = len(trace)
    completion: List[float] = [0.0] * n
    rob: "deque[tuple[float, int]]" = deque()  # (completion, instr position)
    t = 0.0
    instr_pos = 0
    instructions = 0
    stall = 0.0
    warmup_cycles = 0.0
    warmup_instructions = 0

    for i, access in enumerate(trace):
        if i == measure_from:
            warmup_cycles = t
            warmup_instructions = instructions
        instr_pos += access.instr_gap
        instructions += access.instr_gap
        t += access.instr_gap / config.issue_width

        # retire completed misses
        while rob and rob[0][0] <= t:
            rob.popleft()
        # reorder-window limit: the oldest incomplete miss blocks issue
        # once the front has run rob_window instructions past it
        while rob and instr_pos - rob[0][1] > config.rob_window:
            stalled_until = rob.popleft()[0]
            if stalled_until > t:
                stall += stalled_until - t
                t = stalled_until

        lat = latency[service[i]]
        start = t
        dep = access.depends_on
        if dep is not None and completion[dep] > start:
            start = completion[dep]  # stall-on-use: pointer chase
        done = start + lat
        completion[i] = done

        if lat >= config.memory_latency:
            rob.append((done, instr_pos))
            if len(rob) > config.max_outstanding_misses:
                stalled_until = rob.popleft()[0]
                if stalled_until > t:
                    stall += stalled_until - t
                    t = stalled_until

    cycles = t
    if rob:
        cycles = max(cycles, max(done for done, _ in rob))
    if n:
        cycles = max(cycles, completion[n - 1])
    return TimingResult(
        workload=trace.name,
        prefetcher=prefetcher_name,
        cycles=max(0.0, cycles - warmup_cycles),
        instructions=instructions - warmup_instructions,
        memory_stall_cycles=stall,
    )


def timing_from_coverage(
    trace: Trace,
    coverage: CoverageResult,
    config: TimingConfig = TimingConfig(),
) -> TimingResult:
    """Convenience wrapper: timing for a driver result with service data."""
    if coverage.service is None:
        raise ValueError("coverage result lacks service data; "
                         "run the driver with record_service=True")
    return simulate_timing(
        trace, coverage.service, config, prefetcher_name=coverage.prefetcher
    )
