"""Analytical out-of-order timing model (the Fig. 10 methodology).

A full cycle-accurate core is infeasible here; this model keeps the three
effects that determine prefetching speedup shape (DESIGN.md §4):

1. **Issue rate** — time advances by ``instr_gap / issue_width`` per
   access (compute between memory references).
2. **Dependence stalls** — an access whose address was produced by an
   earlier access (pointer chase) cannot start before that access
   completes: dependent off-chip misses serialize in the baseline, which
   is exactly what temporal streaming removes.
3. **Limited overlap** — independent misses overlap, but only while they
   fit in the reorder window (``rob_window`` instructions) and the MSHR
   budget (``max_outstanding_misses``): spatial bursts already enjoy
   overlap in the baseline, so covering them helps less — the paper's
   explanation for SMS's weak OLTP speedups (§5.6).

Covered accesses cost the SVB hit latency (or the L1 latency for
L1-installed prefetches): prefetches are assumed timely, consistent with
the coverage driver's definition of a covered miss.

The model is an incremental consumer: :class:`TimingModel` takes one
``(access, service_class)`` pair at a time, so the coverage driver can
feed it while walking a streaming :class:`~repro.trace.container.TraceSource`
— no trace or service list is ever materialized. Completion times of
accesses are retained only while they can still matter (an access whose
completion is at or before the current clock can never delay a later
dependent access), so peak memory is bounded by the in-flight window,
not by trace length. :func:`simulate_timing` is the materialized
convenience wrapper and produces bit-identical results by construction.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, Sequence

from repro.common.config import TimingConfig
from repro.sim.results import (
    SERVICE_L1,
    SERVICE_L2,
    SERVICE_MEMORY,
    SERVICE_PREFETCHED_L1,
    SERVICE_SVB,
    CoverageResult,
    TimingResult,
)
from repro.trace.container import Trace
from repro.trace.events import MemoryAccess


def _latency_table(config: TimingConfig) -> Dict[str, int]:
    return {
        SERVICE_L1: config.l1_latency,
        SERVICE_L2: config.l2_latency,
        SERVICE_MEMORY: config.memory_latency,
        SERVICE_SVB: config.svb_latency,
        SERVICE_PREFETCHED_L1: config.l1_latency,
    }


class TimingModel:
    """Incremental ROB/MLP timing model over a classified access stream.

    Feed every access (with the service class the coverage driver
    assigned it) through :meth:`update`, then call :meth:`finalize` for
    the :class:`TimingResult`. The model keeps O(1) state with respect
    to trace length: the reorder buffer is bounded by
    ``max_outstanding_misses``, and per-access completion times are
    discarded as soon as the clock passes them (a completed access can
    never stall a later dependent one).

    Args:
        config: latency/width/window parameters of the modelled core.
        workload: name stamped on the result.
        prefetcher_name: predictor label stamped on the result.
        measure_from: number of leading accesses whose cycles and
            instructions are excluded from the reported totals — the
            paper measures from checkpoints with warmed predictor state
            (§5.1), so performance comparisons skip the cold prefix.
    """

    def __init__(
        self,
        config: TimingConfig = TimingConfig(),
        *,
        workload: str = "",
        prefetcher_name: str = "none",
        measure_from: int = 0,
    ) -> None:
        if measure_from < 0:
            raise ValueError(f"measure_from must be >= 0, got {measure_from}")
        self.config = config
        self.workload = workload
        self.prefetcher_name = prefetcher_name
        self.measure_from = measure_from
        self._latency = _latency_table(config)
        #: completion time per still-relevant access index (in-flight only)
        self._completion: Dict[int, float] = {}
        #: min-heap of (completion, index) driving the pruning above
        self._inflight: list = []
        self._rob: "deque[tuple[float, int]]" = deque()
        self._t = 0.0
        self._instr_pos = 0
        self._instructions = 0
        self._stall = 0.0
        self._warmup_cycles = 0.0
        self._warmup_instructions = 0
        self._count = 0
        self._last_done = 0.0
        self._finalized = False

    def update(self, access: MemoryAccess, service_class: str) -> None:
        """Advance the model by one classified access.

        Args:
            access: the next trace record, in trace order.
            service_class: the driver's service classification for it
                (one of the ``SERVICE_*`` constants).

        Raises:
            RuntimeError: if the model has already been finalized.
        """
        if self._finalized:
            raise RuntimeError("TimingModel.update() called after finalize()")
        config = self.config
        i = self._count
        if i == self.measure_from:
            self._warmup_cycles = self._t
            self._warmup_instructions = self._instructions
        instr_gap = access.instr_gap
        instr_pos = self._instr_pos + instr_gap
        self._instructions += instr_gap
        t = self._t + instr_gap / config.issue_width

        # retire completed misses
        rob = self._rob
        while rob and rob[0][0] <= t:
            rob.popleft()
        # reorder-window limit: the oldest incomplete miss blocks issue
        # once the front has run rob_window instructions past it
        while rob and instr_pos - rob[0][1] > config.rob_window:
            stalled_until = rob.popleft()[0]
            if stalled_until > t:
                self._stall += stalled_until - t
                t = stalled_until

        # forget completions the clock has passed: a dependent access
        # starting at or after t can no longer be delayed by them
        completion = self._completion
        inflight = self._inflight
        while inflight and inflight[0][0] <= t:
            completion.pop(heapq.heappop(inflight)[1], None)

        lat = self._latency[service_class]
        start = t
        dep = access.depends_on
        if dep is not None:
            dep_done = completion.get(dep)
            if dep_done is not None and dep_done > start:
                start = dep_done  # stall-on-use: pointer chase
        done = start + lat
        completion[i] = done
        heapq.heappush(inflight, (done, i))
        self._last_done = done

        if lat >= config.memory_latency:
            rob.append((done, instr_pos))
            if len(rob) > config.max_outstanding_misses:
                stalled_until = rob.popleft()[0]
                if stalled_until > t:
                    self._stall += stalled_until - t
                    t = stalled_until

        self._t = t
        self._instr_pos = instr_pos
        self._count = i + 1

    def finalize(self) -> TimingResult:
        """Close the stream and return the :class:`TimingResult`.

        Returns:
            Cycle/instruction totals with the warm-up prefix excluded.

        Raises:
            RuntimeError: if called twice.
        """
        if self._finalized:
            raise RuntimeError("TimingModel.finalize() called twice")
        self._finalized = True
        cycles = self._t
        if self._rob:
            cycles = max(cycles, max(done for done, _ in self._rob))
        if self._count:
            cycles = max(cycles, self._last_done)
        return TimingResult(
            workload=self.workload,
            prefetcher=self.prefetcher_name,
            cycles=max(0.0, cycles - self._warmup_cycles),
            instructions=self._instructions - self._warmup_instructions,
            memory_stall_cycles=self._stall,
        )


def simulate_timing(
    trace: Trace,
    service: Sequence[str],
    config: TimingConfig = TimingConfig(),
    prefetcher_name: str = "none",
    measure_from: int = 0,
) -> TimingResult:
    """Estimate execution cycles for ``trace`` under the recorded service
    classification (produced by a driver run with ``record_service=True``).

    This is the materialized-inputs wrapper around :class:`TimingModel`;
    streaming runs feed the model directly from the driver and never
    build ``service``. ``measure_from`` excludes the first N accesses
    from the reported cycle and instruction counts (see
    :class:`TimingModel`).
    """
    n = len(trace)
    if len(service) != n:
        raise ValueError(
            f"service classification length {len(service)} does not match "
            f"trace length {n}"
        )
    if not 0 <= measure_from <= n:
        raise ValueError(f"measure_from {measure_from} out of range")
    model = TimingModel(
        config,
        workload=trace.name,
        prefetcher_name=prefetcher_name,
        measure_from=measure_from,
    )
    update = model.update
    for access, klass in zip(trace, service):
        update(access, klass)
    return model.finalize()


def timing_from_coverage(
    trace: Trace,
    coverage: CoverageResult,
    config: TimingConfig = TimingConfig(),
) -> TimingResult:
    """Convenience wrapper: timing for a driver result with service data."""
    if coverage.service is None:
        raise ValueError("coverage result lacks service data; "
                         "run the driver with record_service=True")
    return simulate_timing(
        trace, coverage.service, config, prefetcher_name=coverage.prefetcher
    )
