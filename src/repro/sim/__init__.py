"""Simulation: the coverage driver and the analytical timing model."""

from repro.sim.driver import SimulationDriver
from repro.sim.results import CoverageResult, TimingResult
from repro.sim.timing import simulate_timing

__all__ = ["SimulationDriver", "CoverageResult", "TimingResult", "simulate_timing"]
