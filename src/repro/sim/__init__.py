"""Simulation: the coverage driver and the analytical timing model.

The driver and the incremental :class:`TimingModel` share one streaming
walk of the trace (``SimulationDriver(..., service_consumer=model)``);
:func:`simulate_timing` is the materialized convenience wrapper over a
recorded service list.
"""

from repro.sim.driver import SimulationDriver
from repro.sim.results import CoverageResult, TimingResult
from repro.sim.timing import TimingModel, simulate_timing

__all__ = [
    "SimulationDriver",
    "CoverageResult",
    "TimingResult",
    "TimingModel",
    "simulate_timing",
]
