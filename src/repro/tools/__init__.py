"""Operational console tools for the on-disk planes.

The simulation engine keeps four kinds of durable state: trace-store
entries, result-cache shards, the optional sqlite catalog, and run
journals. :mod:`repro.tools.fsck` (the ``repro-fsck`` console script) is
the offline integrity sweep over all of them — the runtime recovery
paths (quarantine-and-regenerate, journal replay) handle damage *when a
run trips over it*; fsck finds and repairs it *before* anyone does.
"""
