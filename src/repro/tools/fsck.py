"""``repro-fsck``: offline integrity sweep over the durable planes.

Walks the result cache and/or trace store and verifies every piece of
durable state the engine relies on:

* **trace-store entries** — full structural + payload-CRC replay of
  every ``??/*.trace`` file (the same check a replaying run performs,
  but over the whole store at once);
* **result-cache shards** — JSON shape, filename/content-hash match,
  and result decodability of every shard
  (:func:`repro.engine.cache.inspect_shard`);
* **the sqlite catalog** — ``index.sqlite`` opens, and every cataloged
  hash still has a shard on disk (orphan rows are reported);
* **run journals** — every ``runs/<run_id>/journal.jsonl`` parses to a
  valid prefix (a torn final line is normal crash evidence; mid-file
  damage is not), and manifests are readable;
* **telemetry files** — ``metrics.json``/``trace.json`` in run
  directories parse as JSON. Telemetry is derived observability data,
  never load-bearing state, so a torn or orphaned telemetry file is
  always a *note* (exit code 0), though ``--repair`` still quarantines
  unparseable ones so ``repro-report`` sees a clean directory;
* **stray temp files** — ``*.tmp.<pid>`` leftovers from writers that
  died between write and atomic rename.

``--repair`` routes findings through the same quarantine paths the
runtime uses (:func:`repro.engine.faults.quarantine_file`): corrupt
entries/shards are moved into ``quarantine/`` with reason files (the
next run regenerates them), damaged journals are quarantined and the
original truncated to its valid prefix, orphan catalog rows are
deleted, unreadable manifests are rebuilt from their journal, and stray
temp files are removed.

Exit code: ``0`` when the sweep found no damage (stale-version cache
shards and crashed-but-resumable runs are *reported* but are not
damage), ``1`` when damage was found and remains unrepaired, ``0``
again when ``--repair`` fixed everything it found.
"""

from __future__ import annotations

import argparse
import json
import sqlite3
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.engine.cache import inspect_shard
from repro.engine.faults import QUARANTINE_DIR, quarantine_file
from repro.engine.journal import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    RUNS_DIR,
    load_run,
    write_manifest,
)
from repro.telemetry import METRICS_NAME, TRACE_NAME
from repro.tracestore.codec import read_accesses


@dataclass
class Finding:
    """One problem (or notable state) the sweep turned up."""

    path: Path
    plane: str           #: trace / cache / catalog / journal / manifest
    problem: str
    damage: bool = True  #: counts toward the exit code (notes don't)
    repaired: bool = False
    action: str = ""     #: what --repair did (or would do)

    def format(self) -> str:
        tag = "repaired" if self.repaired else (
            "note" if not self.damage else "DAMAGE"
        )
        text = f"[{tag}] {self.plane}: {self.path}: {self.problem}"
        if self.repaired and self.action:
            text += f" — {self.action}"
        return text


@dataclass
class Report:
    """Accumulated sweep results."""

    findings: List[Finding] = field(default_factory=list)
    checked: int = 0

    def add(self, finding: Finding) -> Finding:
        self.findings.append(finding)
        return finding

    @property
    def unrepaired(self) -> List[Finding]:
        return [f for f in self.findings
                if f.damage and not f.repaired]

    @property
    def damage_found(self) -> int:
        return sum(1 for f in self.findings if f.damage)


def _is_stray_tmp(path: Path) -> bool:
    parts = path.name.split(".tmp.")
    return len(parts) == 2 and parts[1].isdigit()


def _sweep_strays(root: Path, plane: str, report: Report,
                  repair: bool) -> None:
    """Temp files orphaned by a writer that died pre-rename."""
    for pattern in ("*.tmp.*", "??/*.tmp.*", f"{RUNS_DIR}/*/*.tmp.*"):
        for stray in sorted(root.glob(pattern)):
            if not _is_stray_tmp(stray):
                continue
            finding = report.add(Finding(
                stray, plane, "stray temp file (writer died pre-rename)",
                action="removed",
            ))
            if repair:
                try:
                    stray.unlink()
                    finding.repaired = True
                except OSError as error:
                    finding.action = f"unlink failed: {error}"


def fsck_trace_store(directory: Path, report: Report,
                     repair: bool) -> None:
    """Verify every store entry end to end (structure + payload CRC)."""
    for entry in sorted(directory.glob("??/*.trace")):
        report.checked += 1
        try:
            for _ in read_accesses(entry):
                pass
        except Exception as error:
            finding = report.add(Finding(
                entry, "trace", f"{type(error).__name__}: {error}",
                action="quarantined (next run regenerates from seed)",
            ))
            if repair:
                moved = quarantine_file(
                    entry, directory, f"fsck: {finding.problem}"
                )
                finding.repaired = moved is not None
    _sweep_strays(directory, "trace", report, repair)


def fsck_cache(directory: Path, report: Report, repair: bool) -> None:
    """Verify cache shards, the sqlite catalog, and run journals."""
    shards = list(directory.glob("??/*.json"))
    shards += [p for p in directory.glob("*.json")
               if p.parent == directory]
    for shard in sorted(shards):
        report.checked += 1
        status, detail = inspect_shard(shard)
        if status == "corrupt":
            finding = report.add(Finding(
                shard, "cache", detail,
                action="quarantined (job re-executes on next run)",
            ))
            if repair:
                moved = quarantine_file(shard, directory, f"fsck: {detail}")
                finding.repaired = moved is not None
        elif status == "stale":
            report.add(Finding(shard, "cache", detail, damage=False))
    _fsck_catalog(directory, report, repair)
    _fsck_journals(directory / RUNS_DIR, report, repair)
    _sweep_strays(directory, "cache", report, repair)


def _fsck_catalog(directory: Path, report: Report, repair: bool) -> None:
    catalog = directory / "index.sqlite"
    if not catalog.is_file():
        return
    report.checked += 1
    try:
        db = sqlite3.connect(catalog)
        rows = db.execute("SELECT hash FROM results").fetchall()
    except sqlite3.Error as error:
        finding = report.add(Finding(
            catalog, "catalog", f"unreadable: {error}",
            action="quarantined (the catalog is an accelerator; "
            "shards are the source of truth)",
        ))
        if repair:
            moved = quarantine_file(
                catalog, directory, f"fsck: {finding.problem}"
            )
            finding.repaired = moved is not None
        return
    orphans = [
        h for (h,) in rows
        if not (directory / h[:2] / f"{h}.json").is_file()
        and not (directory / f"{h}.json").is_file()
    ]
    if orphans:
        finding = report.add(Finding(
            catalog, "catalog",
            f"{len(orphans)} cataloged hash(es) with no shard on disk",
            action="orphan rows deleted",
        ))
        if repair:
            try:
                with db:
                    db.executemany(
                        "DELETE FROM results WHERE hash = ?",
                        [(h,) for h in orphans],
                    )
                finding.repaired = True
            except sqlite3.Error as error:
                finding.action = f"delete failed: {error}"
    db.close()


def _fsck_journals(runs: Path, report: Report, repair: bool) -> None:
    if not runs.is_dir():
        return
    for run_dir in sorted(p for p in runs.iterdir() if p.is_dir()):
        report.checked += 1
        journal_path = run_dir / JOURNAL_NAME
        if not journal_path.is_file():
            report.add(Finding(
                run_dir, "journal", f"no {JOURNAL_NAME} "
                "(run directory is unusable)",
                action="",  # nothing to rebuild from
            ))
            for name in (METRICS_NAME, TRACE_NAME):
                telemetry_path = run_dir / name
                if telemetry_path.is_file():
                    report.add(Finding(
                        telemetry_path, "telemetry",
                        "orphaned (its run has no journal)", damage=False,
                    ))
            continue
        record = load_run(run_dir)
        if record.damage is not None:
            where = (
                "torn final line (normal crash evidence)"
                if record.damage.torn_tail
                else f"damage at line {record.damage.line} — events after "
                "it are lost"
            )
            finding = report.add(Finding(
                journal_path, "journal",
                f"{record.damage.reason}; {where}",
                action="quarantined the damaged file, truncated the "
                f"original to its {record.valid_bytes}-byte valid prefix",
            ))
            if repair:
                finding.repaired = _repair_journal(record, journal_path)
        _check_manifest(record, run_dir, report, repair)
        _check_telemetry(run_dir, report, repair)


def _repair_journal(record, journal_path: Path) -> bool:
    try:
        raw = journal_path.read_bytes()
        moved = quarantine_file(
            journal_path, record.directory,
            f"fsck: journal damage at line {record.damage.line}: "
            f"{record.damage.reason}",
        )
        if moved is None:
            return False
        journal_path.write_bytes(raw[:record.valid_bytes])
        return True
    except OSError:
        return False


def _check_telemetry(run_dir: Path, report: Report, repair: bool) -> None:
    """Telemetry artifacts are derived data: a torn ``metrics.json`` or
    ``trace.json`` (writer died mid-rename, disk full) is never damage —
    the journal remains the source of truth — but ``--repair``
    quarantines unparseable ones so ``repro-report`` and trace viewers
    don't trip over them."""
    for name in (METRICS_NAME, TRACE_NAME):
        path = run_dir / name
        if not path.is_file():
            continue
        report.checked += 1
        try:
            json.loads(path.read_text())
        except (OSError, ValueError) as error:
            finding = report.add(Finding(
                path, "telemetry",
                f"unparseable ({type(error).__name__}); telemetry is "
                "derived data — the journal is unaffected",
                damage=False,
                action="quarantined",
            ))
            if repair:
                moved = quarantine_file(
                    path, run_dir, f"fsck: unparseable {name}"
                )
                finding.repaired = moved is not None


def _check_manifest(record, run_dir: Path, report: Report,
                    repair: bool) -> None:
    manifest_path = run_dir / MANIFEST_NAME
    broken = not manifest_path.is_file()
    if not broken:
        try:
            if not isinstance(json.loads(manifest_path.read_text()), dict):
                broken = True
        except (OSError, ValueError):
            broken = True
    if broken:
        finding = report.add(Finding(
            manifest_path, "manifest",
            "missing or unparseable",
            action="rebuilt from the journal",
        ))
        if repair:
            header = record.header
            write_manifest(run_dir, {
                "run_id": record.run_id,
                "status": record.finished_status or "running",
                "pid": header.get("pid"),
                "started": header.get("started"),
                "argv": header.get("argv"),
                "experiments": header.get("experiments"),
                "jobs_scheduled": len(record.scheduled),
                "jobs_completed": len(record.completed),
                "jobs_failed": len(record.failed),
                "rebuilt_by": "repro-fsck",
            })
            finding.repaired = True
    elif record.status() == "crashed":
        report.add(Finding(
            manifest_path, "manifest",
            f"run {record.run_id} crashed "
            f"({len(record.completed)}/{len(record.scheduled)} jobs "
            "durable) — resumable with --resume",
            damage=False,
        ))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fsck",
        description="Offline integrity sweep over trace-store entries, "
        "result-cache shards, the sqlite catalog, and run journals.",
    )
    parser.add_argument(
        "--cache-dir", action="append", default=[], metavar="DIR",
        help="result-cache directory to sweep (shards, catalog, "
        "runs/ journals); repeatable",
    )
    parser.add_argument(
        "--trace-store", action="append", default=[], metavar="DIR",
        help="trace-store directory to sweep; repeatable",
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="route damage through the quarantine paths (corrupt "
        "entries moved aside with reason files, journals truncated to "
        "their valid prefix, manifests rebuilt, strays removed)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only the summary line (findings still set the "
        "exit code)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.cache_dir and not args.trace_store:
        build_parser().error(
            "nothing to check: pass --cache-dir and/or --trace-store"
        )
    report = Report()
    for directory in args.trace_store:
        path = Path(directory)
        if not path.is_dir():
            print(f"[fsck] trace store {path}: no such directory",
                  file=sys.stderr)
            return 2
        fsck_trace_store(path, report, args.repair)
    for directory in args.cache_dir:
        path = Path(directory)
        if not path.is_dir():
            print(f"[fsck] cache {path}: no such directory",
                  file=sys.stderr)
            return 2
        fsck_cache(path, report, args.repair)
    if not args.quiet:
        for finding in report.findings:
            print(finding.format())
    repaired = sum(1 for f in report.findings if f.repaired)
    print(
        f"[fsck] {report.checked} object(s) checked, "
        f"{report.damage_found} damaged, {repaired} repaired"
        + (f" (quarantine evidence under {QUARANTINE_DIR}/)"
           if repaired else "")
    )
    return 1 if report.unrepaired else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
