"""``repro-report``: render a human summary of one journaled run.

Reads the run directory's three artifacts — ``manifest.json`` (status),
the write-ahead journal (job lifecycle, timestamps), and the telemetry
plane's ``metrics.json`` (counters, phase timers, per-job spans) — and
prints a run report: header, job outcomes, a per-kind throughput table,
fault counters, the slowest jobs, and the hot-path phase breakdown.

Degrades gracefully: a crashed run has no ``metrics.json`` (it is
written at run end), so the report falls back to the journal alone —
job counts and wall times come from the journal's per-event ``t``
timestamps and the summary says so. A resumed run names the run that
superseded it (and vice versa).

Usage::

    repro-report                      # the most recent run
    repro-report <run_id>
    repro-report last --cache-dir .ci-cache
    repro-report <run_id> --json      # the raw report dict
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.engine.journal import (
    JOURNAL_NAME,
    JournalError,
    RunRecord,
    find_run,
    read_journal,
    runs_root,
)
from repro.telemetry import METRICS_NAME, PHASES

#: fault counters rendered in the faults section, display order (matches
#: the ``EngineStats.degraded`` contract)
FAULT_COUNTERS = (
    "retries", "requeued", "timeouts", "pool_respawns", "quarantined",
    "cache_corrupt", "replay_fallbacks", "isolation_fallbacks",
    "serial_fallbacks", "broadcast_fallbacks", "failures",
)

SLOWEST = 5


def load_metrics(directory: Path) -> Optional[Dict[str, Any]]:
    """The run's ``metrics.json``, or None (absent/unparseable — a
    crashed run never wrote one; fsck quarantines torn ones)."""
    path = directory / METRICS_NAME
    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def _job_timings(events: List[Dict[str, Any]]) -> Dict[str, float]:
    """Journal-derived wall seconds per completed job (first dispatch →
    completion), for runs without telemetry spans. Journals from before
    per-event ``t`` timestamps yield nothing — callers must tolerate an
    empty dict."""
    first_dispatch: Dict[str, float] = {}
    walls: Dict[str, float] = {}
    for event in events:
        t = event.get("t")
        if not isinstance(t, (int, float)):
            continue
        job = str(event.get("job"))
        kind = event.get("event")
        if kind == "attempt_started":
            first_dispatch.setdefault(job, float(t))
        elif kind == "job_completed" and job in first_dispatch:
            walls[job] = float(t) - first_dispatch[job]
    return walls


def build_report(record: RunRecord, events: List[Dict[str, Any]],
                 metrics: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Everything the renderer needs, as one JSON-able dict."""
    counters: Dict[str, Any] = (metrics or {}).get("counters", {})
    spans: List[Dict[str, Any]] = (metrics or {}).get("spans", [])
    final_stats: Optional[Dict[str, Any]] = None
    for event in events:
        if event.get("event") == "run_finished":
            stats = event.get("stats")
            if isinstance(stats, dict):
                final_stats = stats

    def engine_counter(name: str) -> int:
        if counters:
            return int(counters.get("engine." + name, 0))
        if final_stats is not None:
            return int(final_stats.get(name, 0))
        return 0

    kind_of = {
        job_hash: str(describe.get("kind", "?"))
        for job_hash, describe in record.scheduled.items()
    }
    kinds: Dict[str, Dict[str, Any]] = {}

    def kind_row(kind: str) -> Dict[str, Any]:
        return kinds.setdefault(kind, {
            "jobs": 0, "completed": 0, "cached": 0, "failed": 0,
            "retries": 0, "accesses": 0, "wall_s": 0.0,
        })

    for job_hash in record.scheduled:
        row = kind_row(kind_of[job_hash])
        row["jobs"] += 1
        if record.completed.get(job_hash) == "cache":
            row["cached"] += 1
        elif job_hash in record.completed:
            row["completed"] += 1
        if job_hash in record.failed:
            row["failed"] += 1
        row["retries"] += max(0, record.attempts.get(job_hash, 1) - 1)
    for name, value in counters.items():
        if name.startswith("walk.accesses."):
            kind_row(name[len("walk.accesses."):])["accesses"] += int(value)

    # wall time per kind: telemetry spans when present, else the
    # journal's per-event timestamps
    timed_source = "spans" if spans else "journal"
    if spans:
        for span in spans:
            if span.get("status") == "ok" and span.get("wall_s"):
                kind_row(str(span.get("kind", "?")))["wall_s"] += float(
                    span["wall_s"]
                )
    else:
        for job_hash, wall in _job_timings(events).items():
            kind_row(kind_of.get(job_hash, "?"))["wall_s"] += wall
    for row in kinds.values():
        wall = row["wall_s"]
        row["wall_s"] = round(wall, 3)
        row["accesses_per_second"] = (
            round(row["accesses"] / wall, 1)
            if wall > 0 and row["accesses"] else None
        )

    # slowest jobs: spans when present, else journal timings
    slowest: List[Dict[str, Any]] = []
    if spans:
        closed = [s for s in spans if s.get("wall_s")]
        closed.sort(key=lambda s: -float(s["wall_s"]))
        slowest = [
            {
                "label": s.get("label"),
                "kind": s.get("kind"),
                "worker": s.get("worker"),
                "attempt": s.get("attempt"),
                "status": s.get("status"),
                "wall_s": round(float(s["wall_s"]), 3),
            }
            for s in closed[:SLOWEST]
        ]
    else:
        timings = sorted(
            _job_timings(events).items(), key=lambda item: -item[1]
        )
        slowest = [
            {
                "label": record.labels.get(job_hash, job_hash[:12]),
                "kind": kind_of.get(job_hash, "?"),
                "worker": None,
                "attempt": record.attempts.get(job_hash, 1),
                "status": "ok",
                "wall_s": round(wall, 3),
            }
            for job_hash, wall in timings[:SLOWEST]
        ]

    phases = {}
    for phase in PHASES:
        seconds = counters.get(f"phase.{phase}.seconds")
        if seconds:
            phases[phase] = {
                "seconds": round(float(seconds), 3),
                "calls": int(counters.get(f"phase.{phase}.calls", 0)),
            }

    status = record.status()
    resumed_by = record.manifest.get("resumed_by")
    resumed_from = record.header.get("resumed_from")
    faults = {
        name: engine_counter(name)
        for name in FAULT_COUNTERS
        if engine_counter(name)
    }
    return {
        "run": record.run_id,
        "status": status,
        "started": record.started or None,
        "experiments": record.header.get("experiments")
        or record.manifest.get("experiments") or [],
        "argv": record.header.get("argv"),
        "resumed_by": resumed_by,
        "resumed_from": resumed_from,
        "telemetry": metrics is not None,
        "timings_from": timed_source,
        "jobs": {
            "scheduled": len(record.scheduled),
            "completed": sum(
                1 for source in record.completed.values()
                if source != "cache"
            ),
            "from_cache": sum(
                1 for source in record.completed.values()
                if source == "cache"
            ),
            "failed": len(record.failed),
            "incomplete": len(record.incomplete()),
            "retries": engine_counter("retries"),
        },
        "kinds": kinds,
        "faults": faults,
        "slowest": slowest,
        "phases": phases,
        "journal_damage": (
            {"line": record.damage.line, "reason": record.damage.reason,
             "torn_tail": record.damage.torn_tail}
            if record.damage else None
        ),
    }


def render(report: Dict[str, Any]) -> str:
    """The human-readable report text."""
    lines: List[str] = []
    title = f"run {report['run']} — {report['status']}"
    if report.get("resumed_by"):
        title += f" (resumed by {report['resumed_by']})"
    if report.get("resumed_from"):
        title += f" (resumed from {report['resumed_from']})"
    lines.append(title)
    lines.append("=" * len(title))
    if report.get("started"):
        lines.append(f"started      {report['started']}")
    if report.get("experiments"):
        lines.append(f"experiments  {' '.join(report['experiments'])}")
    if report.get("argv"):
        lines.append(f"argv         {' '.join(report['argv'])}")
    if not report["telemetry"]:
        lines.append(
            "telemetry    no metrics.json (run crashed before writing it, "
            "or REPRO_TELEMETRY=off) — journal-only summary"
        )
    if report.get("journal_damage"):
        damage = report["journal_damage"]
        shape = "torn tail" if damage["torn_tail"] else "mid-file damage"
        lines.append(
            f"journal      {shape} at line {damage['line']} "
            f"({damage['reason']}); valid prefix used"
        )

    jobs = report["jobs"]
    lines.append("")
    lines.append(
        f"jobs         {jobs['scheduled']} scheduled, "
        f"{jobs['completed']} simulated, {jobs['from_cache']} from cache, "
        f"{jobs['failed']} failed, {jobs['incomplete']} incomplete, "
        f"{jobs['retries']} retries"
    )

    if report["kinds"]:
        lines.append("")
        header = (
            f"{'kind':<12} {'jobs':>5} {'done':>5} {'cache':>5} "
            f"{'fail':>5} {'accesses':>10} {'wall s':>8} {'acc/s':>12}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for kind in sorted(report["kinds"]):
            row = report["kinds"][kind]
            rate = row.get("accesses_per_second")
            lines.append(
                f"{kind:<12} {row['jobs']:>5} {row['completed']:>5} "
                f"{row['cached']:>5} {row['failed']:>5} "
                f"{row['accesses']:>10} {row['wall_s']:>8.2f} "
                f"{rate if rate is not None else '-':>12}"
            )
        lines.append(f"(wall times from {report['timings_from']})")

    if report["faults"]:
        lines.append("")
        lines.append("faults: " + ", ".join(
            f"{value} {name.replace('_', ' ')}"
            for name, value in report["faults"].items()
        ))

    if report["slowest"]:
        lines.append("")
        lines.append("slowest jobs:")
        for entry in report["slowest"]:
            worker = f" [{entry['worker']}]" if entry.get("worker") else ""
            lines.append(
                f"  {entry['wall_s']:>8.2f}s  {entry['label']} "
                f"({entry['kind']}, attempt {entry['attempt']}, "
                f"{entry['status']}){worker}"
            )

    if report["phases"]:
        lines.append("")
        lines.append("phase breakdown (in-worker hot-path time):")
        total = sum(p["seconds"] for p in report["phases"].values())
        for phase, data in report["phases"].items():
            share = (100.0 * data["seconds"] / total) if total else 0.0
            lines.append(
                f"  {phase:<14} {data['seconds']:>8.2f}s "
                f"({share:>4.1f}%)  {data['calls']} calls"
            )
        lines.append(
            "  (phases overlap: the pre-pass runs inside a chunk's "
            "walk step)"
        )
    return "\n".join(lines)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "run", nargs="?", default="last",
        help="run id under <cache-dir>/runs/, or 'last' (default)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result cache whose runs/ directory holds the journals "
        "(default: .repro-cache)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the raw report dict as JSON instead of the table",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    root = runs_root(args.cache_dir)
    try:
        record = find_run(root, args.run)
    except JournalError as error:
        print(f"repro-report: {error}", file=sys.stderr)
        return 2
    events, _, _ = read_journal(record.directory / JOURNAL_NAME)
    metrics = load_metrics(record.directory)
    report = build_report(record, events, metrics)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render(report))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
