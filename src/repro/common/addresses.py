"""Address arithmetic shared by the caches, prefetchers and analyses.

The simulator works with three granularities:

* **byte addresses** — what workload generators emit,
* **block numbers** — byte address with the block-offset bits stripped
  (the cache and all prefetchers operate on these),
* **regions** — fixed-size groups of consecutive blocks (2 KB = 32 blocks
  in the paper), the granularity of spatial correlation.

All conversions live in :class:`AddressMap` so that every component agrees
on the geometry and tests can exercise non-default geometries.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AddressMap:
    """Fixed address geometry: block size and spatial-region size.

    Parameters mirror the paper: 64-byte cache blocks and 2 KB spatial
    regions (32 blocks per region).
    """

    block_bytes: int = 64
    region_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.block_bytes <= 0 or self.block_bytes & (self.block_bytes - 1):
            raise ValueError(f"block_bytes must be a power of two, got {self.block_bytes}")
        if self.region_bytes <= 0 or self.region_bytes & (self.region_bytes - 1):
            raise ValueError(f"region_bytes must be a power of two, got {self.region_bytes}")
        if self.region_bytes < self.block_bytes:
            raise ValueError("region_bytes must be >= block_bytes")
        # Derived geometry, precomputed once: these sit on every
        # per-access path (block/region mapping in the caches,
        # prefetchers and analyses), so they must be plain attribute
        # loads, not per-call recomputation. Deliberately not dataclass
        # fields — equality, hash, repr and the constructor signature
        # depend only on the two sizes above; ``object.__setattr__``
        # is the frozen-dataclass idiom for derived attributes.
        set_attr = object.__setattr__
        set_attr(self, "block_bits", self.block_bytes.bit_length() - 1)
        set_attr(self, "region_bits", self.region_bytes.bit_length() - 1)
        blocks_per_region = self.region_bytes // self.block_bytes
        set_attr(self, "blocks_per_region", blocks_per_region)
        set_attr(
            self, "region_block_bits", blocks_per_region.bit_length() - 1
        )
        set_attr(self, "_region_offset_mask", blocks_per_region - 1)
        set_attr(self, "_region_base_mask", ~(blocks_per_region - 1))

    # -- byte address -> coarser granularities ------------------------------

    def block_of(self, byte_addr: int) -> int:
        """Block number containing ``byte_addr``."""
        return byte_addr >> self.block_bits

    def region_of(self, byte_addr: int) -> int:
        """Region number containing ``byte_addr``."""
        return byte_addr >> self.region_bits

    # -- block number helpers ------------------------------------------------

    def region_of_block(self, block: int) -> int:
        """Region number containing block number ``block``."""
        return block >> self.region_block_bits

    def offset_in_region(self, block: int) -> int:
        """Block offset (0 .. blocks_per_region-1) of ``block`` in its region."""
        return block & self._region_offset_mask

    def region_base_block(self, block: int) -> int:
        """First block number of the region containing ``block``."""
        return block & self._region_base_mask

    def block_in_region(self, region: int, offset: int) -> int:
        """Block number at ``offset`` within ``region``."""
        if not 0 <= offset < self.blocks_per_region:
            raise ValueError(
                f"offset {offset} out of range for {self.blocks_per_region}-block regions"
            )
        return (region << self.region_block_bits) | offset

    # -- block number -> byte address ---------------------------------------

    def byte_of_block(self, block: int) -> int:
        """Base byte address of ``block``."""
        return block << self.block_bits


#: Geometry used throughout the paper: 64 B blocks, 2 KB regions.
DEFAULT_ADDRESS_MAP = AddressMap()
