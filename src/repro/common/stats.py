"""Hierarchical statistics counters.

Every simulator component owns a :class:`StatGroup`; the driver merges them
into one report. Counters are created on first use so components do not
need to pre-declare everything they might count.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class StatGroup:
    """A named bag of integer/float counters with optional sub-groups."""

    def __init__(self, name: str = "stats") -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)
        self._children: Dict[str, "StatGroup"] = {}

    # -- counters -------------------------------------------------------------

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def set(self, key: str, value: float) -> None:
        self._counters[key] = value

    def get(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __getitem__(self, key: str) -> float:
        return self.get(key)

    def counters(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    # -- sub-groups -------------------------------------------------------------

    def child(self, name: str) -> "StatGroup":
        """Return (creating if needed) the sub-group ``name``."""
        if name not in self._children:
            self._children[name] = StatGroup(name)
        return self._children[name]

    def children(self) -> Iterator["StatGroup"]:
        return iter(self._children.values())

    # -- derived ----------------------------------------------------------------

    def ratio(self, numerator: str, denominator: str) -> float:
        """Safe ratio of two counters (0.0 when the denominator is zero)."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def merge(self, other: "StatGroup") -> None:
        """Accumulate ``other`` into this group (recursively)."""
        for key, value in other._counters.items():
            self._counters[key] += value
        for name, sub in other._children.items():
            self.child(name).merge(sub)

    def to_dict(self) -> Dict[str, object]:
        """Nested plain-dict view (for JSON output and test assertions)."""
        out: Dict[str, object] = dict(self._counters)
        for name, sub in self._children.items():
            out[name] = sub.to_dict()
        return out

    def format(self, indent: int = 0) -> str:
        """Human-readable multi-line rendering."""
        pad = "  " * indent
        lines = [f"{pad}{self.name}:"]
        for key, value in self.counters():
            if float(value).is_integer():
                lines.append(f"{pad}  {key}: {int(value)}")
            else:
                lines.append(f"{pad}  {key}: {value:.4f}")
        for sub in self._children.values():
            lines.append(sub.format(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatGroup({self.name!r}, {dict(self._counters)!r})"
