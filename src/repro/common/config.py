"""Configuration dataclasses for the memory system and every prefetcher.

``SystemConfig.paper()`` reproduces Table 1 of the paper; the default
``SystemConfig.scaled()`` shrinks the hierarchy proportionally so that
synthetic traces of a few hundred thousand accesses exhibit the same miss
mix the paper observes on multi-gigabyte working sets (see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.addresses import AddressMap


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_bytes):
            raise ValueError(
                "cache size must be a multiple of associativity * block size: "
                f"{self.size_bytes} / ({self.associativity} * {self.block_bytes})"
            )

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class TimingConfig:
    """Parameters of the analytical out-of-order timing model (Fig. 10).

    Latencies are in cycles and approximate Table 1 (4 GHz core, 25-cycle
    L2 hit, 40 ns DRAM plus interconnect hops for a remote access).
    """

    issue_width: int = 4
    l1_latency: int = 2
    l2_latency: int = 25
    memory_latency: int = 300
    svb_latency: int = 4
    rob_window: int = 96
    max_outstanding_misses: int = 16


@dataclass(frozen=True)
class SystemConfig:
    """Complete memory-system parameter set (Table 1, left column)."""

    l1: CacheConfig
    l2: CacheConfig
    address_map: AddressMap = field(default_factory=AddressMap)
    svb_entries: int = 64
    timing: TimingConfig = field(default_factory=TimingConfig)

    @staticmethod
    def paper() -> "SystemConfig":
        """Table-1-faithful hierarchy: 64 KB 2-way L1d, 8 MB 8-way L2."""
        return SystemConfig(
            l1=CacheConfig(size_bytes=64 * 1024, associativity=2),
            l2=CacheConfig(size_bytes=8 * 1024 * 1024, associativity=8),
        )

    @staticmethod
    def scaled() -> "SystemConfig":
        """Proportionally scaled hierarchy for tractable trace lengths.

        16 KB 2-way L1d and 512 KB 8-way L2; the L2:L1 capacity ratio (32x)
        is within 4x of the paper's (128x) while letting working sets of a
        megabyte or so generate the paper's off-chip miss mix at trace
        lengths of a few hundred thousand references.
        """
        return SystemConfig(
            l1=CacheConfig(size_bytes=16 * 1024, associativity=2),
            l2=CacheConfig(size_bytes=512 * 1024, associativity=8),
        )

    @staticmethod
    def tiny() -> "SystemConfig":
        """Very small hierarchy for unit tests (4 KB L1, 32 KB L2)."""
        return SystemConfig(
            l1=CacheConfig(size_bytes=4 * 1024, associativity=2),
            l2=CacheConfig(size_bytes=32 * 1024, associativity=4),
            svb_entries=16,
        )


@dataclass(frozen=True)
class StrideConfig:
    """Table-1 baseline stride prefetcher: 32-entry PC table, <=16 strides."""

    table_entries: int = 32
    max_distinct_strides: int = 16
    degree: int = 2
    confidence_threshold: int = 2


@dataclass(frozen=True)
class SMSConfig:
    """Spatial Memory Streaming [21] with the paper's counter upgrade.

    ``use_counters=False`` gives the original bit-vector PHT; STeMS' §4.3
    change (2-bit saturating counters per block) is the default.
    """

    agt_entries: int = 64
    pht_entries: int = 16384
    use_counters: bool = True
    counter_bits: int = 2
    predict_threshold: int = 2
    #: install prefetches straight into L1 (the SMS paper's design) or SVB
    install_target: str = "l1"

    @property
    def counter_max(self) -> int:
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class TMSConfig:
    """Temporal Memory Streaming [26]: CMOB + stream queues."""

    cmob_entries: int = 131072
    stream_queues: int = 8
    lookahead: int = 8
    #: blocks fetched when a stream is first allocated. TMS starts several
    #: deep so that a stale entry at the stream head does not kill the
    #: stream before it can lock on (the recorded sequence interleaves
    #: misses from all behaviours, §2.2).
    initial_fetch: int = 4

    @staticmethod
    def paper() -> "TMSConfig":
        """384K-entry CMOB (~2 MB / processor)."""
        return TMSConfig(cmob_entries=384 * 1024)


@dataclass(frozen=True)
class STeMSConfig:
    """Spatio-Temporal Memory Streaming (the paper's contribution, §4)."""

    rmob_entries: int = 65536
    pst_entries: int = 16384
    agt_entries: int = 64
    counter_bits: int = 2
    predict_threshold: int = 2
    reconstruction_entries: int = 256
    #: +/- slots searched when a reconstruction slot is occupied (§4.3)
    placement_window: int = 2
    stream_queues: int = 8
    lookahead: int = 8
    #: §4.2 fetches a single block at stream start to limit erroneous
    #: fetches; 2 keeps that intent while tolerating one stale head entry
    initial_fetch: int = 2
    #: cap on RMOB entries consumed per reconstruction episode
    reconstruction_batch: int = 32

    @staticmethod
    def paper() -> "STeMSConfig":
        """128K-entry RMOB (~1 MB / processor), 16K-entry PST (~640 KB)."""
        return STeMSConfig(rmob_entries=128 * 1024)

    @staticmethod
    def scientific() -> "STeMSConfig":
        """Scientific-workload variant: lookahead 12 (§4.3)."""
        return STeMSConfig(lookahead=12)

    @property
    def counter_max(self) -> int:
        return (1 << self.counter_bits) - 1
