"""Shared infrastructure: address arithmetic, LRU containers, stats, config.

These utilities are deliberately free of simulator policy — every other
subpackage (memory system, prefetchers, analysis) builds on them.
"""

from repro.common.addresses import AddressMap, DEFAULT_ADDRESS_MAP
from repro.common.config import (
    CacheConfig,
    SMSConfig,
    StrideConfig,
    STeMSConfig,
    SystemConfig,
    TimingConfig,
    TMSConfig,
)
from repro.common.lru import LRUSet, LRUTable
from repro.common.stats import StatGroup

__all__ = [
    "AddressMap",
    "DEFAULT_ADDRESS_MAP",
    "CacheConfig",
    "SMSConfig",
    "StrideConfig",
    "STeMSConfig",
    "SystemConfig",
    "TimingConfig",
    "TMSConfig",
    "LRUSet",
    "LRUTable",
    "StatGroup",
]
