"""Small LRU containers used by caches, predictor tables and stream queues.

``OrderedDict`` gives O(1) recency updates; these wrappers add fixed
capacity and optional eviction callbacks, which the memory system uses to
signal spatial-generation termination to the prefetchers.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

#: absent-key sentinel — ``get`` runs on per-access predictor paths, and a
#: single ``dict.get`` beats the membership-test-then-index double lookup
_MISSING = object()


class LRUTable(Generic[K, V]):
    """Fixed-capacity key/value table with least-recently-used replacement."""

    def __init__(
        self,
        capacity: int,
        on_evict: Optional[Callable[[K, V], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._on_evict = on_evict

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def items(self) -> Iterator[Tuple[K, V]]:
        return iter(self._data.items())

    def get(self, key: K, touch: bool = True) -> Optional[V]:
        """Return the value for ``key`` (or None), refreshing recency."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return None
        if touch:
            self._data.move_to_end(key)
        return value

    def peek(self, key: K) -> Optional[V]:
        """Return the value for ``key`` without refreshing recency."""
        return self._data.get(key)

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert/update ``key``; return the evicted (key, value) if any."""
        if key in self._data:
            self._data[key] = value
            self._data.move_to_end(key)
            return None
        evicted = None
        if len(self._data) >= self.capacity:
            evicted = self._data.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(*evicted)
        self._data[key] = value
        return evicted

    def pop(self, key: K) -> Optional[V]:
        """Remove ``key`` without invoking the eviction callback."""
        return self._data.pop(key, None)

    def lru_key(self) -> Optional[K]:
        """The key that would be evicted next, or None when empty."""
        if not self._data:
            return None
        return next(iter(self._data))

    def touch(self, key: K) -> bool:
        """Refresh recency of ``key``; returns False when absent."""
        if key not in self._data:
            return False
        self._data.move_to_end(key)
        return True

    def clear(self) -> None:
        self._data.clear()


class LRUSet(Generic[K]):
    """Fixed-capacity set with LRU replacement (an LRUTable without values)."""

    def __init__(self, capacity: int) -> None:
        self._table: LRUTable[K, None] = LRUTable(capacity)

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: K) -> bool:
        return key in self._table

    def __iter__(self) -> Iterator[K]:
        return iter(self._table)

    def add(self, key: K) -> Optional[K]:
        """Add ``key``; return the evicted member if one was displaced."""
        evicted = self._table.put(key, None)
        return evicted[0] if evicted is not None else None

    def touch(self, key: K) -> bool:
        return self._table.touch(key)

    def discard(self, key: K) -> bool:
        return self._table.pop(key) is not None or False

    def clear(self) -> None:
        self._table.clear()
