"""Memory-system substrate: set-associative caches, a two-level hierarchy
and the streamed value buffer (SVB) prefetch staging buffer."""

from repro.memsys.cache import Cache, CacheAccess
from repro.memsys.hierarchy import AccessOutcome, Hierarchy, ServiceLevel
from repro.memsys.svb import StreamedValueBuffer

__all__ = [
    "Cache",
    "CacheAccess",
    "AccessOutcome",
    "Hierarchy",
    "ServiceLevel",
    "StreamedValueBuffer",
]
