"""Set-associative cache model operating on block numbers.

The cache is purely functional state (no timing): lookups report hit/miss
and fills report the evicted block, which the hierarchy forwards to
prefetchers — SMS/STeMS terminate a spatial generation when one of the
generation's blocks leaves the L1 (§2.4).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.config import CacheConfig


@dataclass(frozen=True)
class CacheAccess:
    """Outcome of one cache access."""

    hit: bool
    evicted_block: Optional[int] = None
    #: True when the evicted block had been installed by a prefetch and
    #: was never demand-referenced (an overprediction for L1-install SMS).
    evicted_unused_prefetch: bool = False


class Cache:
    """LRU set-associative cache keyed by block number.

    Each resident block carries a ``prefetched`` flag so that prefetchers
    installing straight into the cache (SMS) can account useless fetches.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        # one OrderedDict per set: block -> prefetched flag
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    def _set_index(self, block: int) -> int:
        return block % self._num_sets

    def __contains__(self, block: int) -> bool:
        return block in self._sets[self._set_index(block)]

    def lookup(self, block: int, touch: bool = True) -> bool:
        """Probe for ``block``. A hit clears its prefetched flag."""
        return self.demand_lookup(block, touch)[0]

    def demand_lookup(self, block: int, touch: bool = True) -> "Tuple[bool, bool]":
        """Probe for ``block``; returns (hit, first_touch_of_prefetched_block).

        The second flag is True exactly once per prefetched block: on the
        first demand reference after a prefetch install. L1-install
        prefetchers (SMS) count that event as a covered miss.
        """
        ways = self._sets[self._set_index(block)]
        if block not in ways:
            return False, False
        was_prefetched = ways[block]
        ways[block] = False  # demand reference: no longer a useless prefetch
        if touch:
            ways.move_to_end(block)
        return True, was_prefetched

    def fill(self, block: int, prefetched: bool = False) -> CacheAccess:
        """Install ``block``; returns the victim (if any)."""
        ways = self._sets[self._set_index(block)]
        if block in ways:
            ways.move_to_end(block)
            if not prefetched:
                ways[block] = False
            return CacheAccess(hit=True)
        evicted_block = None
        evicted_unused = False
        if len(ways) >= self._assoc:
            evicted_block, evicted_unused = ways.popitem(last=False)
        ways[block] = prefetched
        return CacheAccess(
            hit=False,
            evicted_block=evicted_block,
            evicted_unused_prefetch=evicted_unused,
        )

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident; returns whether it was present."""
        ways = self._sets[self._set_index(block)]
        return ways.pop(block, None) is not None

    def resident_blocks(self) -> List[int]:
        """All resident block numbers (test/diagnostic helper)."""
        out: List[int] = []
        for ways in self._sets:
            out.extend(ways.keys())
        return out

    def unused_prefetch_count(self) -> int:
        """Resident prefetched blocks never demand-referenced (end-of-run)."""
        return sum(1 for ways in self._sets for flag in ways.values() if flag)

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._sets)
