"""Set-associative cache model operating on block numbers.

The cache is purely functional state (no timing): lookups report hit/miss
and fills report the evicted block, which the hierarchy forwards to
prefetchers — SMS/STeMS terminate a spatial generation when one of the
generation's blocks leaves the L1 (§2.4).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.config import CacheConfig


@dataclass(frozen=True, slots=True)
class CacheAccess:
    """Outcome of one cache access."""

    hit: bool
    evicted_block: Optional[int] = None
    #: True when the evicted block had been installed by a prefetch and
    #: was never demand-referenced (an overprediction for L1-install SMS).
    evicted_unused_prefetch: bool = False


#: the two victimless outcomes, preallocated — ``fill`` runs once per
#: L1/L2 install on the hot walk and most fills evict nothing
_FILL_HIT = CacheAccess(hit=True)
_FILL_NO_VICTIM = CacheAccess(hit=False)


class Cache:
    """LRU set-associative cache keyed by block number.

    Each resident block carries a ``prefetched`` flag so that prefetchers
    installing straight into the cache (SMS) can account useless fetches.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        # one OrderedDict per set: block -> prefetched flag
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self._num_sets)
        ]

    def _set_index(self, block: int) -> int:
        return block % self._num_sets

    # the hot methods index the set inline (``block % self._num_sets``)
    # instead of calling ``_set_index`` — the method-call overhead is
    # measurable at one-to-several calls per simulated access

    def __contains__(self, block: int) -> bool:
        return block in self._sets[block % self._num_sets]

    def lookup(self, block: int, touch: bool = True) -> bool:
        """Probe for ``block``. A hit clears its prefetched flag."""
        return self.demand_lookup(block, touch)[0]

    def demand_lookup(self, block: int, touch: bool = True) -> "Tuple[bool, bool]":
        """Probe for ``block``; returns (hit, first_touch_of_prefetched_block).

        The second flag is True exactly once per prefetched block: on the
        first demand reference after a prefetch install. L1-install
        prefetchers (SMS) count that event as a covered miss.
        """
        ways = self._sets[block % self._num_sets]
        if block not in ways:
            return False, False
        was_prefetched = ways[block]
        ways[block] = False  # demand reference: no longer a useless prefetch
        if touch:
            ways.move_to_end(block)
        return True, was_prefetched

    def probe_fill(self, block: int) -> bool:
        """Demand probe that fills on miss; returns whether it hit.

        One set index for the lookup + fill pair the hierarchy's L2 sees
        on every L1 miss (the L2 victim is never reported — only L1
        evictions terminate spatial generations). Equivalent to
        ``lookup(block) or (fill(block) and False)`` with the demand
        flag-clear semantics of :meth:`demand_lookup`.
        """
        ways = self._sets[block % self._num_sets]
        if block in ways:
            ways[block] = False  # demand reference clears the flag
            ways.move_to_end(block)
            return True
        if len(ways) >= self._assoc:
            ways.popitem(last=False)
        ways[block] = False
        return False

    def fill(self, block: int, prefetched: bool = False) -> CacheAccess:
        """Install ``block``; returns the victim (if any)."""
        ways = self._sets[block % self._num_sets]
        if block in ways:
            ways.move_to_end(block)
            if not prefetched:
                ways[block] = False
            return _FILL_HIT
        if len(ways) >= self._assoc:
            evicted_block, evicted_unused = ways.popitem(last=False)
            ways[block] = prefetched
            return CacheAccess(
                hit=False,
                evicted_block=evicted_block,
                evicted_unused_prefetch=evicted_unused,
            )
        ways[block] = prefetched
        return _FILL_NO_VICTIM

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident; returns whether it was present."""
        ways = self._sets[block % self._num_sets]
        return ways.pop(block, None) is not None

    def resident_blocks(self) -> List[int]:
        """All resident block numbers (test/diagnostic helper)."""
        out: List[int] = []
        for ways in self._sets:
            out.extend(ways.keys())
        return out

    def unused_prefetch_count(self) -> int:
        """Resident prefetched blocks never demand-referenced (end-of-run)."""
        return sum(1 for ways in self._sets for flag in ways.values() if flag)

    def __len__(self) -> int:
        return sum(len(ways) for ways in self._sets)
