"""Streamed value buffer (SVB): the staging buffer for prefetched blocks.

The paper uses a 64-entry SVB (§4.3). Prefetched blocks wait here; a
processor request that finds its block in the SVB is a *covered* miss and
the block moves into the cache hierarchy. Blocks evicted (or invalidated
when their stream is killed) without ever being consumed are
*overpredictions*.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional


class StreamedValueBuffer:
    """Fixed-capacity LRU buffer of prefetched blocks tagged by stream id."""

    def __init__(
        self,
        capacity: int,
        on_discard_unused: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"SVB capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._blocks: "OrderedDict[int, int]" = OrderedDict()  # block -> stream id
        self._on_discard_unused = on_discard_unused
        self.inserted = 0
        self.consumed = 0
        self.discarded_unused = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, block: int) -> bool:
        return block in self._blocks

    def insert(self, block: int, stream_id: int = -1) -> None:
        """Stage a prefetched block, evicting the LRU entry when full."""
        if block in self._blocks:
            self._blocks.move_to_end(block)
            self._blocks[block] = stream_id
            return
        if len(self._blocks) >= self.capacity:
            victim, victim_stream = self._blocks.popitem(last=False)
            self._discard(victim, victim_stream)
        self._blocks[block] = stream_id
        self.inserted += 1

    def consume(self, block: int) -> Optional[int]:
        """Remove ``block`` on a demand hit; returns its stream id or None."""
        stream = self._blocks.pop(block, None)
        if stream is None:
            return None
        self.consumed += 1
        return stream

    def invalidate_stream(self, stream_id: int) -> int:
        """Drop all blocks of a killed stream; returns how many were unused."""
        victims = [b for b, s in self._blocks.items() if s == stream_id]
        for block in victims:
            del self._blocks[block]
            self._discard(block, stream_id)
        return len(victims)

    def drain_unused(self) -> int:
        """End-of-run accounting: every remaining block was never used."""
        count = len(self._blocks)
        for block, stream in list(self._blocks.items()):
            self._discard(block, stream)
        self._blocks.clear()
        return count

    def blocks(self) -> List[int]:
        return list(self._blocks.keys())

    def _discard(self, block: int, stream_id: int) -> None:
        self.discarded_unused += 1
        if self._on_discard_unused is not None:
            self._on_discard_unused(block, stream_id)
