"""Two-level cache hierarchy with off-chip miss classification.

The hierarchy is the substrate every prefetcher is evaluated on: it turns
the raw access stream into L1 hits, L2 hits and off-chip misses (the
prediction target of TMS/SMS/STeMS), and reports L1 evictions so spatial
generations can be terminated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.memsys.cache import Cache


class ServiceLevel(enum.Enum):
    """Where a demand access was serviced."""

    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"
    SVB = "svb"  # assigned by the driver, never by the hierarchy itself


@dataclass(slots=True)
class AccessOutcome:
    """Result of one demand access through the hierarchy."""

    level: ServiceLevel
    #: blocks evicted from L1 by this access (0 or 1 entries)
    l1_evictions: Tuple[int, ...] = ()
    #: an L1-installed prefetch left the L1 without ever being referenced
    l1_unused_prefetch_evicted: bool = False
    #: first demand touch of an L1-installed prefetched block (covered miss)
    prefetch_hit: bool = False


#: preallocated L1-hit outcomes — one per access on the hot walk, and an
#: L1 hit never evicts; consumers treat outcomes as read-only
_L1_HIT = AccessOutcome(ServiceLevel.L1)
_L1_PREFETCH_HIT = AccessOutcome(ServiceLevel.L1, prefetch_hit=True)


class Hierarchy:
    """Inclusive-of-nothing two-level hierarchy (L1d + unified L2).

    The model is non-inclusive/non-exclusive like most real hierarchies:
    fills go into both levels, and L1 evictions do not back-invalidate L2.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)
        self.stats = StatGroup("hierarchy")
        # hot-loop binding: ``access`` runs once per simulated access and
        # bumps two counters — increment the counter mapping directly
        # instead of paying a method call per bump
        self._counters = self.stats._counters

    def access(self, block: int) -> AccessOutcome:
        """Demand access to ``block``; fills on miss; classifies the level."""
        counters = self._counters
        counters["accesses"] += 1
        hit, prefetch_hit = self.l1.demand_lookup(block)
        if hit:
            counters["l1_hits"] += 1
            return _L1_PREFETCH_HIT if prefetch_hit else _L1_HIT

        outcome_level = ServiceLevel.L2
        if self.l2.probe_fill(block):
            counters["l2_hits"] += 1
        else:
            counters["offchip_misses"] += 1
            outcome_level = ServiceLevel.MEMORY

        fill = self.l1.fill(block)
        evicted = fill.evicted_block
        return AccessOutcome(
            outcome_level,
            l1_evictions=() if evicted is None else (evicted,),
            l1_unused_prefetch_evicted=fill.evicted_unused_prefetch,
        )

    def fill_from_svb(self, block: int) -> AccessOutcome:
        """Move a consumed SVB block into the hierarchy (L1 + L2)."""
        self.l2.fill(block)
        fill = self.l1.fill(block)
        evicted = fill.evicted_block
        return AccessOutcome(
            ServiceLevel.SVB,
            l1_evictions=() if evicted is None else (evicted,),
            l1_unused_prefetch_evicted=fill.evicted_unused_prefetch,
        )

    def install_prefetch(self, block: int) -> AccessOutcome:
        """Install an L1-targeted prefetch (the standalone-SMS design).

        The fetched data passes through L2 as on a real fill; the
        prefetched flag lives in L1 only, so the unused-eviction
        overprediction accounting stays unambiguous.
        """
        self.l2.fill(block)
        fill = self.l1.fill(block, prefetched=True)
        evicted = fill.evicted_block
        return AccessOutcome(
            ServiceLevel.L1,
            l1_evictions=() if evicted is None else (evicted,),
            l1_unused_prefetch_evicted=fill.evicted_unused_prefetch,
        )

    def present(self, block: int) -> Optional[ServiceLevel]:
        """Which level currently holds ``block`` (no state change)."""
        if block in self.l1:
            return ServiceLevel.L1
        if block in self.l2:
            return ServiceLevel.L2
        return None
