"""Two-level cache hierarchy with off-chip miss classification.

The hierarchy is the substrate every prefetcher is evaluated on: it turns
the raw access stream into L1 hits, L2 hits and off-chip misses (the
prediction target of TMS/SMS/STeMS), and reports L1 evictions so spatial
generations can be terminated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.memsys.cache import Cache


class ServiceLevel(enum.Enum):
    """Where a demand access was serviced."""

    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"
    SVB = "svb"  # assigned by the driver, never by the hierarchy itself


@dataclass
class AccessOutcome:
    """Result of one demand access through the hierarchy."""

    level: ServiceLevel
    #: blocks evicted from L1 by this access (0 or 1 entries)
    l1_evictions: List[int] = field(default_factory=list)
    #: an L1-installed prefetch left the L1 without ever being referenced
    l1_unused_prefetch_evicted: bool = False
    #: first demand touch of an L1-installed prefetched block (covered miss)
    prefetch_hit: bool = False


class Hierarchy:
    """Inclusive-of-nothing two-level hierarchy (L1d + unified L2).

    The model is non-inclusive/non-exclusive like most real hierarchies:
    fills go into both levels, and L1 evictions do not back-invalidate L2.
    """

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)
        self.stats = StatGroup("hierarchy")

    def access(self, block: int) -> AccessOutcome:
        """Demand access to ``block``; fills on miss; classifies the level."""
        self.stats.add("accesses")
        hit, prefetch_hit = self.l1.demand_lookup(block)
        if hit:
            self.stats.add("l1_hits")
            return AccessOutcome(ServiceLevel.L1, prefetch_hit=prefetch_hit)

        outcome_level = ServiceLevel.L2
        if self.l2.lookup(block):
            self.stats.add("l2_hits")
        else:
            self.stats.add("offchip_misses")
            outcome_level = ServiceLevel.MEMORY
            self.l2.fill(block)

        fill = self.l1.fill(block)
        evictions = [fill.evicted_block] if fill.evicted_block is not None else []
        return AccessOutcome(
            outcome_level,
            l1_evictions=evictions,
            l1_unused_prefetch_evicted=fill.evicted_unused_prefetch,
        )

    def fill_from_svb(self, block: int) -> AccessOutcome:
        """Move a consumed SVB block into the hierarchy (L1 + L2)."""
        self.l2.fill(block)
        fill = self.l1.fill(block)
        evictions = [fill.evicted_block] if fill.evicted_block is not None else []
        return AccessOutcome(
            ServiceLevel.SVB,
            l1_evictions=evictions,
            l1_unused_prefetch_evicted=fill.evicted_unused_prefetch,
        )

    def install_prefetch(self, block: int) -> AccessOutcome:
        """Install an L1-targeted prefetch (the standalone-SMS design).

        The fetched data passes through L2 as on a real fill; the
        prefetched flag lives in L1 only, so the unused-eviction
        overprediction accounting stays unambiguous.
        """
        self.l2.fill(block)
        fill = self.l1.fill(block, prefetched=True)
        evictions = [fill.evicted_block] if fill.evicted_block is not None else []
        return AccessOutcome(
            ServiceLevel.L1,
            l1_evictions=evictions,
            l1_unused_prefetch_evicted=fill.evicted_unused_prefetch,
        )

    def present(self, block: int) -> Optional[ServiceLevel]:
        """Which level currently holds ``block`` (no state change)."""
        if block in self.l1:
            return ServiceLevel.L1
        if block in self.l2:
            return ServiceLevel.L2
        return None
