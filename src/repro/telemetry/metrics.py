"""Structured metrics: counters, gauges, and log2-bucket histograms.

The registry is the single accumulation point for everything the engine
counts.  ``EngineStats`` is a *view* over it (see
:mod:`repro.engine.engine`), worker processes ship deltas back inside
the existing result envelopes, and the runner serializes the folded
registry to ``metrics.json`` in the run directory.

Design constraints:

* **Lock-free in a worker.**  Each process mutates only its own
  registry (plain dict updates under the GIL); cross-process folding
  happens in the parent via :meth:`MetricsRegistry.merge` on plain-dict
  snapshots carried by the result envelopes.
* **Fork-safe.**  A forked worker inherits the parent's process-global
  registry contents; workers therefore report ``delta_since(snapshot)``
  rather than absolute values, so inherited counts are never
  double-folded.
* **Comparable across PRs.**  Histogram bucket boundaries are pinned
  constants (below) and recorded in the serialized form; a bucket index
  means the same value range in every ``metrics.json`` ever written.

Histogram buckets
-----------------
Power-of-two boundaries spanning ``2**HISTOGRAM_LOG2_MIN`` (~1µs — below
timer resolution) to ``2**HISTOGRAM_LOG2_MAX`` (~34 years — above any
run), plus a final +inf bucket.  Bucket ``i`` counts observations
``v <= HISTOGRAM_BUCKET_BOUNDS[i]`` (and ``> bounds[i-1]`` for i > 0).
The range is deliberately generous so the boundaries never need to
move: changing them would make histograms incomparable across PRs.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Optional

METRICS_VERSION = 1

HISTOGRAM_LOG2_MIN = -20
HISTOGRAM_LOG2_MAX = 40
HISTOGRAM_BUCKET_BOUNDS = tuple(
    2.0 ** e for e in range(HISTOGRAM_LOG2_MIN, HISTOGRAM_LOG2_MAX + 1)
) + (math.inf,)


def bucket_index(value: float) -> int:
    """Index of the log2 bucket that counts ``value``."""
    if value <= HISTOGRAM_BUCKET_BOUNDS[0]:
        return 0
    return bisect_left(HISTOGRAM_BUCKET_BOUNDS, value)


class Histogram:
    """Sparse log2-bucket histogram: counts, running sum, total count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.sum += value
        self.count += 1

    def as_dict(self) -> dict:
        return {
            "counts": {str(i): n for i, n in sorted(self.counts.items())},
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls()
        hist.counts = {int(i): int(n) for i, n in data["counts"].items()}
        hist.sum = float(data["sum"])
        hist.count = int(data["count"])
        return hist


class MetricsRegistry:
    """Counters, gauges, and histograms behind plain-dict storage.

    All mutation is a dict update — safe against signal interruption,
    no locks, no allocation beyond the first touch of a name.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- counters --------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def set_counter(self, name: str, value: float) -> None:
        self._counters[name] = value

    def counters(self, prefix: str = "") -> Dict[str, float]:
        return {name: value for name, value in self._counters.items()
                if name.startswith(prefix)}

    # -- gauges ----------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    # -- histograms ------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    # -- serialization ---------------------------------------------------

    def data(self) -> dict:
        """The canonical plain-dict form (mergeable, JSON-safe)."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: hist.as_dict()
                           for name, hist in self._histograms.items()},
        }

    def as_dict(self) -> dict:
        """``data()`` plus the version and pinned bucket boundaries."""
        payload = self.data()
        payload["version"] = METRICS_VERSION
        payload["histogram_log2"] = [HISTOGRAM_LOG2_MIN, HISTOGRAM_LOG2_MAX]
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(data)
        for name, value in data.get("gauges", {}).items():
            registry._gauges[name] = value
        return registry

    # -- folding ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A point-in-time copy, for :meth:`delta_since`."""
        return self.data()

    def delta_since(self, snapshot: dict) -> dict:
        """What changed since ``snapshot`` — the worker's report.

        Counters and histogram bucket counts subtract; gauges report
        their current value (last-write-wins has no meaningful delta).
        """
        base_counters = snapshot.get("counters", {})
        counters = {}
        for name, value in self._counters.items():
            delta = value - base_counters.get(name, 0)
            if delta:
                counters[name] = delta
        base_hists = snapshot.get("histograms", {})
        histograms = {}
        for name, hist in self._histograms.items():
            base = base_hists.get(name)
            if base is None:
                histograms[name] = hist.as_dict()
                continue
            base_counts = {int(i): n for i, n in base["counts"].items()}
            counts = {}
            for index, n in hist.counts.items():
                diff = n - base_counts.get(index, 0)
                if diff:
                    counts[str(index)] = diff
            if counts:
                histograms[name] = {
                    "counts": counts,
                    "sum": hist.sum - base["sum"],
                    "count": hist.count - base["count"],
                }
        return {
            "counters": counters,
            "gauges": dict(self._gauges),
            "histograms": histograms,
        }

    def merge(self, data: dict) -> None:
        """Fold a worker's delta (or a whole serialized registry) in.

        Counters and histograms add; gauges overwrite.
        """
        if not data:
            return
        for name, value in data.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in data.get("gauges", {}).items():
            self._gauges[name] = value
        for name, payload in data.get("histograms", {}).items():
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            for index, n in payload.get("counts", {}).items():
                index = int(index)
                hist.counts[index] = hist.counts.get(index, 0) + int(n)
            hist.sum += payload.get("sum", 0.0)
            hist.count += payload.get("count", 0)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
