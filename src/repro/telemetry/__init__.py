"""Telemetry plane: metrics registry, per-job spans, phase timers.

Three levels, selected by the ``REPRO_TELEMETRY`` environment variable
(or the runner's mode argument, which wins):

``off``
    Zero-cost: the hot-path instrumentation reduces to one ``None``
    check per call site, no spans, nothing written.
``basic`` (default)
    Counters, gauges, histograms, per-job spans, phase timers; the
    runner writes ``metrics.json`` into the run directory.  Bench-gated
    at ≤2% overhead on the reference sweep.
``trace``
    Everything in ``basic``, plus ``trace.json`` — the spans rendered
    as Chrome trace-event JSON for Perfetto / ``chrome://tracing``.

The phase timers instrument the four hot-path phases (chunk decode,
vectorized pre-pass, walk step, analysis finalize) by accumulating
into a **process-global** registry: a forked worker inherits the
parent's counts and therefore reports ``delta_since(snapshot)`` taken
at its own start, never absolute values (see
:mod:`repro.telemetry.metrics`).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from .metrics import (  # noqa: F401  (re-exported)
    HISTOGRAM_BUCKET_BOUNDS,
    HISTOGRAM_LOG2_MAX,
    HISTOGRAM_LOG2_MIN,
    METRICS_VERSION,
    Histogram,
    MetricsRegistry,
    bucket_index,
)
from .spans import AttemptSpan, chrome_trace  # noqa: F401  (re-exported)

ENV_VAR = "REPRO_TELEMETRY"
MODE_OFF = "off"
MODE_BASIC = "basic"
MODE_TRACE = "trace"
MODES = (MODE_OFF, MODE_BASIC, MODE_TRACE)

METRICS_NAME = "metrics.json"
TRACE_NAME = "trace.json"

# the four instrumented hot-path phases
PHASE_DECODE = "chunk_decode"
PHASE_PREPASS = "prepass"
PHASE_WALK = "walk_step"
PHASE_FINALIZE = "finalize"
PHASES = (PHASE_DECODE, PHASE_PREPASS, PHASE_WALK, PHASE_FINALIZE)


def resolve_telemetry(mode: Optional[str] = None) -> str:
    """Explicit argument > ``REPRO_TELEMETRY`` env var > ``basic``."""
    if mode is None:
        mode = os.environ.get(ENV_VAR) or MODE_BASIC
    mode = mode.lower()
    if mode not in MODES:
        raise ValueError(
            f"unknown telemetry mode {mode!r}: expected one of {MODES}"
        )
    return mode


def telemetry_enabled() -> bool:
    """True unless the environment says ``off`` (hot-path-cheap check)."""
    return os.environ.get(ENV_VAR, MODE_BASIC).lower() != MODE_OFF


# -- the process-global registry and phase timer ----------------------------

_PROCESS = MetricsRegistry()


def process_registry() -> MetricsRegistry:
    """The per-process accumulation point for phase timers.

    Engine parents snapshot it before a run and fold the delta after;
    workers snapshot at job start and ship the delta home in their
    result envelope.
    """
    return _PROCESS


class PhaseTimer:
    """Accumulates phase wall time into the process registry.

    Not a context manager on purpose: the hot call sites time a block
    with one ``perf_counter()`` pair and call :meth:`add` once, which
    is cheaper than ``with`` frames at chunk granularity.
    """

    __slots__ = ()

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        counters = _PROCESS._counters
        key = "phase." + phase
        counters[key + ".seconds"] = (
            counters.get(key + ".seconds", 0.0) + seconds
        )
        counters[key + ".calls"] = counters.get(key + ".calls", 0) + calls


_TIMER = PhaseTimer()


def phases_active() -> Optional[PhaseTimer]:
    """The phase timer, or ``None`` when telemetry is off.

    Reads the environment per call: one dict lookup and a compare, so
    instrumented sites pay nothing measurable when off, and workers
    spawned with a different environment honour their own setting.
    Unknown values fall back to "on" — the runner validates the mode
    up front; the hot path must never raise.
    """
    if os.environ.get(ENV_VAR, MODE_BASIC).lower() == MODE_OFF:
        return None
    return _TIMER


# -- per-run collection -----------------------------------------------------

class RunTelemetry:
    """One run's metrics registry plus its per-job attempt spans.

    Owned by the :class:`~repro.engine.engine.Engine`; the engine's
    ``EngineStats`` is a view over :attr:`registry`, so the legacy
    counters and the telemetry plane can never disagree.  All span
    methods are no-ops when the mode is ``off`` — the counter methods
    (:meth:`job_cached`, :meth:`job_finished`) always run, because
    ``EngineStats`` needs them regardless of mode.
    """

    def __init__(self, mode: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.mode = resolve_telemetry(mode)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans: List[AttemptSpan] = []
        self._open: Dict[str, AttemptSpan] = {}
        self._queued: Dict[str, tuple] = {}

    @property
    def enabled(self) -> bool:
        return self.mode != MODE_OFF

    # -- span lifecycle --------------------------------------------------

    def job_scheduled(self, job) -> None:
        """Record graph admission; spans opened later inherit the time."""
        if not self.enabled:
            return
        self._queued[job.job_hash] = (job.label(), job.kind, time.time())

    def attempt_started(self, job_hash: str, attempt: int,
                        worker: str = "main") -> None:
        if not self.enabled:
            return
        label, kind, queued = self._queued.get(
            job_hash, (job_hash[:12], "?", None)
        )
        self._open[job_hash] = AttemptSpan(
            job_hash=job_hash, label=label, kind=kind, attempt=attempt,
            worker=worker, queued=queued, start=time.time(),
        )

    def attempt_detail(self, job_hash: str, detail: dict) -> None:
        """Attach a worker's self-report to the open span."""
        if not self.enabled:
            return
        span = self._open.get(job_hash)
        if span is None:
            return
        detail = dict(detail)
        span.worker = detail.pop("worker", span.worker)
        span.wall_s = detail.pop("wall_s", span.wall_s)
        span.cpu_s = detail.pop("cpu_s", span.cpu_s)
        span.detail.update(
            (k, v) for k, v in detail.items() if v is not None
        )

    def attempt_finished(self, job_hash: str, status: str,
                         error: Optional[str] = None) -> None:
        if not self.enabled:
            return
        span = self._open.pop(job_hash, None)
        if span is None:
            return
        span.end = time.time()
        span.status = status
        if span.wall_s is None and span.start is not None:
            span.wall_s = span.end - span.start
        if error:
            span.detail["error"] = error
        self.spans.append(span)
        if status == "ok" and span.wall_s is not None:
            self.registry.observe("job.wall_seconds", span.wall_s)

    # -- path-invariant counters (always on: EngineStats reads them) ----

    def job_cached(self, job) -> None:
        self.registry.inc(f"jobs.cached.{job.kind}")

    def job_finished(self, job, ok: bool) -> None:
        if ok:
            self.registry.inc(f"jobs.completed.{job.kind}")
            self.registry.inc(f"walk.accesses.{job.kind}", job.length)
        else:
            self.registry.inc(f"jobs.failed.{job.kind}")
        if job.job_hash in self._open:
            self.attempt_finished(job.job_hash, "ok" if ok else "failed")

    # -- worker envelope folding ----------------------------------------

    def absorb_attempt(self, job_hash: str, payload: dict) -> None:
        """Fold one pool worker's telemetry envelope (metrics + span)."""
        if not payload:
            return
        self.registry.merge(payload.get("metrics") or {})
        span = payload.get("span")
        if span:
            self.attempt_detail(job_hash, span)

    def absorb_bundle(self, job_hashes, payload: dict) -> None:
        """Fold a broadcast bundle's envelope: metrics once, detail each."""
        if not payload:
            return
        self.registry.merge(payload.get("metrics") or {})
        span = payload.get("span")
        if span:
            for job_hash in job_hashes:
                self.attempt_detail(job_hash, span)

    # -- serialization ---------------------------------------------------

    def write(self, directory, run_id: Optional[str] = None) -> "List[Path]":
        """Write ``metrics.json`` (and ``trace.json`` at trace mode).

        Atomic (tmp + replace) so a crash mid-write leaves either the
        previous file or none — ``repro-fsck`` treats damage here as a
        note, never as plane damage.  Returns the paths written; empty
        when the mode is ``off``.
        """
        if not self.enabled:
            return []
        directory = Path(directory)
        spans = list(self.spans) + list(self._open.values())
        payload = self.registry.as_dict()
        payload["mode"] = self.mode
        if run_id is not None:
            payload["run"] = run_id
        payload["spans"] = [span.to_dict() for span in spans]
        written = []
        metrics_path = directory / METRICS_NAME
        _write_atomic(metrics_path, payload)
        written.append(metrics_path)
        if self.mode == MODE_TRACE:
            trace_path = directory / TRACE_NAME
            _write_atomic(trace_path, chrome_trace(spans, run_id or ""))
            written.append(trace_path)
        return written


def _write_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
