"""Per-job attempt spans and their Chrome trace-event rendering.

Every job attempt the engine dispatches opens an :class:`AttemptSpan`
(queued → dispatched → attempt N → done/failed).  The runner serializes
the collected spans into ``metrics.json`` (always, when telemetry is
on) and — at ``REPRO_TELEMETRY=trace`` — additionally renders them as
Chrome trace-event JSON (``trace.json``), loadable in Perfetto or
``chrome://tracing``: one track (thread) per worker, one ``X`` duration
event per attempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class AttemptSpan:
    """One dispatch of one job: timing, placement, and outcome."""

    job_hash: str
    label: str
    kind: str
    attempt: int = 1
    worker: str = "main"
    queued: Optional[float] = None   # epoch seconds, graph admission
    start: Optional[float] = None    # epoch seconds, dispatch
    end: Optional[float] = None      # epoch seconds, completion
    status: str = "open"             # open | ok | failed | requeued
    wall_s: Optional[float] = None   # in-worker wall time when reported
    cpu_s: Optional[float] = None    # in-worker CPU time when reported
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "job": self.job_hash,
            "label": self.label,
            "kind": self.kind,
            "attempt": self.attempt,
            "worker": self.worker,
            "queued": self.queued,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "AttemptSpan":
        return cls(
            job_hash=data["job"], label=data["label"], kind=data["kind"],
            attempt=data.get("attempt", 1),
            worker=data.get("worker", "main"),
            queued=data.get("queued"), start=data.get("start"),
            end=data.get("end"), status=data.get("status", "open"),
            wall_s=data.get("wall_s"), cpu_s=data.get("cpu_s"),
            detail=dict(data.get("detail", {})),
        )


def chrome_trace(spans: List[AttemptSpan], run_id: str = "") -> dict:
    """Render spans as a Chrome trace-event document.

    Workers map to integer thread ids (``main`` is always tid 0) with
    ``thread_name`` metadata, so Perfetto shows one labelled track per
    worker.  Timestamps are microseconds relative to the earliest span
    start, which keeps the values small and the trace self-contained.
    """
    events: List[dict] = []
    pid = 1
    events.append({
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": f"repro run {run_id}".strip()},
    })
    tids: Dict[str, int] = {"main": 0}
    for span in spans:
        if span.worker not in tids:
            tids[span.worker] = len(tids)
    for worker, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": worker},
        })
    starts = [span.start for span in spans if span.start is not None]
    origin = min(starts) if starts else 0.0
    for span in spans:
        if span.start is None:
            continue
        end = span.end if span.end is not None else span.start
        args = {"status": span.status, "attempt": span.attempt}
        if span.cpu_s is not None:
            args["cpu_s"] = round(span.cpu_s, 6)
        if span.queued is not None:
            args["queued_for_s"] = round(span.start - span.queued, 6)
        args.update(span.detail)
        events.append({
            "name": f"{span.label} · attempt {span.attempt}",
            "cat": span.kind,
            "ph": "X",
            "pid": pid,
            "tid": tids[span.worker],
            "ts": round((span.start - origin) * 1e6, 1),
            "dur": round(max(end - span.start, 0.0) * 1e6, 1),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
