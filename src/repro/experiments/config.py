"""Shared experiment configuration and the per-category predictor factory."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import SMSConfig, STeMSConfig, SystemConfig, TMSConfig
from repro.prefetch.base import Prefetcher
from repro.prefetch.composite import CompositePrefetcher
from repro.prefetch.hybrid import NaiveHybridPrefetcher
from repro.prefetch.sms.sms import SMSPrefetcher
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.prefetch.stride import StridePrefetcher
from repro.prefetch.tms.tms import TMSPrefetcher
from repro.trace.container import Trace
from repro.workloads.registry import WORKLOAD_CATEGORIES, WORKLOAD_NAMES, make_workload


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment harnesses."""

    trace_length: int = 200_000
    seed: int = 42
    system: SystemConfig = field(default_factory=SystemConfig.scaled)
    workloads: List[str] = field(default_factory=lambda: list(WORKLOAD_NAMES))
    #: leading trace fraction excluded from Fig. 6 classification counts
    skip_fraction: float = 0.3
    #: leading trace fraction excluded from Fig. 10 cycle counts
    warmup_fraction: float = 0.4
    #: Sequitur input bound for Fig. 7 (grammar inference dominates cost)
    sequitur_max: int = 50_000

    @staticmethod
    def small() -> "ExperimentConfig":
        """Fast preset for tests and pytest-benchmark runs."""
        return ExperimentConfig(trace_length=40_000, sequitur_max=15_000)

    # -- trace cache ------------------------------------------------------------

    _cache: Dict[tuple, Trace] = field(default_factory=dict, repr=False)

    def trace(self, workload: str) -> Trace:
        """Generate (and memoize) the trace for ``workload``."""
        key = (workload, self.trace_length, self.seed)
        if key not in self._cache:
            self._cache[key] = make_workload(workload).generate(
                self.trace_length, seed=self.seed
            )
        return self._cache[key]

    # -- predictor factory ---------------------------------------------------------

    def scientific(self, workload: str) -> bool:
        return WORKLOAD_CATEGORIES.get(workload) == "scientific"

    def make_prefetcher(
        self, kind: str, workload: str, with_stride: bool = False
    ) -> Optional[Prefetcher]:
        """Build a predictor; scientific workloads use lookahead 12 (§4.3)."""
        sci = self.scientific(workload)
        main: Optional[Prefetcher]
        if kind == "none":
            return None
        if kind == "stride":
            return StridePrefetcher()
        if kind == "tms":
            main = TMSPrefetcher(TMSConfig(lookahead=12) if sci else TMSConfig())
        elif kind == "sms":
            main = SMSPrefetcher(SMSConfig())
        elif kind == "stems":
            main = STeMSPrefetcher(
                STeMSConfig.scientific() if sci else STeMSConfig()
            )
        elif kind == "hybrid":
            main = NaiveHybridPrefetcher(
                TMSConfig(lookahead=12) if sci else TMSConfig(), SMSConfig()
            )
        else:
            raise ValueError(f"unknown prefetcher kind {kind!r}")
        if with_stride:
            return CompositePrefetcher(main)
        return main
