"""Shared experiment configuration and declarative job builders.

``ExperimentConfig`` holds the knobs every harness shares (trace length,
seed, system geometry, workload subset) and builds the :class:`SimJob`
descriptions the engine executes. Harnesses declare jobs through the
helpers here instead of constructing predictors and running drivers
themselves, which is what lets the engine deduplicate, parallelize and
cache across figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, List, Optional

from repro.common.config import SystemConfig
from repro.engine.exec import build_prefetcher, materialized_trace
from repro.engine.job import (
    KIND_CORRELATION,
    KIND_COVERAGE,
    KIND_JOINT,
    KIND_REPETITION,
    KIND_TIMING,
    PrefetcherSpec,
    SimJob,
)
from repro.prefetch.base import Prefetcher
from repro.trace.container import Trace
from repro.workloads.registry import WORKLOAD_CATEGORIES, WORKLOAD_NAMES


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment harnesses."""

    trace_length: int = 200_000
    seed: int = 42
    system: SystemConfig = field(default_factory=SystemConfig.scaled)
    workloads: List[str] = field(default_factory=lambda: list(WORKLOAD_NAMES))
    #: leading trace fraction excluded from Fig. 6 classification counts
    skip_fraction: float = 0.3
    #: leading trace fraction excluded from Fig. 10 cycle counts
    warmup_fraction: float = 0.4
    #: Sequitur input bound for Fig. 7 (grammar inference dominates cost)
    sequitur_max: int = 50_000

    @staticmethod
    def small() -> "ExperimentConfig":
        """Fast preset for tests and pytest-benchmark runs."""
        return ExperimentConfig(trace_length=40_000, sequitur_max=15_000)

    # -- traces ------------------------------------------------------------

    def trace(self, workload: str) -> Trace:
        """The materialized trace for ``workload`` (engine-memoized)."""
        return materialized_trace(workload, self.trace_length, self.seed)

    # -- job builders ------------------------------------------------------

    def coverage_job(
        self,
        workload: str,
        kind: str = "none",
        with_stride: bool = False,
        system: Optional[SystemConfig] = None,
        **overrides: Any,
    ) -> SimJob:
        """A driver coverage run of ``kind`` over ``workload``."""
        return SimJob.make(
            KIND_COVERAGE,
            workload,
            self.trace_length,
            self.seed,
            system if system is not None else self.system,
            self._spec(kind, with_stride, overrides),
        )

    def timing_job(
        self, workload: str, kind: str, with_stride: bool = False
    ) -> SimJob:
        """A coverage run plus the Fig. 10 timing model."""
        return SimJob.make(
            KIND_TIMING,
            workload,
            self.trace_length,
            self.seed,
            self.system,
            self._spec(kind, with_stride, {}),
            warmup_fraction=self.warmup_fraction,
        )

    def joint_job(self, workload: str) -> SimJob:
        """The Fig. 6 idealized joint-predictability analysis."""
        return SimJob.make(
            KIND_JOINT,
            workload,
            self.trace_length,
            self.seed,
            self.system,
            skip_fraction=self.skip_fraction,
        )

    def repetition_job(self, workload: str) -> SimJob:
        """The Fig. 7 Sequitur repetition analysis."""
        return SimJob.make(
            KIND_REPETITION,
            workload,
            self.trace_length,
            self.seed,
            self.system,
            max_elements=self.sequitur_max,
        )

    def correlation_job(self, workload: str) -> SimJob:
        """The Fig. 8 correlation-distance analysis."""
        return SimJob.make(
            KIND_CORRELATION,
            workload,
            self.trace_length,
            self.seed,
            self.system,
        )

    @staticmethod
    def _spec(kind: str, with_stride: bool, overrides: dict) -> Optional[PrefetcherSpec]:
        if kind == "none" and not with_stride and not overrides:
            return None
        return PrefetcherSpec.make(kind, with_stride=with_stride, **overrides)

    def system_with(self, **changes: Any) -> SystemConfig:
        """The active system config with fields replaced (sweeps)."""
        return replace(self.system, **changes)

    # -- predictor factory -------------------------------------------------

    def scientific(self, workload: str) -> bool:
        return WORKLOAD_CATEGORIES.get(workload) == "scientific"

    def make_prefetcher(
        self, kind: str, workload: str, with_stride: bool = False
    ) -> Optional[Prefetcher]:
        """Build a predictor; scientific workloads use lookahead 12 (§4.3)."""
        return build_prefetcher(
            PrefetcherSpec.make(kind, with_stride=with_stride), workload
        )
