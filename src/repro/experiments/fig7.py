"""Figure 7: Sequitur temporal repetition of all misses vs spatial triggers.

Paper headline: 47% of region-granularity (trigger) misses recur in
repetitive sequences, similar to the 45% repetition of all misses; in
OLTP/web, trigger repetition is 5-15% lower than all-miss repetition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.repetition import RepetitionBreakdown
from repro.engine import Engine, JobGraph, ResultMap, SimJob
from repro.experiments import harness
from repro.experiments.config import ExperimentConfig

Row = Tuple[RepetitionBreakdown, RepetitionBreakdown]
Plan = Dict[str, SimJob]


def declare(config: ExperimentConfig, graph: JobGraph) -> Plan:
    """One Sequitur repetition analysis job per workload."""
    return {
        name: graph.add(config.repetition_job(name)) for name in config.workloads
    }


def collect(
    config: ExperimentConfig, plan: Plan, results: ResultMap
) -> Dict[str, Row]:
    return {name: results[job] for name, job in plan.items()}


def run(
    config: ExperimentConfig, engine: Optional[Engine] = None
) -> Dict[str, Row]:
    return harness.execute(declare, collect, config, engine)


def export_rows(results: Dict[str, Row]) -> List[dict]:
    rows = []
    for name, (all_misses, triggers) in results.items():
        for scope, b in (("all", all_misses), ("triggers", triggers)):
            rows.append(
                {
                    "workload": name,
                    "scope": scope,
                    "total": b.total,
                    "opportunity": b.opportunity,
                    "head": b.head,
                    "new": b.new,
                    "non_repetitive": b.non_repetitive,
                }
            )
    return rows


def format_table(results: Dict[str, Row]) -> str:
    lines = [
        "== Figure 7: temporal repetition (Sequitur) ==",
        f"{'workload':<9} {'seq':>9} {'opportunity':>12} {'head':>7} "
        f"{'new':>7} {'non-rep':>8}",
    ]
    for name, (all_misses, triggers) in results.items():
        for label, b in (("all", all_misses), ("triggers", triggers)):
            lines.append(
                f"{name:<9} {label:>9} {b.opportunity:>12.1%} {b.head:>7.1%} "
                f"{b.new:>7.1%} {b.non_repetitive:>8.1%}"
            )
    lines.append("paper: ~45% opportunity for all misses, ~47% for triggers; "
                 "triggers 5-15% lower in OLTP/web")
    return "\n".join(lines)
