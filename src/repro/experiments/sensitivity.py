"""Sensitivity sweeps over the §4.3 hardware-cost parameters.

The paper fixes the RMOB at 128K entries, the PST at 16K entries, the SVB
at 64 entries and the lookahead at 8/12, and argues each choice in §4.3.
This harness sweeps each knob independently (one workload per category by
default) so the knee of every curve can be checked against that argument:

* RMOB entries — temporal history reach;
* PST entries — spatial pattern reach;
* SVB entries — staging capacity vs. eviction-before-use;
* lookahead — timeliness vs. overprediction at stream ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import Engine, JobGraph, ResultMap, SimJob
from repro.experiments import harness
from repro.experiments.config import ExperimentConfig

#: default sweep points per knob
SWEEPS: Dict[str, Sequence[int]] = {
    "rmob_entries": (1024, 4096, 16384, 65536),
    "pst_entries": (64, 256, 1024, 16384),
    "svb_entries": (16, 32, 64, 128),
    "lookahead": (2, 4, 8, 16),
}

#: one representative workload per category keeps the sweep tractable
DEFAULT_WORKLOADS = ("apache", "db2", "qry2", "em3d")


@dataclass(frozen=True)
class SensitivityPoint:
    workload: str
    knob: str
    value: int
    coverage: float
    overpredictions: float


#: plan entry: (workload, knob, value, sweep job); baselines keyed by workload
Plan = Tuple[Dict[str, SimJob], List[Tuple[str, str, int, SimJob]]]


def _sweep_job(config: ExperimentConfig, name: str, knob: str, value: int) -> SimJob:
    if knob == "svb_entries":
        # staging capacity is a system parameter, not a predictor one
        return config.coverage_job(
            name, "stems", system=config.system_with(svb_entries=value)
        )
    return config.coverage_job(name, "stems", **{knob: value})


def declare(
    config: ExperimentConfig,
    graph: JobGraph,
    knobs: Sequence[str] = tuple(SWEEPS),
) -> Plan:
    """Per workload: the shared baseline plus one STeMS run per sweep point."""
    workloads = [w for w in config.workloads if w in DEFAULT_WORKLOADS]
    if not workloads:
        workloads = [config.workloads[0]]
    baselines: Dict[str, SimJob] = {}
    sweep: List[Tuple[str, str, int, SimJob]] = []
    for name in workloads:
        baselines[name] = graph.add(config.coverage_job(name))
        for knob in knobs:
            if knob not in SWEEPS:
                raise ValueError(f"unknown sensitivity knob {knob!r}")
            for value in SWEEPS[knob]:
                sweep.append(
                    (name, knob, value, graph.add(_sweep_job(config, name, knob, value)))
                )
    return baselines, sweep


def collect(
    config: ExperimentConfig, plan: Plan, results: ResultMap
) -> List[SensitivityPoint]:
    baselines, sweep = plan
    base_misses = {
        name: max(1, results[job].uncovered) for name, job in baselines.items()
    }
    return [
        SensitivityPoint(
            workload=name,
            knob=knob,
            value=value,
            coverage=results[job].covered / base_misses[name],
            overpredictions=results[job].overpredictions / base_misses[name],
        )
        for name, knob, value, job in sweep
    ]


def run(
    config: ExperimentConfig,
    knobs: Sequence[str] = tuple(SWEEPS),
    engine: Optional[Engine] = None,
) -> List[SensitivityPoint]:
    return harness.execute(
        lambda cfg, graph: declare(cfg, graph, knobs), collect, config, engine
    )


def export_rows(points: List[SensitivityPoint]) -> List[SensitivityPoint]:
    return list(points)


def format_table(points: List[SensitivityPoint]) -> str:
    lines = [
        "== STeMS sensitivity to the §4.3 hardware parameters ==",
        f"{'workload':<9} {'knob':<14} {'value':>7} {'coverage':>9} "
        f"{'overpred':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.workload:<9} {p.knob:<14} {p.value:>7} {p.coverage:>9.1%} "
            f"{p.overpredictions:>9.1%}"
        )
    lines.append("paper sizing: RMOB 128K, PST 16K, SVB 64, lookahead 8/12")
    return "\n".join(lines)
