"""Sensitivity sweeps over the §4.3 hardware-cost parameters.

The paper fixes the RMOB at 128K entries, the PST at 16K entries, the SVB
at 64 entries and the lookahead at 8/12, and argues each choice in §4.3.
This harness sweeps each knob independently (one workload per category by
default) so the knee of every curve can be checked against that argument:

* RMOB entries — temporal history reach;
* PST entries — spatial pattern reach;
* SVB entries — staging capacity vs. eviction-before-use;
* lookahead — timeliness vs. overprediction at stream ends.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.common.config import STeMSConfig
from repro.experiments.config import ExperimentConfig
from repro.prefetch.stems.stems import STeMSPrefetcher
from repro.sim.driver import SimulationDriver

#: default sweep points per knob
SWEEPS: Dict[str, Sequence[int]] = {
    "rmob_entries": (1024, 4096, 16384, 65536),
    "pst_entries": (64, 256, 1024, 16384),
    "svb_entries": (16, 32, 64, 128),
    "lookahead": (2, 4, 8, 16),
}

#: one representative workload per category keeps the sweep tractable
DEFAULT_WORKLOADS = ("apache", "db2", "qry2", "em3d")


@dataclass(frozen=True)
class SensitivityPoint:
    workload: str
    knob: str
    value: int
    coverage: float
    overpredictions: float


def _prefetcher_for(knob: str, value: int, base: STeMSConfig) -> STeMSPrefetcher:
    if knob == "svb_entries":
        return STeMSPrefetcher(base)
    return STeMSPrefetcher(replace(base, **{knob: value}))


def run(
    config: ExperimentConfig,
    knobs: Sequence[str] = tuple(SWEEPS),
) -> List[SensitivityPoint]:
    points: List[SensitivityPoint] = []
    workloads = [w for w in config.workloads if w in DEFAULT_WORKLOADS]
    if not workloads:
        workloads = [config.workloads[0]]
    for name in workloads:
        trace = config.trace(name)
        baseline = SimulationDriver(config.system, None).run(trace)
        base_misses = max(1, baseline.uncovered)
        base_stems = STeMSConfig.scientific() if config.scientific(name) \
            else STeMSConfig()
        for knob in knobs:
            if knob not in SWEEPS:
                raise ValueError(f"unknown sensitivity knob {knob!r}")
            for value in SWEEPS[knob]:
                system = config.system
                if knob == "svb_entries":
                    system = replace(system, svb_entries=value)
                prefetcher = _prefetcher_for(knob, value, base_stems)
                result = SimulationDriver(system, prefetcher).run(trace)
                points.append(
                    SensitivityPoint(
                        workload=name,
                        knob=knob,
                        value=value,
                        coverage=result.covered / base_misses,
                        overpredictions=result.overpredictions / base_misses,
                    )
                )
    return points


def format_table(points: List[SensitivityPoint]) -> str:
    lines = [
        "== STeMS sensitivity to the §4.3 hardware parameters ==",
        f"{'workload':<9} {'knob':<14} {'value':>7} {'coverage':>9} "
        f"{'overpred':>9}",
    ]
    for p in points:
        lines.append(
            f"{p.workload:<9} {p.knob:<14} {p.value:>7} {p.coverage:>9.1%} "
            f"{p.overpredictions:>9.1%}"
        )
    lines.append("paper sizing: RMOB 128K, PST 16K, SVB 64, lookahead 8/12")
    return "\n".join(lines)
