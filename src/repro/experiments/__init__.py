"""Experiment harnesses: one module per paper table/figure.

Every harness exposes ``run(config) -> result`` plus a text formatter so
``python -m repro.experiments <name>`` regenerates the corresponding
rows. ``ExperimentConfig.small()`` is the fast preset used by tests and
benchmarks; the default preset matches EXPERIMENTS.md.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments import (
    baselines,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    hybrid,
    sensitivity,
    table1,
)

__all__ = [
    "ExperimentConfig",
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "hybrid",
    "sensitivity",
    "baselines",
]
