"""Experiment harnesses: one module per paper table/figure, engine-backed.

Every harness is declarative. It exposes:

* ``declare(config, graph) -> plan`` — add the :class:`~repro.engine.SimJob`
  nodes this experiment needs to a :class:`~repro.engine.JobGraph`;
* ``collect(config, plan, results) -> result`` — assemble the
  experiment's result structure from the engine's result map;
* ``run(config, engine=None) -> result`` — declare + execute + collect
  in one call (fresh serial engine by default);
* ``format_table(result) -> str`` and ``export_rows(result)`` — the text
  rendering and the flat row list for ``--export json/csv``.

Declaring instead of running is what the unified engine architecture
buys: ``python -m repro.experiments all`` builds one job graph across
every selected figure, so the runs that figures share (e.g. each
workload's no-prefetcher baseline, fig9's tms/stems points reused by
baselines and hybrid) are simulated exactly once, can fan out over a
process pool (``--jobs N``), and land in an on-disk result cache
(``--cache-dir``) that later invocations hit instead of re-simulating.
Each job streams its trace through the driver/analysis consumers in one
pass — peak memory is independent of ``--length`` — unless the
``--materialize`` compatibility flag asks for in-memory traces; results
are bit-identical either way.

``ExperimentConfig.small()`` is the fast preset used by tests and
benchmarks; the default preset matches EXPERIMENTS.md.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments import (
    baselines,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    hybrid,
    sensitivity,
    table1,
)

__all__ = [
    "ExperimentConfig",
    "table1",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "hybrid",
    "sensitivity",
    "baselines",
]
