"""Command-line entry point: regenerate any paper table/figure.

Built on the :mod:`repro.engine` job-graph engine: the selected
experiments *declare* their simulations into one shared graph, the
engine deduplicates and executes them (serially, or across processes
with ``--jobs N``), and each experiment assembles its table from the
shared results. An on-disk result cache (``--cache-dir``) makes repeat
and overlapping invocations skip finished simulations entirely.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig9 --length 150000 --seed 7
    python -m repro.experiments all --small --jobs 4
    python -m repro.experiments all --extended --cache-dir .repro-cache
    python -m repro.experiments all --jobs 4 --trace-store .repro-traces
    python -m repro.experiments fig9 --export json --export-dir results
    python -m repro.experiments --list

A ``--trace-store`` directory (or the ``REPRO_TRACE_STORE`` environment
variable) turns trace generation into a shared, cached resource: each
``(workload, length, seed)`` trace is recorded once in a compact binary
format and replayed by every job — and every ``--jobs`` worker — that
shares it, across invocations. Under ``--jobs N`` the replays collapse
further: ``--broadcast`` (default ``auto``) runs jobs sharing a trace
key as a broadcast wave — one reader process walks the key once and
tees every chunk to all consumers over shared memory, so an N-job sweep
over one key costs exactly one trace walk total.

Execution is fault-tolerant: every job runs under a retry policy
(``--retries``, ``--job-timeout``), dead workers are respawned with only
the lost jobs requeued, and corrupt trace/cache entries are quarantined
and regenerated.

Every cached invocation is also a **durable run**: a write-ahead journal
under ``<cache-dir>/runs/<run_id>/`` records the run header and every
job lifecycle event, fsync'd as it happens, so a SIGINT, OOM kill or
power cut costs only the jobs that had not yet completed. ``--resume
<run_id|last>`` rebuilds the job graph from the journal and re-executes
only the incomplete jobs (completed ones are served from the result
cache), producing output bit-identical to an uninterrupted run;
``--list-runs`` enumerates journaled runs and their status.

The **exit code is a contract**: ``0`` means a clean run, ``1`` means
the run completed but some recovery path fired (retries, quarantines,
fallbacks — including jobs that failed permanently and surfaced as
structured failures), ``2`` means a hard failure under ``--strict`` (the
first job to exhaust its retries aborts the run), and ``3`` means the
run was interrupted gracefully (SIGINT/SIGTERM) with a sealed,
resumable journal — a second SIGINT skips the drain and hard-aborts
(exit 130, the journal is left ``running`` and detected as ``crashed``,
which is equally resumable).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.engine import (
    Engine,
    GracefulShutdown,
    JobExecutionError,
    JobGraph,
    RetryPolicy,
    RunInterrupted,
    RunJournal,
    find_run,
    list_runs,
    runs_root,
)
from repro.engine.journal import JournalError, config_hash, mark_resumed
from repro.telemetry import resolve_telemetry
from repro.tracestore import default_trace_store_dir
from repro.experiments import (
    baselines,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    hybrid,
    sensitivity,
    table1,
)
from repro.experiments.config import ExperimentConfig
from repro.sim.export import write_csv, write_json
from repro.workloads.registry import WORKLOAD_CATEGORIES, WORKLOAD_NAMES

EXPERIMENTS = {
    "table1": table1,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "hybrid": hybrid,
    "sensitivity": sensitivity,
    "baselines": baselines,
}

#: the figures/tables that appear in the paper itself; ``--extended``
#: adds the sensitivity and lineage extension studies
PAPER_SET = ["table1", "fig6", "fig7", "fig8", "fig9", "fig10", "hybrid"]
EXTENDED_SET = PAPER_SET + ["sensitivity", "baselines"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate tables/figures of 'Spatio-Temporal Memory "
        "Streaming' (ISCA 2009)",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' covers the paper's "
        "artifacts; add --extended for sensitivity and baselines)",
    )
    parser.add_argument("--length", type=int, default=None,
                        help="trace length per workload")
    parser.add_argument("--seed", type=int, default=None, help="trace seed")
    parser.add_argument(
        "--workloads", nargs="+", choices=WORKLOAD_NAMES, default=None,
        help="subset of workloads to evaluate",
    )
    parser.add_argument("--small", action="store_true",
                        help="use the fast preset (tests/benchmarks)")
    parser.add_argument(
        "--extended", action="store_true",
        help="make 'all' include the sensitivity and baselines extensions",
    )
    engine_group = parser.add_argument_group("engine")
    engine_group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation jobs (default: 1, serial)",
    )
    engine_group.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="on-disk result cache keyed by job hash "
        "(default: .repro-cache; see --no-cache)",
    )
    engine_group.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    engine_group.add_argument(
        "--trace-store", default=None, metavar="DIR",
        help="shared trace plane: record each (workload, length, seed) "
        "trace once and replay it for every job and worker that shares "
        "it (default: $REPRO_TRACE_STORE if set, else off)",
    )
    engine_group.add_argument(
        "--broadcast", choices=("auto", "on", "off"), default=None,
        help="shared-memory fan-out: under --jobs N with a trace store, "
        "jobs sharing a trace key consume ONE reader process's walk "
        "over a shared-memory ring instead of replaying the store "
        "independently — N jobs over one key cost exactly one trace "
        "walk; results are bit-identical either way (default: "
        "$REPRO_BROADCAST if set, else auto)",
    )
    engine_group.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts each failing job gets before it is recorded as a "
        "structured failure (default: 3; 1 disables retrying)",
    )
    engine_group.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget; an overrunning job's worker is "
        "killed and the job charged a timeout attempt (default: none)",
    )
    engine_group.add_argument(
        "--strict", action="store_true",
        help="abort (exit 2) on the first job that exhausts its retries "
        "instead of degrading it to a structured failure (exit 1)",
    )
    engine_group.add_argument(
        "--materialize", action="store_true",
        help="compatibility mode: generate each trace into memory "
        "(per-process memo) instead of streaming it; results are "
        "bit-identical, but peak memory grows with trace length",
    )
    engine_group.add_argument(
        "--kernel", choices=("python", "vector"), default=None,
        help="trace-walk kernel: 'vector' decodes and classifies whole "
        "record chunks at a time, 'python' is the record-at-a-time "
        "reference oracle; results are bit-identical (default: "
        "$REPRO_KERNEL if set, else vector when numpy is installed)",
    )
    durable_group = parser.add_argument_group("durable runs")
    durable_group.add_argument(
        "--resume", default=None, metavar="RUN",
        help="resume a journaled run by id (or 'last'): rebuild its job "
        "graph from the journal under <cache-dir>/runs/ and re-execute "
        "only the jobs without a durable result",
    )
    durable_group.add_argument(
        "--run-id", default=None, metavar="ID",
        help="explicit run id for the journal directory "
        "(default: generated timestamp-pid id)",
    )
    durable_group.add_argument(
        "--no-journal", action="store_true",
        help="do not write the run journal (journaling is on whenever "
        "the result cache is; --no-cache also disables it)",
    )
    durable_group.add_argument(
        "--list-runs", action="store_true",
        help="list journaled runs under <cache-dir>/runs/ with their "
        "status (clean / degraded / failed / interrupted / crashed) "
        "and progress, then exit",
    )
    export_group = parser.add_argument_group("export")
    export_group.add_argument(
        "--export", choices=("json", "csv"), default=None,
        help="also write each experiment's rows as json/csv",
    )
    export_group.add_argument(
        "--export-dir", default="results", metavar="DIR",
        help="directory for exported row files (default: results)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_available",
        help="list available experiments and workloads, then exit",
    )
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.small() if args.small else ExperimentConfig()
    if args.length is not None:
        config.trace_length = args.length
    if args.seed is not None:
        config.seed = args.seed
    if args.workloads is not None:
        config.workloads = list(args.workloads)
    return config


def make_engine(args: argparse.Namespace, journal=None,
                interrupt=None) -> Engine:
    trace_store = args.trace_store
    if trace_store is None:
        trace_store = default_trace_store_dir()
    return Engine(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        materialize=True if args.materialize else None,
        trace_store=trace_store,
        broadcast=getattr(args, "broadcast", None),
        retry=RetryPolicy(
            attempts=max(1, args.retries), timeout=args.job_timeout
        ),
        strict=args.strict,
        journal=journal,
        interrupt=interrupt,
        kernel=args.kernel,
    )


def select_experiments(args: argparse.Namespace) -> List[str]:
    if args.experiment == "all":
        return list(EXTENDED_SET if args.extended else PAPER_SET)
    return [args.experiment]


def run_one(name: str, config: ExperimentConfig,
            engine: Optional[Engine] = None) -> str:
    """Run a single experiment end-to-end and format its table."""
    module = EXPERIMENTS[name]
    result = module.run(config, engine=engine)
    return module.format_table(result)


def list_available() -> str:
    lines = ["experiments:"]
    for name in PAPER_SET:
        lines.append(f"  {name:<12} (paper)")
    for name in EXTENDED_SET:
        if name not in PAPER_SET:
            lines.append(f"  {name:<12} (extension; in 'all' via --extended)")
    lines.append("workloads:")
    for name in WORKLOAD_NAMES:
        lines.append(f"  {name:<8} [{WORKLOAD_CATEGORIES[name]}]")
    return "\n".join(lines)


def _export(name: str, result, fmt: str, directory: Path) -> Optional[Path]:
    module = EXPERIMENTS[name]
    rows = module.export_rows(result)
    if not rows:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.{fmt}"
    writer = write_json if fmt == "json" else write_csv
    return writer(rows, path)


def format_runs(root: Path) -> str:
    """The ``--list-runs`` table: one line per journaled run."""
    records = list_runs(root)
    if not records:
        return f"no journaled runs under {root}"
    lines = []
    for record in records:
        status = record.status()
        if record.manifest.get("resumed_by"):
            status += f" → resumed by {record.manifest['resumed_by']}"
        elif record.resumable():
            status += " (resumable)"
        scheduled = len(record.scheduled) or record.manifest.get(
            "jobs_scheduled", 0
        )
        experiments = record.header.get("experiments") or []
        lines.append(
            f"{record.run_id:<28} {status:<24} "
            f"{len(record.completed)}/{scheduled} jobs  "
            f"started {record.started or '?'}  "
            f"[{' '.join(experiments)}]"
        )
    return "\n".join(lines)


def _resolve_resume(args: argparse.Namespace) -> argparse.Namespace:
    """Turn ``--resume RUN`` into the original run's argument set.

    The journal header records the original invocation's argv; it is
    re-parsed so the resumed run declares the *identical* job graph.
    The current invocation's engine-shape flags (``--jobs``, explicit
    ``--cache-dir``) override the recorded ones — resuming a parallel
    run serially (or vice versa) is legal and bit-identical.
    """
    record = find_run(runs_root(args.cache_dir), args.resume)
    resumed = build_parser().parse_args(record.argv)
    if resumed.resume:
        # a resume-of-a-resume recorded its own original argv; the
        # header argv is always the *effective* experiment invocation
        resumed.resume = None
    resumed.cache_dir = args.cache_dir
    if args.jobs != 1:
        resumed.jobs = args.jobs
    if args.export is not None:
        resumed.export = args.export
    if args.export_dir != build_parser().get_default("export_dir"):
        resumed.export_dir = args.export_dir
    resumed.run_id = args.run_id
    resumed.no_journal = args.no_journal
    incomplete = record.incomplete()
    print(
        f"[resume {record.run_id}: {len(record.completed)} of "
        f"{len(record.scheduled)} journaled jobs already durable, "
        f"{len(incomplete)} to re-execute]",
        file=sys.stderr,
    )
    resumed._resume_record = record
    return resumed


def _write_telemetry(engine: Engine, journal) -> None:
    """Serialize the run's telemetry next to its journal (best effort).

    Called on every terminal path — clean, degraded, strict abort,
    graceful interrupt — so ``repro-report`` has ``metrics.json`` even
    for runs that did not finish. A write failure is reported but never
    changes the run's outcome.
    """
    if journal is None or not engine.telemetry.enabled:
        return
    try:
        written = engine.telemetry.write(journal.directory, journal.run_id)
    except OSError as error:
        print(f"[telemetry: write failed: {error}]", file=sys.stderr)
        return
    if written:
        names = ", ".join(path.name for path in written)
        print(f"[telemetry: {names} written to {journal.directory}]",
              file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    original_argv = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(argv)
    try:
        # validate the telemetry mode up front: the hot-path check
        # (phases_active) deliberately never raises, so a typo'd
        # REPRO_TELEMETRY must be caught before any work happens
        resolve_telemetry()
    except ValueError as error:
        print(f"[telemetry: {error}]", file=sys.stderr)
        return 2
    if args.list_available:
        print(list_available())
        return 0
    if args.list_runs:
        print(format_runs(runs_root(args.cache_dir)))
        return 0
    resume_record = None
    if args.resume is not None:
        try:
            args = _resolve_resume(args)
        except JournalError as error:
            print(f"[resume: {error}]", file=sys.stderr)
            return 2
        resume_record = args._resume_record
        original_argv = list(resume_record.argv)
    if args.experiment is None:
        build_parser().error("an experiment name (or --list) is required")
    config = make_config(args)
    names = select_experiments(args)

    # declare everything into one graph so the engine deduplicates the
    # jobs shared between figures, then execute the graph exactly once
    started = time.time()
    graph = JobGraph()
    plans = {name: EXPERIMENTS[name].declare(config, graph) for name in names}

    journal = None
    if not args.no_cache and not args.no_journal:
        header = {
            "argv": original_argv,
            "experiments": names,
            "config": config_hash(config),
        }
        if resume_record is not None:
            header["resumed_from"] = resume_record.run_id
        journal = RunJournal.create(
            runs_root(args.cache_dir), run_id=args.run_id, header=header
        )
        if resume_record is not None:
            mark_resumed(resume_record, journal.run_id)
            _cross_check_resume(resume_record, graph)
    shutdown = GracefulShutdown().install()
    try:
        with make_engine(args, journal=journal,
                         interrupt=shutdown.event) as engine:
            try:
                results = engine.run(graph)
            except JobExecutionError as error:
                print(f"[engine: strict abort — {error.failure.summary()}]",
                      file=sys.stderr)
                print(f"[{engine.stats.format()}]", file=sys.stderr)
                _write_telemetry(engine, journal)
                if journal is not None:
                    journal.finish("failed", stats=engine.stats.as_dict())
                return 2
            except RunInterrupted as stop:
                print(f"[engine: {stop}]", file=sys.stderr)
                _write_telemetry(engine, journal)
                if journal is not None:
                    journal.finish(
                        "interrupted", stats=engine.stats.as_dict()
                    )
                    print(
                        f"[run {journal.run_id} interrupted — resume with "
                        f"--resume {journal.run_id} (or --resume last)]",
                        file=sys.stderr,
                    )
                return 3
            failures = results.failures()
            for failure in failures:
                print(f"[engine: {failure.summary()}]", file=sys.stderr)
            # per-experiment stderr notes are buffered and flushed after
            # the tables: an --export run piping stdout must not get
            # stats lines interleaved mid-table (the notes land on
            # stderr in one block once stdout is complete)
            notes: List[str] = []
            for name in names:
                module = EXPERIMENTS[name]
                try:
                    output = module.collect(config, plans[name], results)
                    table = module.format_table(output)
                    exported = (
                        _export(name, output, args.export,
                                Path(args.export_dir))
                        if args.export else None
                    )
                except Exception:
                    if not failures:
                        raise
                    # a failed job leaves a hole this experiment needs;
                    # the run still surfaces every other table
                    # (degraded, exit 1)
                    notes.append(
                        f"[{name}: table skipped — {len(failures)} job(s) "
                        "failed permanently]"
                    )
                    print()
                    continue
                print(table)
                if exported is not None:
                    notes.append(f"[{name}: rows exported to {exported}]")
                print()
            sys.stdout.flush()
            for note in notes:
                print(note, file=sys.stderr)
            # the legacy one-liner stays byte-compatible in every
            # telemetry mode (CI greps it); telemetry only adds lines
            print(f"[{engine.stats.format()}, {time.time() - started:.1f}s]",
                  file=sys.stderr)
            _write_telemetry(engine, journal)
            degraded = engine.stats.degraded
            if journal is not None:
                journal.finish(
                    "degraded" if degraded else "clean",
                    stats=engine.stats.as_dict(),
                )
            return 1 if degraded else 0
    except KeyboardInterrupt:
        # second SIGINT: hard abort — the journal is deliberately left
        # unsealed (status 'running', dead pid → listed as 'crashed',
        # still resumable)
        print("[hard abort]", file=sys.stderr)
        return 130
    finally:
        shutdown.uninstall()
        if journal is not None:
            journal.close()


def _cross_check_resume(record, graph: JobGraph) -> None:
    """Warn when the resumed graph and the journal disagree.

    A code or config change between the runs shows up as hash drift;
    the resume still executes (whatever the cache can satisfy it will),
    but parity with the original run is no longer implied.
    """
    current = {job.job_hash for job in graph}
    journaled = set(record.scheduled)
    if current != journaled:
        missing = len(journaled - current)
        extra = len(current - journaled)
        print(
            f"[resume: job graph drifted since {record.run_id} "
            f"({missing} journaled job(s) no longer declared, {extra} "
            "new) — results may differ from the original run]",
            file=sys.stderr,
        )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
