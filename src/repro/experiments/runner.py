"""Command-line entry point: regenerate any paper table/figure.

Built on the :mod:`repro.engine` job-graph engine: the selected
experiments *declare* their simulations into one shared graph, the
engine deduplicates and executes them (serially, or across processes
with ``--jobs N``), and each experiment assembles its table from the
shared results. An on-disk result cache (``--cache-dir``) makes repeat
and overlapping invocations skip finished simulations entirely.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig9 --length 150000 --seed 7
    python -m repro.experiments all --small --jobs 4
    python -m repro.experiments all --extended --cache-dir .repro-cache
    python -m repro.experiments all --jobs 4 --trace-store .repro-traces
    python -m repro.experiments fig9 --export json --export-dir results
    python -m repro.experiments --list

A ``--trace-store`` directory (or the ``REPRO_TRACE_STORE`` environment
variable) turns trace generation into a shared, cached resource: each
``(workload, length, seed)`` trace is recorded once in a compact binary
format and replayed by every job — and every ``--jobs`` worker — that
shares it, across invocations.

Execution is fault-tolerant: every job runs under a retry policy
(``--retries``, ``--job-timeout``), dead workers are respawned with only
the lost jobs requeued, and corrupt trace/cache entries are quarantined
and regenerated. The **exit code is a contract**: ``0`` means a clean
run, ``1`` means the run completed but some recovery path fired
(retries, quarantines, fallbacks — including jobs that failed
permanently and surfaced as structured failures), and ``2`` means a hard
failure under ``--strict`` (the first job to exhaust its retries aborts
the run).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.engine import Engine, JobExecutionError, JobGraph, RetryPolicy
from repro.tracestore import default_trace_store_dir
from repro.experiments import (
    baselines,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    hybrid,
    sensitivity,
    table1,
)
from repro.experiments.config import ExperimentConfig
from repro.sim.export import write_csv, write_json
from repro.workloads.registry import WORKLOAD_CATEGORIES, WORKLOAD_NAMES

EXPERIMENTS = {
    "table1": table1,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "hybrid": hybrid,
    "sensitivity": sensitivity,
    "baselines": baselines,
}

#: the figures/tables that appear in the paper itself; ``--extended``
#: adds the sensitivity and lineage extension studies
PAPER_SET = ["table1", "fig6", "fig7", "fig8", "fig9", "fig10", "hybrid"]
EXTENDED_SET = PAPER_SET + ["sensitivity", "baselines"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate tables/figures of 'Spatio-Temporal Memory "
        "Streaming' (ISCA 2009)",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' covers the paper's "
        "artifacts; add --extended for sensitivity and baselines)",
    )
    parser.add_argument("--length", type=int, default=None,
                        help="trace length per workload")
    parser.add_argument("--seed", type=int, default=None, help="trace seed")
    parser.add_argument(
        "--workloads", nargs="+", choices=WORKLOAD_NAMES, default=None,
        help="subset of workloads to evaluate",
    )
    parser.add_argument("--small", action="store_true",
                        help="use the fast preset (tests/benchmarks)")
    parser.add_argument(
        "--extended", action="store_true",
        help="make 'all' include the sensitivity and baselines extensions",
    )
    engine_group = parser.add_argument_group("engine")
    engine_group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for simulation jobs (default: 1, serial)",
    )
    engine_group.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="on-disk result cache keyed by job hash "
        "(default: .repro-cache; see --no-cache)",
    )
    engine_group.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the result cache",
    )
    engine_group.add_argument(
        "--trace-store", default=None, metavar="DIR",
        help="shared trace plane: record each (workload, length, seed) "
        "trace once and replay it for every job and worker that shares "
        "it (default: $REPRO_TRACE_STORE if set, else off)",
    )
    engine_group.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts each failing job gets before it is recorded as a "
        "structured failure (default: 3; 1 disables retrying)",
    )
    engine_group.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget; an overrunning job's worker is "
        "killed and the job charged a timeout attempt (default: none)",
    )
    engine_group.add_argument(
        "--strict", action="store_true",
        help="abort (exit 2) on the first job that exhausts its retries "
        "instead of degrading it to a structured failure (exit 1)",
    )
    engine_group.add_argument(
        "--materialize", action="store_true",
        help="compatibility mode: generate each trace into memory "
        "(per-process memo) instead of streaming it; results are "
        "bit-identical, but peak memory grows with trace length",
    )
    export_group = parser.add_argument_group("export")
    export_group.add_argument(
        "--export", choices=("json", "csv"), default=None,
        help="also write each experiment's rows as json/csv",
    )
    export_group.add_argument(
        "--export-dir", default="results", metavar="DIR",
        help="directory for exported row files (default: results)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_available",
        help="list available experiments and workloads, then exit",
    )
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.small() if args.small else ExperimentConfig()
    if args.length is not None:
        config.trace_length = args.length
    if args.seed is not None:
        config.seed = args.seed
    if args.workloads is not None:
        config.workloads = list(args.workloads)
    return config


def make_engine(args: argparse.Namespace) -> Engine:
    trace_store = args.trace_store
    if trace_store is None:
        trace_store = default_trace_store_dir()
    return Engine(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        materialize=True if args.materialize else None,
        trace_store=trace_store,
        retry=RetryPolicy(
            attempts=max(1, args.retries), timeout=args.job_timeout
        ),
        strict=args.strict,
    )


def select_experiments(args: argparse.Namespace) -> List[str]:
    if args.experiment == "all":
        return list(EXTENDED_SET if args.extended else PAPER_SET)
    return [args.experiment]


def run_one(name: str, config: ExperimentConfig,
            engine: Optional[Engine] = None) -> str:
    """Run a single experiment end-to-end and format its table."""
    module = EXPERIMENTS[name]
    result = module.run(config, engine=engine)
    return module.format_table(result)


def list_available() -> str:
    lines = ["experiments:"]
    for name in PAPER_SET:
        lines.append(f"  {name:<12} (paper)")
    for name in EXTENDED_SET:
        if name not in PAPER_SET:
            lines.append(f"  {name:<12} (extension; in 'all' via --extended)")
    lines.append("workloads:")
    for name in WORKLOAD_NAMES:
        lines.append(f"  {name:<8} [{WORKLOAD_CATEGORIES[name]}]")
    return "\n".join(lines)


def _export(name: str, result, fmt: str, directory: Path) -> Optional[Path]:
    module = EXPERIMENTS[name]
    rows = module.export_rows(result)
    if not rows:
        return None
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.{fmt}"
    writer = write_json if fmt == "json" else write_csv
    return writer(rows, path)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_available:
        print(list_available())
        return 0
    if args.experiment is None:
        build_parser().error("an experiment name (or --list) is required")
    config = make_config(args)
    names = select_experiments(args)

    # declare everything into one graph so the engine deduplicates the
    # jobs shared between figures, then execute the graph exactly once
    started = time.time()
    graph = JobGraph()
    plans = {name: EXPERIMENTS[name].declare(config, graph) for name in names}
    with make_engine(args) as engine:
        try:
            results = engine.run(graph)
        except JobExecutionError as error:
            print(f"[engine: strict abort — {error.failure.summary()}]",
                  file=sys.stderr)
            print(f"[{engine.stats.format()}]", file=sys.stderr)
            return 2
        failures = results.failures()
        for failure in failures:
            print(f"[engine: {failure.summary()}]", file=sys.stderr)
        for name in names:
            module = EXPERIMENTS[name]
            try:
                output = module.collect(config, plans[name], results)
                table = module.format_table(output)
                exported = (
                    _export(name, output, args.export, Path(args.export_dir))
                    if args.export else None
                )
            except Exception:
                if not failures:
                    raise
                # a failed job leaves a hole this experiment needs; the
                # run still surfaces every other table (degraded, exit 1)
                print(f"[{name}: table skipped — {len(failures)} job(s) "
                      "failed permanently]", file=sys.stderr)
                print()
                continue
            print(table)
            if exported is not None:
                print(f"[{name}: rows exported to {exported}]",
                      file=sys.stderr)
            print()
        print(f"[{engine.stats.format()}, {time.time() - started:.1f}s]",
              file=sys.stderr)
        return 1 if engine.stats.degraded else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
