"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig9 --length 150000 --seed 7
    python -m repro.experiments all --workloads db2 qry2 em3d
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import (
    baselines,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    hybrid,
    sensitivity,
    table1,
)
from repro.experiments.config import ExperimentConfig
from repro.workloads.registry import WORKLOAD_NAMES

EXPERIMENTS = {
    "table1": table1,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "hybrid": hybrid,
    "sensitivity": sensitivity,
    "baselines": baselines,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate tables/figures of 'Spatio-Temporal Memory "
        "Streaming' (ISCA 2009)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' covers the paper's "
        "artifacts; 'sensitivity' and 'baselines' are extensions run "
        "by name)",
    )
    parser.add_argument("--length", type=int, default=None,
                        help="trace length per workload")
    parser.add_argument("--seed", type=int, default=None, help="trace seed")
    parser.add_argument(
        "--workloads", nargs="+", choices=WORKLOAD_NAMES, default=None,
        help="subset of workloads to evaluate",
    )
    parser.add_argument("--small", action="store_true",
                        help="use the fast preset (tests/benchmarks)")
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.small() if args.small else ExperimentConfig()
    if args.length is not None:
        config.trace_length = args.length
    if args.seed is not None:
        config.seed = args.seed
    if args.workloads is not None:
        config.workloads = list(args.workloads)
    return config


def run_one(name: str, config: ExperimentConfig) -> str:
    module = EXPERIMENTS[name]
    result = module.run(config)
    return module.format_table(result)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = make_config(args)
    paper_set = ["table1", "fig6", "fig7", "fig8", "fig9", "fig10", "hybrid"]
    names = paper_set if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(run_one(name, config))
        print(f"[{name}: {time.time() - started:.1f}s]", file=sys.stderr)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
