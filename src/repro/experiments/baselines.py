"""Extension experiment: STeMS against the pre-streaming correlation
prefetchers it descends from (§1/§6 context).

Adds the Markov prefetcher [13] and the Global History Buffer [17] to the
Fig. 9-style coverage comparison. Both keep their history *on chip*
(kilobytes, not megabytes), so their temporal reach collapses on working
sets that outrun it — the gap that motivated off-chip history (TMS) in
the first place, and that STeMS inherits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine import Engine, JobGraph, ResultMap, SimJob
from repro.experiments import harness
from repro.experiments.config import ExperimentConfig

PREDICTORS = ("stride", "markov", "ghb", "tms", "stems")


@dataclass(frozen=True)
class BaselineRow:
    workload: str
    predictor: str
    coverage: float
    overpredictions: float


Plan = Dict[str, Dict[str, SimJob]]


def declare(config: ExperimentConfig, graph: JobGraph) -> Plan:
    """Per workload: the shared baseline plus one coverage run per
    lineage predictor (tms/stems nodes are shared with fig9)."""
    plan: Plan = {}
    for name in config.workloads:
        jobs = {"baseline": graph.add(config.coverage_job(name))}
        for kind in PREDICTORS:
            jobs[kind] = graph.add(config.coverage_job(name, kind))
        plan[name] = jobs
    return plan


def collect(
    config: ExperimentConfig, plan: Plan, results: ResultMap
) -> Dict[str, List[BaselineRow]]:
    out: Dict[str, List[BaselineRow]] = {}
    for name, jobs in plan.items():
        base_misses = max(1, results[jobs["baseline"]].uncovered)
        out[name] = [
            BaselineRow(
                workload=name,
                predictor=kind,
                coverage=results[jobs[kind]].covered / base_misses,
                overpredictions=results[jobs[kind]].overpredictions / base_misses,
            )
            for kind in PREDICTORS
        ]
    return out


def run(
    config: ExperimentConfig, engine: Optional[Engine] = None
) -> Dict[str, List[BaselineRow]]:
    return harness.execute(declare, collect, config, engine)


def export_rows(results: Dict[str, List[BaselineRow]]) -> List[BaselineRow]:
    return harness.flatten_rows(results)


def format_table(results: Dict[str, List[BaselineRow]]) -> str:
    lines = [
        "== Extension: correlation-prefetcher lineage "
        "(coverage / overpredictions) ==",
        f"{'workload':<9} " + " ".join(
            f"{k:>14}" for k in ("stride", "markov", "ghb", "tms", "stems")
        ),
    ]
    for name, rows in results.items():
        cells = {r.predictor: r for r in rows}
        lines.append(
            f"{name:<9} " + " ".join(
                f"{cells[k].coverage:>6.1%}/{cells[k].overpredictions:<6.1%}"
                for k in ("stride", "markov", "ghb", "tms", "stems")
            )
        )
    lines.append("expected: on-chip history (markov/ghb) trails off-chip "
                 "history (tms/stems) on large working sets")
    return "\n".join(lines)
