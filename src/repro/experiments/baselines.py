"""Extension experiment: STeMS against the pre-streaming correlation
prefetchers it descends from (§1/§6 context).

Adds the Markov prefetcher [13] and the Global History Buffer [17] to the
Fig. 9-style coverage comparison. Both keep their history *on chip*
(kilobytes, not megabytes), so their temporal reach collapses on working
sets that outrun it — the gap that motivated off-chip history (TMS) in
the first place, and that STeMS inherits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import ExperimentConfig
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.markov import MarkovPrefetcher
from repro.sim.driver import SimulationDriver


@dataclass(frozen=True)
class BaselineRow:
    workload: str
    predictor: str
    coverage: float
    overpredictions: float


def run(config: ExperimentConfig) -> Dict[str, List[BaselineRow]]:
    results: Dict[str, List[BaselineRow]] = {}
    for name in config.workloads:
        trace = config.trace(name)
        baseline = SimulationDriver(config.system, None).run(trace)
        base_misses = max(1, baseline.uncovered)
        rows: List[BaselineRow] = []
        prefetchers = [
            ("stride", config.make_prefetcher("stride", name)),
            ("markov", MarkovPrefetcher()),
            ("ghb", GHBPrefetcher()),
            ("tms", config.make_prefetcher("tms", name)),
            ("stems", config.make_prefetcher("stems", name)),
        ]
        for label, prefetcher in prefetchers:
            result = SimulationDriver(config.system, prefetcher).run(trace)
            rows.append(
                BaselineRow(
                    workload=name,
                    predictor=label,
                    coverage=result.covered / base_misses,
                    overpredictions=result.overpredictions / base_misses,
                )
            )
        results[name] = rows
    return results


def format_table(results: Dict[str, List[BaselineRow]]) -> str:
    lines = [
        "== Extension: correlation-prefetcher lineage "
        "(coverage / overpredictions) ==",
        f"{'workload':<9} " + " ".join(
            f"{k:>14}" for k in ("stride", "markov", "ghb", "tms", "stems")
        ),
    ]
    for name, rows in results.items():
        cells = {r.predictor: r for r in rows}
        lines.append(
            f"{name:<9} " + " ".join(
                f"{cells[k].coverage:>6.1%}/{cells[k].overpredictions:<6.1%}"
                for k in ("stride", "markov", "ghb", "tms", "stems")
            )
        )
    lines.append("expected: on-chip history (markov/ghb) trails off-chip "
                 "history (tms/stems) on large working sets")
    return "\n".join(lines)
