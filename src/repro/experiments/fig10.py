"""Figure 10: performance improvement over the stride-prefetched baseline.

Each predictor runs on top of the baseline stride engine (Table 1 lists
the stride prefetcher as a system component). Cycles come from the
dependence-aware window timing model; the leading ``warmup_fraction`` of
each trace is excluded, mirroring the paper's warmed measurements.

Paper headline: STeMS improves performance by 31% over the baseline on
average (18% over TMS, 3% over SMS); SMS yields little OLTP speedup
despite high coverage; TMS accelerates em3d/sparse by ~4x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine import Engine, JobGraph, ResultMap, SimJob
from repro.experiments import harness
from repro.experiments.config import ExperimentConfig

PREDICTORS = harness.STREAMING_PREDICTORS


@dataclass(frozen=True)
class Fig10Row:
    workload: str
    predictor: str
    baseline_cycles: float
    cycles: float

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.cycles if self.cycles else 0.0

    @property
    def improvement(self) -> float:
        return self.speedup - 1.0


Plan = Dict[str, Dict[str, SimJob]]


def declare(config: ExperimentConfig, graph: JobGraph) -> Plan:
    """Per workload: the stride-baseline timing run plus one timing run
    per predictor stacked on the stride engine (Table 1 lists stride as a
    system component)."""
    plan: Plan = {}
    for name in config.workloads:
        jobs = {"baseline": graph.add(config.timing_job(name, "stride"))}
        for kind in PREDICTORS:
            jobs[kind] = graph.add(config.timing_job(name, kind, with_stride=True))
        plan[name] = jobs
    return plan


def collect(
    config: ExperimentConfig, plan: Plan, results: ResultMap
) -> Dict[str, List[Fig10Row]]:
    out: Dict[str, List[Fig10Row]] = {}
    for name, jobs in plan.items():
        baseline = results[jobs["baseline"]]
        out[name] = [
            Fig10Row(
                workload=name,
                predictor=kind,
                baseline_cycles=baseline.cycles,
                cycles=results[jobs[kind]].cycles,
            )
            for kind in PREDICTORS
        ]
    return out


def run(
    config: ExperimentConfig, engine: Optional[Engine] = None
) -> Dict[str, List[Fig10Row]]:
    return harness.execute(declare, collect, config, engine)


def export_rows(results: Dict[str, List[Fig10Row]]) -> List[Fig10Row]:
    return harness.flatten_rows(results)


def format_table(results: Dict[str, List[Fig10Row]]) -> str:
    lines = [
        "== Figure 10: performance improvement over the stride baseline ==",
        f"{'workload':<9} {'TMS':>9} {'SMS':>9} {'STeMS':>9}",
    ]
    for name, rows in results.items():
        by_kind = {r.predictor: r for r in rows}
        lines.append(
            f"{name:<9} {by_kind['tms'].improvement:>+9.1%} "
            f"{by_kind['sms'].improvement:>+9.1%} "
            f"{by_kind['stems'].improvement:>+9.1%}"
        )
    per_kind: Dict[str, List[float]] = {}
    for rows in results.values():
        for r in rows:
            per_kind.setdefault(r.predictor, []).append(r.improvement)
    if per_kind:
        lines.append(
            f"{'average':<9} "
            + " ".join(
                f"{sum(v)/len(v):>+9.1%}"
                for v in (per_kind["tms"], per_kind["sms"], per_kind["stems"])
            )
        )
    lines.append("paper: STeMS +31% mean over baseline; SMS ~0 on OLTP; "
                 "TMS ~4x on em3d/sparse")
    return "\n".join(lines)
