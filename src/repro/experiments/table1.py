"""Table 1: system and application parameters."""

from __future__ import annotations

from typing import List, Optional

from repro.engine import Engine, JobGraph, ResultMap
from repro.experiments.config import ExperimentConfig
from repro.workloads.registry import WORKLOAD_CATEGORIES, make_workload


def declare(config: ExperimentConfig, graph: JobGraph) -> None:
    """Table 1 renders configuration only; it declares no simulation jobs."""
    return None


def collect(
    config: ExperimentConfig, plan: None, results: ResultMap
) -> List[str]:
    """Render both halves of Table 1 for the active configuration."""
    system = config.system
    lines = ["== Table 1 (left): system parameters =="]
    lines.append(
        f"L1d cache        : {system.l1.size_bytes // 1024} KB "
        f"{system.l1.associativity}-way, {system.l1.block_bytes} B blocks"
    )
    lines.append(
        f"L2 cache         : {system.l2.size_bytes // 1024} KB "
        f"{system.l2.associativity}-way, {system.l2.block_bytes} B blocks"
    )
    t = system.timing
    lines.append(
        f"core             : {t.issue_width}-wide, {t.rob_window}-entry window, "
        f"{t.max_outstanding_misses} outstanding misses"
    )
    lines.append(
        f"latencies        : L1 {t.l1_latency} / L2 {t.l2_latency} / "
        f"memory {t.memory_latency} / SVB {t.svb_latency} cycles"
    )
    lines.append(
        f"spatial regions  : {system.address_map.region_bytes} B "
        f"({system.address_map.blocks_per_region} blocks); "
        f"SVB {system.svb_entries} entries"
    )
    lines.append("")
    lines.append("== Table 1 (right): application suite ==")
    for name in config.workloads:
        workload = make_workload(name)
        lines.append(
            f"{name:<8} [{WORKLOAD_CATEGORIES[name]:<10}] {workload.description}"
        )
    return lines


def run(config: ExperimentConfig, engine: Optional[Engine] = None) -> List[str]:
    return collect(config, None, ResultMap())


def format_table(lines: List[str]) -> str:
    return "\n".join(lines)


def export_rows(lines: List[str]) -> List[dict]:
    return [{"line": line} for line in lines]
