"""Figure 6: joint classification of off-chip read misses.

Paper headline (average across the suite): 32% of misses are temporally
predictable, 54% spatially, 70% by at least one technique; 34-38% of
commercial misses are predictable by neither.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.joint import JointCoverageResult
from repro.engine import Engine, JobGraph, ResultMap, SimJob
from repro.experiments import harness
from repro.experiments.config import ExperimentConfig

Plan = Dict[str, SimJob]


def declare(config: ExperimentConfig, graph: JobGraph) -> Plan:
    """One joint-predictability analysis job per workload."""
    return {name: graph.add(config.joint_job(name)) for name in config.workloads}


def collect(
    config: ExperimentConfig, plan: Plan, results: ResultMap
) -> Dict[str, JointCoverageResult]:
    return {name: results[job] for name, job in plan.items()}


def run(
    config: ExperimentConfig, engine: Optional[Engine] = None
) -> Dict[str, JointCoverageResult]:
    return harness.execute(declare, collect, config, engine)


def export_rows(results: Dict[str, JointCoverageResult]) -> List[JointCoverageResult]:
    return list(results.values())


def format_table(results: Dict[str, JointCoverageResult]) -> str:
    lines = [
        "== Figure 6: joint TMS/SMS predictability of off-chip read misses ==",
        f"{'workload':<9} {'both':>7} {'TMS-only':>9} {'SMS-only':>9} "
        f"{'neither':>8} {'temporal':>9} {'spatial':>8} {'joint':>7}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:<9} {r.both:>7.1%} {r.tms_only:>9.1%} {r.sms_only:>9.1%} "
            f"{r.neither:>8.1%} {r.temporal:>9.1%} {r.spatial:>8.1%} "
            f"{r.joint:>7.1%}"
        )
    values: List[JointCoverageResult] = list(results.values())
    if values:
        n = len(values)
        lines.append(
            f"{'average':<9} {sum(v.both for v in values)/n:>7.1%} "
            f"{sum(v.tms_only for v in values)/n:>9.1%} "
            f"{sum(v.sms_only for v in values)/n:>9.1%} "
            f"{sum(v.neither for v in values)/n:>8.1%} "
            f"{sum(v.temporal for v in values)/n:>9.1%} "
            f"{sum(v.spatial for v in values)/n:>8.1%} "
            f"{sum(v.joint for v in values)/n:>7.1%}"
        )
    lines.append("paper: avg temporal 32%, spatial 54%, joint 70%; "
                 "commercial 'neither' 34-38%")
    return "\n".join(lines)
