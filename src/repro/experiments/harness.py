"""Shared declare/execute/collect scaffolding for experiment modules.

Every harness module exposes the same three-function protocol:

* ``declare(config, graph) -> plan`` — add the module's :class:`SimJob`
  nodes to a (possibly shared) :class:`JobGraph` and return an opaque
  plan holding the job handles;
* ``collect(config, plan, results) -> result`` — assemble the module's
  result structure from the engine's result map;
* ``run(config, engine=None) -> result`` — the one-shot convenience that
  wires the two through an engine (a fresh serial one by default).

The runner executes many modules against a *single* graph so shared jobs
(e.g. the no-prefetcher baselines) are simulated once; ``execute`` below
is the single-module path used by ``run``, tests and benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.engine import Engine, JobGraph, ResultMap
from repro.experiments.config import ExperimentConfig

Declare = Callable[[ExperimentConfig, JobGraph], Any]
Collect = Callable[[ExperimentConfig, Any, ResultMap], Any]

#: the memory-streaming predictors figs. 9/10 compare head-to-head
STREAMING_PREDICTORS = ("tms", "sms", "stems")


def flatten_rows(results: Dict[str, List[Any]]) -> List[Any]:
    """Flatten a per-workload dict-of-row-lists into one export row list."""
    return [row for rows in results.values() for row in rows]


def execute(
    declare: Declare,
    collect: Collect,
    config: ExperimentConfig,
    engine: Optional[Engine] = None,
) -> Any:
    """Declare one module's jobs, run them, and collect its result."""
    graph = JobGraph()
    plan = declare(config, graph)
    results = (engine if engine is not None else Engine()).run(graph)
    return collect(config, plan, results)
