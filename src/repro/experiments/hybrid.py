"""§5.5 text experiment: the naive TMS∥SMS hybrid vs STeMS.

Paper headline: running TMS and SMS independently-but-concurrently
approaches the joint coverage of Fig. 6 but the predictors interfere,
generating roughly 2-3x the overpredictions of STeMS in OLTP and web.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import ExperimentConfig
from repro.sim.driver import SimulationDriver

#: the paper evaluates this point for OLTP and web serving
DEFAULT_WORKLOADS = ("apache", "zeus", "db2", "oracle")


@dataclass(frozen=True)
class HybridRow:
    workload: str
    hybrid_coverage: float
    hybrid_overpredictions: float
    stems_coverage: float
    stems_overpredictions: float

    @property
    def overprediction_ratio(self) -> float:
        if self.stems_overpredictions == 0:
            return float("inf") if self.hybrid_overpredictions else 0.0
        return self.hybrid_overpredictions / self.stems_overpredictions


def run(config: ExperimentConfig) -> List[HybridRow]:
    rows: List[HybridRow] = []
    workloads = [w for w in config.workloads if w in DEFAULT_WORKLOADS]
    for name in workloads:
        trace = config.trace(name)
        baseline = SimulationDriver(config.system, None).run(trace)
        base_misses = max(1, baseline.uncovered)
        outcomes: Dict[str, tuple] = {}
        for kind in ("hybrid", "stems"):
            prefetcher = config.make_prefetcher(kind, name)
            result = SimulationDriver(config.system, prefetcher).run(trace)
            outcomes[kind] = (
                result.covered / base_misses,
                result.overpredictions / base_misses,
            )
        rows.append(
            HybridRow(
                workload=name,
                hybrid_coverage=outcomes["hybrid"][0],
                hybrid_overpredictions=outcomes["hybrid"][1],
                stems_coverage=outcomes["stems"][0],
                stems_overpredictions=outcomes["stems"][1],
            )
        )
    return rows


def format_table(rows: List[HybridRow]) -> str:
    lines = [
        "== §5.5: naive TMS||SMS hybrid vs STeMS ==",
        f"{'workload':<9} {'hyb-cov':>8} {'hyb-over':>9} {'stems-cov':>10} "
        f"{'stems-over':>11} {'over-ratio':>11}",
    ]
    for r in rows:
        lines.append(
            f"{r.workload:<9} {r.hybrid_coverage:>8.1%} "
            f"{r.hybrid_overpredictions:>9.1%} {r.stems_coverage:>10.1%} "
            f"{r.stems_overpredictions:>11.1%} {r.overprediction_ratio:>10.1f}x"
        )
    lines.append("paper: hybrid overpredictions ~2-3x STeMS in OLTP and web")
    return "\n".join(lines)
