"""§5.5 text experiment: the naive TMS∥SMS hybrid vs STeMS.

Paper headline: running TMS and SMS independently-but-concurrently
approaches the joint coverage of Fig. 6 but the predictors interfere,
generating roughly 2-3x the overpredictions of STeMS in OLTP and web.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine import Engine, JobGraph, ResultMap, SimJob
from repro.experiments import harness
from repro.experiments.config import ExperimentConfig

#: the paper evaluates this point for OLTP and web serving
DEFAULT_WORKLOADS = ("apache", "zeus", "db2", "oracle")


@dataclass(frozen=True)
class HybridRow:
    workload: str
    hybrid_coverage: float
    hybrid_overpredictions: float
    stems_coverage: float
    stems_overpredictions: float

    @property
    def overprediction_ratio(self) -> float:
        if self.stems_overpredictions == 0:
            return float("inf") if self.hybrid_overpredictions else 0.0
        return self.hybrid_overpredictions / self.stems_overpredictions


Plan = Dict[str, Dict[str, SimJob]]


def declare(config: ExperimentConfig, graph: JobGraph) -> Plan:
    """Per OLTP/web workload: baseline, naive hybrid and STeMS coverage
    runs (baseline and STeMS nodes are shared with fig9/baselines)."""
    plan: Plan = {}
    for name in (w for w in config.workloads if w in DEFAULT_WORKLOADS):
        plan[name] = {
            "baseline": graph.add(config.coverage_job(name)),
            "hybrid": graph.add(config.coverage_job(name, "hybrid")),
            "stems": graph.add(config.coverage_job(name, "stems")),
        }
    return plan


def collect(
    config: ExperimentConfig, plan: Plan, results: ResultMap
) -> List[HybridRow]:
    rows: List[HybridRow] = []
    for name, jobs in plan.items():
        base_misses = max(1, results[jobs["baseline"]].uncovered)
        hybrid_result = results[jobs["hybrid"]]
        stems_result = results[jobs["stems"]]
        rows.append(
            HybridRow(
                workload=name,
                hybrid_coverage=hybrid_result.covered / base_misses,
                hybrid_overpredictions=hybrid_result.overpredictions / base_misses,
                stems_coverage=stems_result.covered / base_misses,
                stems_overpredictions=stems_result.overpredictions / base_misses,
            )
        )
    return rows


def run(
    config: ExperimentConfig, engine: Optional[Engine] = None
) -> List[HybridRow]:
    return harness.execute(declare, collect, config, engine)


def export_rows(rows: List[HybridRow]) -> List[HybridRow]:
    return list(rows)


def format_table(rows: List[HybridRow]) -> str:
    lines = [
        "== §5.5: naive TMS||SMS hybrid vs STeMS ==",
        f"{'workload':<9} {'hyb-cov':>8} {'hyb-over':>9} {'stems-cov':>10} "
        f"{'stems-over':>11} {'over-ratio':>11}",
    ]
    for r in rows:
        lines.append(
            f"{r.workload:<9} {r.hybrid_coverage:>8.1%} "
            f"{r.hybrid_overpredictions:>9.1%} {r.stems_coverage:>10.1%} "
            f"{r.stems_overpredictions:>11.1%} {r.overprediction_ratio:>10.1f}x"
        )
    lines.append("paper: hybrid overpredictions ~2-3x STeMS in OLTP and web")
    return "\n".join(lines)
