"""Figure 9: covered / uncovered / overpredicted misses for TMS, SMS and
STeMS, normalized to the baseline system's off-chip read misses.

Paper headline: in OLTP/web STeMS predicts ~8% more misses than the best
underlying predictor (coverage 50-56%); in DSS STeMS ~= SMS and TMS is
ineffective; on average STeMS covers 62% and overpredicts 29%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import ExperimentConfig
from repro.sim.driver import SimulationDriver

PREDICTORS = ("tms", "sms", "stems")


@dataclass(frozen=True)
class Fig9Row:
    """One predictor's bar for one workload."""

    workload: str
    predictor: str
    baseline_misses: int
    covered: float
    uncovered: float
    overpredicted: float


def run(config: ExperimentConfig) -> Dict[str, List[Fig9Row]]:
    results: Dict[str, List[Fig9Row]] = {}
    for name in config.workloads:
        trace = config.trace(name)
        baseline = SimulationDriver(config.system, None).run(trace)
        base_misses = max(1, baseline.uncovered)
        rows: List[Fig9Row] = []
        for kind in PREDICTORS:
            prefetcher = config.make_prefetcher(kind, name)
            result = SimulationDriver(config.system, prefetcher).run(trace)
            rows.append(
                Fig9Row(
                    workload=name,
                    predictor=kind,
                    baseline_misses=base_misses,
                    covered=result.covered / base_misses,
                    uncovered=max(0.0, 1.0 - result.covered / base_misses),
                    overpredicted=result.overpredictions / base_misses,
                )
            )
        results[name] = rows
    return results


def format_table(results: Dict[str, List[Fig9Row]]) -> str:
    lines = [
        "== Figure 9: memory streaming comparison "
        "(normalized to baseline off-chip read misses) ==",
        f"{'workload':<9} {'predictor':<9} {'covered':>8} {'uncovered':>10} "
        f"{'overpred':>9}",
    ]
    for name, rows in results.items():
        for r in rows:
            lines.append(
                f"{r.workload:<9} {r.predictor:<9} {r.covered:>8.1%} "
                f"{r.uncovered:>10.1%} {r.overpredicted:>9.1%}"
            )
    per_predictor: Dict[str, List[Fig9Row]] = {}
    for rows in results.values():
        for r in rows:
            per_predictor.setdefault(r.predictor, []).append(r)
    for kind, rows in per_predictor.items():
        n = len(rows)
        lines.append(
            f"{'average':<9} {kind:<9} "
            f"{sum(r.covered for r in rows)/n:>8.1%} "
            f"{sum(r.uncovered for r in rows)/n:>10.1%} "
            f"{sum(r.overpredicted for r in rows)/n:>9.1%}"
        )
    lines.append("paper: STeMS >= max(TMS, SMS) on all commercial workloads; "
                 "avg STeMS coverage 62%, overpredictions 29%")
    return "\n".join(lines)
