"""Figure 9: covered / uncovered / overpredicted misses for TMS, SMS and
STeMS, normalized to the baseline system's off-chip read misses.

Paper headline: in OLTP/web STeMS predicts ~8% more misses than the best
underlying predictor (coverage 50-56%); in DSS STeMS ~= SMS and TMS is
ineffective; on average STeMS covers 62% and overpredicts 29%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine import Engine, JobGraph, ResultMap, SimJob
from repro.experiments import harness
from repro.experiments.config import ExperimentConfig

PREDICTORS = harness.STREAMING_PREDICTORS


@dataclass(frozen=True)
class Fig9Row:
    """One predictor's bar for one workload."""

    workload: str
    predictor: str
    baseline_misses: int
    covered: float
    uncovered: float
    overpredicted: float


Plan = Dict[str, Dict[str, SimJob]]


def declare(config: ExperimentConfig, graph: JobGraph) -> Plan:
    """Per workload: the shared no-prefetcher baseline plus one coverage
    run per memory-streaming predictor."""
    plan: Plan = {}
    for name in config.workloads:
        jobs = {"baseline": graph.add(config.coverage_job(name))}
        for kind in PREDICTORS:
            jobs[kind] = graph.add(config.coverage_job(name, kind))
        plan[name] = jobs
    return plan


def collect(
    config: ExperimentConfig, plan: Plan, results: ResultMap
) -> Dict[str, List[Fig9Row]]:
    out: Dict[str, List[Fig9Row]] = {}
    for name, jobs in plan.items():
        base_misses = max(1, results[jobs["baseline"]].uncovered)
        rows: List[Fig9Row] = []
        for kind in PREDICTORS:
            result = results[jobs[kind]]
            rows.append(
                Fig9Row(
                    workload=name,
                    predictor=kind,
                    baseline_misses=base_misses,
                    covered=result.covered / base_misses,
                    uncovered=max(0.0, 1.0 - result.covered / base_misses),
                    overpredicted=result.overpredictions / base_misses,
                )
            )
        out[name] = rows
    return out


def run(
    config: ExperimentConfig, engine: Optional[Engine] = None
) -> Dict[str, List[Fig9Row]]:
    return harness.execute(declare, collect, config, engine)


def export_rows(results: Dict[str, List[Fig9Row]]) -> List[Fig9Row]:
    return harness.flatten_rows(results)


def format_table(results: Dict[str, List[Fig9Row]]) -> str:
    lines = [
        "== Figure 9: memory streaming comparison "
        "(normalized to baseline off-chip read misses) ==",
        f"{'workload':<9} {'predictor':<9} {'covered':>8} {'uncovered':>10} "
        f"{'overpred':>9}",
    ]
    for name, rows in results.items():
        for r in rows:
            lines.append(
                f"{r.workload:<9} {r.predictor:<9} {r.covered:>8.1%} "
                f"{r.uncovered:>10.1%} {r.overpredicted:>9.1%}"
            )
    per_predictor: Dict[str, List[Fig9Row]] = {}
    for rows in results.values():
        for r in rows:
            per_predictor.setdefault(r.predictor, []).append(r)
    for kind, rows in per_predictor.items():
        n = len(rows)
        lines.append(
            f"{'average':<9} {kind:<9} "
            f"{sum(r.covered for r in rows)/n:>8.1%} "
            f"{sum(r.uncovered for r in rows)/n:>10.1%} "
            f"{sum(r.overpredicted for r in rows)/n:>9.1%}"
        )
    lines.append("paper: STeMS >= max(TMS, SMS) on all commercial workloads; "
                 "avg STeMS coverage 62%, overpredictions 29%")
    return "\n".join(lines)
