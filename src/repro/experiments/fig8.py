"""Figure 8: correlation distance within spatial generations.

Paper headline: >= 86% of spatially predictable accesses recur within a
reordering window of 2, >= 92% within 4 (96% / 92% excluding DSS Q16).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.correlation import CorrelationDistanceResult
from repro.engine import Engine, JobGraph, ResultMap, SimJob
from repro.experiments import harness
from repro.experiments.config import ExperimentConfig

Plan = Dict[str, SimJob]


def declare(config: ExperimentConfig, graph: JobGraph) -> Plan:
    """One correlation-distance analysis job per workload."""
    return {
        name: graph.add(config.correlation_job(name)) for name in config.workloads
    }


def collect(
    config: ExperimentConfig, plan: Plan, results: ResultMap
) -> Dict[str, CorrelationDistanceResult]:
    return {name: results[job] for name, job in plan.items()}


def run(
    config: ExperimentConfig, engine: Optional[Engine] = None
) -> Dict[str, CorrelationDistanceResult]:
    return harness.execute(declare, collect, config, engine)


def export_rows(results: Dict[str, CorrelationDistanceResult]) -> List[dict]:
    return [
        {
            "workload": r.workload,
            "at_plus_1": r.fraction_at(1),
            "within_2": r.cumulative_within(2),
            "within_4": r.cumulative_within(4),
            "within_6": r.cumulative_within(6),
            "matched_fraction": r.matched_fraction,
            "total_pairs": r.total_pairs,
        }
        for r in results.values()
    ]


def format_table(results: Dict[str, CorrelationDistanceResult]) -> str:
    lines = [
        "== Figure 8: correlation distance within spatial generations ==",
        f"{'workload':<9} {'@+1':>7} {'+-2':>7} {'+-4':>7} {'+-6':>7} "
        f"{'matched':>8} {'pairs':>8}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:<9} {r.fraction_at(1):>7.1%} "
            f"{r.cumulative_within(2):>7.1%} {r.cumulative_within(4):>7.1%} "
            f"{r.cumulative_within(6):>7.1%} {r.matched_fraction:>8.1%} "
            f"{r.total_pairs:>8}"
        )
    lines.append("paper: >=86% within +-2, >=92% within +-4")
    return "\n".join(lines)
