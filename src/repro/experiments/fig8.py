"""Figure 8: correlation distance within spatial generations.

Paper headline: >= 86% of spatially predictable accesses recur within a
reordering window of 2, >= 92% within 4 (96% / 92% excluding DSS Q16).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.correlation import (
    CorrelationDistanceResult,
    correlation_distance_analysis,
)
from repro.experiments.config import ExperimentConfig


def run(config: ExperimentConfig) -> Dict[str, CorrelationDistanceResult]:
    results: Dict[str, CorrelationDistanceResult] = {}
    for name in config.workloads:
        results[name] = correlation_distance_analysis(
            config.trace(name), config.system
        )
    return results


def format_table(results: Dict[str, CorrelationDistanceResult]) -> str:
    lines = [
        "== Figure 8: correlation distance within spatial generations ==",
        f"{'workload':<9} {'@+1':>7} {'+-2':>7} {'+-4':>7} {'+-6':>7} "
        f"{'matched':>8} {'pairs':>8}",
    ]
    for name, r in results.items():
        lines.append(
            f"{name:<9} {r.fraction_at(1):>7.1%} "
            f"{r.cumulative_within(2):>7.1%} {r.cumulative_within(4):>7.1%} "
            f"{r.cumulative_within(6):>7.1%} {r.matched_fraction:>8.1%} "
            f"{r.total_pairs:>8}"
        )
    lines.append("paper: >=86% within +-2, >=92% within +-4")
    return "\n".join(lines)
