"""On-disk trace store: record a workload trace once, replay it anywhere.

The store is the shared *trace plane* between generation and execution.
Each entry holds one complete generated trace, keyed by the same
``(workload, length, seed)`` trace key that :class:`~repro.engine.job.SimJob`
exposes — any two jobs with equal trace keys walk bit-identical access
sequences, so one recorded file can feed every configuration sweep over
that trace. Entries live in two-hex-character shard subdirectories
(``ab/<key-hash>.trace``) so million-entry stores never degenerate into
one flat directory, and every write goes through a temporary sibling and
an atomic ``os.replace`` — concurrent recorders of the same key are
idempotent (identical content, last rename wins) and readers never see a
partial file.

Three ways to obtain a replayable :class:`~repro.trace.container.TraceSource`:

* :meth:`TraceStore.open_source` — replay an existing entry (raises on a
  missing/corrupt file);
* :meth:`TraceStore.record` — generate the full trace into the store
  without feeding any consumer (the engine's parallel pre-record step);
* :meth:`TraceStore.source` — replay when recorded, otherwise *record
  during the walk*: the first full iteration both feeds its consumers
  and publishes the entry, so the generation pass is never wasted.

A corrupt or truncated entry is treated as missing (and overwritten by
the next recording), never replayed: the codec's structural checks and
payload CRC guard the boundary.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.trace.container import TraceSource
from repro.tracestore.codec import (
    FOOTER_SIZE,
    RECORD_SIZE,
    TraceEntryInfo,
    TraceFormatError,
    encode_into,
    read_access_chunks,
    read_accesses,
    read_entry_info,
    read_header,
)
from repro.workloads.registry import stream_workload

#: trace keys are (workload, length, seed) — see SimJob.trace_key
TraceKey = Tuple[str, int, int]


def _fault_plane():
    """The fault helpers, imported lazily (cold paths only) to keep
    ``repro.tracestore`` importable without dragging in the engine
    package first (``repro.engine`` imports this module at top level)."""
    from repro.engine.faultinject import maybe_corrupt_trace
    from repro.engine.faults import quarantine_file

    return maybe_corrupt_trace, quarantine_file

#: bumped when key derivation or the stored header schema changes
#: (2: codec v2 — per-chunk byte-offset index in the footer framing)
STORE_VERSION = 2


def trace_key_hash(workload: str, length: int, seed: int) -> str:
    """Stable content hash naming the store entry for one trace key.

    Mixes in the store/codec version so a format bump automatically
    invalidates (ignores) entries written by older code.
    """
    payload = json.dumps(
        {
            "workload": workload,
            "length": length,
            "seed": seed,
            "store": STORE_VERSION,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class TraceStoreStats:
    """Replay/recording accounting for one store handle.

    ``quarantined`` counts damaged entries moved aside (structural
    rejection at open, or a mid-walk CRC failure the recovery path
    reported); ``replay_fallbacks`` counts replays that degraded to a
    fresh generation pass after quarantining their entry.
    """

    hits: int = 0
    misses: int = 0
    generated: int = 0
    bytes_replayed: int = 0
    quarantined: int = 0
    replay_fallbacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "generated": self.generated,
            "bytes_replayed": self.bytes_replayed,
            "quarantined": self.quarantined,
            "replay_fallbacks": self.replay_fallbacks,
        }

    def absorb(self, delta: Dict[str, int]) -> None:
        """Fold another handle's counters (e.g. a pool worker's) in."""
        self.hits += delta.get("hits", 0)
        self.misses += delta.get("misses", 0)
        self.generated += delta.get("generated", 0)
        self.bytes_replayed += delta.get("bytes_replayed", 0)
        self.quarantined += delta.get("quarantined", 0)
        self.replay_fallbacks += delta.get("replay_fallbacks", 0)


class TraceStore:
    """Sharded record-once/replay-many trace store under ``directory``."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = TraceStoreStats()

    # -- layout ------------------------------------------------------------

    def path_for(self, key: TraceKey) -> Path:
        digest = trace_key_hash(*key)
        return self.directory / digest[:2] / f"{digest}.trace"

    def has(self, key: TraceKey) -> bool:
        """True when ``key`` has a structurally valid entry on disk.

        A structurally damaged entry (bad magic, truncation, missing
        footer) is quarantined on sight — moved into ``quarantine/``
        with a reason file — so the next recording starts clean and the
        evidence survives for debugging.
        """
        path = self.path_for(key)
        if not path.exists():
            return False
        try:
            read_header(path)
        except TraceFormatError as error:
            self.quarantine_entry(key, f"structural damage: {error}")
            return False
        return True

    def verify(self, key: TraceKey) -> bool:
        """True when ``key``'s entry replays cleanly end-to-end.

        A full integrity pass: structural checks, per-record decode
        (including access validation), and the payload CRC. Used by the
        recovery paths to decide whether a failed replay walk died of a
        damaged entry (→ quarantine and regenerate) or a genuine
        consumer error (→ the job itself is at fault).
        """
        path = self.path_for(key)
        if not path.exists():
            return False
        try:
            for _ in read_accesses(path):
                pass
        except Exception:
            return False
        return True

    def quarantine_if_damaged(self, key: TraceKey, reason: str) -> bool:
        """Quarantine ``key``'s entry iff it exists and fails :meth:`verify`.

        Returns:
            True when a damaged entry was present (and is now moved
            aside, so the next recording starts clean); False when the
            entry is missing or verifies clean — corruption can then be
            ruled out as the cause of whatever failure prompted the
            check.
        """
        path = self.path_for(key)
        if not path.exists() or self.verify(key):
            return False
        self.quarantine_entry(key, reason)
        return True

    def was_quarantined(self, key: TraceKey) -> bool:
        """True when ``key`` has ever had an entry quarantined.

        Evidence check for racing recoverers: a walker that read a
        damaged entry may find it already quarantined — and freshly
        republished, clean — by the racer that noticed first. The
        quarantine directory keeps the damaged file under the key's
        digest, so its presence licenses retrying a failed walk whose
        entry now verifies.
        """
        from repro.engine.faults import QUARANTINE_DIR

        digest = trace_key_hash(*key)
        quarantine = self.directory / QUARANTINE_DIR
        if not quarantine.is_dir():
            return False
        return any(quarantine.glob(f"{digest}.trace*"))

    def quarantine_entry(self, key: TraceKey, reason: str) -> Optional[Path]:
        """Move ``key``'s damaged entry aside instead of deleting it.

        Returns:
            The quarantined file's path under ``quarantine/``, or None
            when the entry no longer exists (another recoverer won the
            race) — in which case nothing is counted.
        """
        _, quarantine = _fault_plane()
        moved = quarantine(self.path_for(key), self.directory, reason)
        if moved is not None:
            self.stats.quarantined += 1
        return moved

    def catalog(self) -> List[Dict[str, object]]:
        """Headers of every valid entry (provenance listing, tests)."""
        entries = []
        for path in sorted(self.directory.glob("??/*.trace")):
            try:
                entries.append(read_header(path))
            except TraceFormatError:
                continue
        return entries

    # -- structural metadata -----------------------------------------------

    def open_entry(self, key: TraceKey) -> TraceEntryInfo:
        """Chunk-index metadata for ``key``'s entry — no payload decode.

        One validation pass returning the header, record count, payload
        geometry and per-chunk record spans/CRCs (see
        :class:`~repro.tracestore.codec.TraceEntryInfo`). This is how
        chunk-granular planners — windowed replay, the broadcast
        reader — ask "what shape is this trace?" without re-reading the
        footer per question.

        Raises:
            TraceFormatError: when the entry is missing or structurally
                damaged (``has()`` first to treat those as misses).
        """
        return read_entry_info(self.path_for(key))

    # -- recording ---------------------------------------------------------

    def record(self, key: TraceKey, on_chunk=None) -> Path:
        """Generate ``key``'s full trace and publish it atomically.

        A no-op (and a cheap one) when a valid entry already exists —
        ``on_chunk`` is **not** called for an already-recorded key.
        When given, ``on_chunk(first_record, chunk_bytes, crc)`` fires
        for every flushed chunk during the recording walk (the
        broadcast plane's cold-key tee).

        Returns:
            The entry's path.
        """
        path = self.path_for(key)
        if self.has(key):
            return path
        source = _generation_source(key)
        self._write(path, _entry_header(key, source), iter(source), on_chunk)
        self.stats.misses += 1
        self.stats.generated += 1
        _fault_plane()[0](path)
        return path

    def _write(self, path: Path, header: Dict[str, object], accesses,
               on_chunk=None) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                for _ in encode_into(handle, header, accesses, on_chunk):
                    pass
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        os.replace(tmp, path)

    # -- replay ------------------------------------------------------------

    def open_source(self, key: TraceKey, start_record: int = 0) -> TraceSource:
        """Replay an existing entry as a re-iterable :class:`TraceSource`.

        The source carries a native chunk factory: chunk-granular
        consumers (the vector kernel) decode whole stored chunks
        columnar via :meth:`TraceSource.iter_chunks`, while per-record
        consumers iterate as before. With ``start_record > 0`` the
        replay seeks via the entry's chunk index and skips the warm-up
        prefix (windowed replay, validated by per-chunk CRCs).

        Raises:
            TraceFormatError: when the entry is missing, truncated or
                corrupt (``has()`` first to treat those as misses).
        """
        path = self.path_for(key)
        header = read_header(path)
        self.stats.hits += 1
        return TraceSource(
            name=str(header.get("name", key[0])),
            factory=lambda: self._replay(path, start_record),
            category=str(header.get("category", "synthetic")),
            metadata=dict(header.get("metadata", {})),
            length_hint=key[1],
            chunk_factory=lambda: self._replay_chunks(path, start_record),
        )

    def _replay(self, path: Path, start_record: int = 0) -> Iterator:
        bytes_per = RECORD_SIZE
        count = 0
        for access in read_accesses(path, start_record):
            count += 1
            yield access
        self.stats.bytes_replayed += count * bytes_per + FOOTER_SIZE

    def _replay_chunks(self, path: Path, start_record: int = 0) -> Iterator:
        """Chunk-granular replay with the same byte accounting as
        :meth:`_replay` (one stored record costs one replayed record,
        whichever decode path delivered it)."""
        count = 0
        for chunk in read_access_chunks(path, start_record):
            count += len(chunk)
            yield chunk
        self.stats.bytes_replayed += count * RECORD_SIZE + FOOTER_SIZE

    def source(self, key: TraceKey) -> TraceSource:
        """Replay ``key`` if recorded; otherwise record it *during* the
        first full walk (the generation pass also publishes the entry).

        The presence check re-runs per iteration pass, so a source built
        before the entry existed switches to replay once any walker —
        this process or another — has published it.
        """
        if self.has(key):
            return self.open_source(key)
        template = _generation_source(key)

        def factory():
            if self.has(key):
                self.stats.hits += 1
                return self._replay(self.path_for(key))
            return self._record_while_walking(key)

        def chunk_factory():
            if self.has(key):
                self.stats.hits += 1
                return self._replay_chunks(self.path_for(key))
            # generation pass: batch the record-during-walk tee so the
            # recording side effect still happens exactly once, in order
            from repro.kernels.prepass import chunk_accesses

            return chunk_accesses(self._record_while_walking(key))

        return TraceSource(
            name=template.name,
            factory=factory,
            category=template.category,
            metadata=dict(template.metadata),
            length_hint=key[1],
            chunk_factory=chunk_factory,
        )

    def _record_while_walking(self, key: TraceKey) -> Iterator:
        """Generate, yielding each access while teeing it into the store."""
        self.stats.misses += 1
        self.stats.generated += 1
        source = _generation_source(key)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            yield from _tee_write(tmp, _entry_header(key, source), source)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        os.replace(tmp, path)
        _fault_plane()[0](path)


def _tee_write(tmp: Path, header: Dict[str, object], source) -> Iterator:
    """Yield ``source``'s accesses while encoding them into ``tmp``.

    A thin wrapper over the codec's shared encode loop: each access is
    buffered for the file and forwarded to the live consumers in the
    same single-pass step.
    """
    with tmp.open("wb") as handle:
        yield from encode_into(handle, header, source)


def _generation_source(key: TraceKey) -> TraceSource:
    workload, length, seed = key
    return stream_workload(workload, length, seed)


def _entry_header(key: TraceKey, source: TraceSource) -> Dict[str, object]:
    workload, length, seed = key
    return {
        "store": STORE_VERSION,
        "workload": workload,
        "length": length,
        "seed": seed,
        "name": source.name,
        "category": source.category,
        "metadata": dict(source.metadata),
    }


def default_trace_store_dir() -> Optional[str]:
    """The ``REPRO_TRACE_STORE`` environment default, if set."""
    value = os.environ.get("REPRO_TRACE_STORE", "").strip()
    return value or None
