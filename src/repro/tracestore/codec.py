"""Compact binary trace codec: the record format of the trace plane.

A trace file is append-only and self-describing::

    magic "RTRC" | u16 version | u32 header-length | header JSON (utf-8)
    record * N                     (fixed 29-byte records, see RECORD)
    index: magic "TIDX" | u32 entries
           | entry * E             (u64 first record index,
                                    u64 byte offset into the payload,
                                    u32 crc32 of that chunk's bytes)
    footer: magic "TEND" | u64 record count | u32 crc32(records)
            | u32 index-section bytes

The header JSON carries the trace's identity and provenance (workload
name, category, requested length, seed, generator metadata). Records
hold every :class:`~repro.trace.events.MemoryAccess` field except
``index``, which is implicit — records are stored in trace order, so
record *i* decodes to the access with ``index == i``. The footer's
record count and payload CRC are what let a reader reject truncated or
corrupted files instead of replaying garbage into a simulation.

The index section (codec version 2) maps each aligned
:data:`CHUNK_RECORDS`-record chunk to its byte offset and its own CRC.
It is what makes the chunk the replay unit: the vector kernel decodes
whole chunks at once (:func:`read_access_chunks`), and a windowed
replay (``start_record=N``) seeks straight to the chunk containing
record *N* and verifies only the chunks it actually reads — warm-up
skipping without a front-to-back scan. The rolling whole-payload CRC is
still verified on full replays, so the two read paths reject the same
damage.

Writers never expose a partial file: they stream records to a
temporary sibling and publish it with an atomic ``os.replace`` only
after the footer is written (see :mod:`repro.tracestore.store`).
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Tuple, Union

from repro.kernels.decode import (  # noqa: F401  (re-exported wire format)
    RECORD,
    RECORD_SIZE,
    decode_chunk,
    decode_record,
    encode_access,
)
from repro.kernels.prepass import AccessChunk
from repro.trace.events import MemoryAccess

MAGIC = b"RTRC"
FOOTER_MAGIC = b"TEND"
INDEX_MAGIC = b"TIDX"
#: bumped when the record layout changes incompatibly
#: (2: per-chunk byte-offset/CRC index section before the footer)
CODEC_VERSION = 2

_PREAMBLE = struct.Struct("<4sHI")  # magic, version, header length
#: magic, record count, payload crc32, index-section length
_FOOTER = struct.Struct("<4sQII")
FOOTER_SIZE = _FOOTER.size

_INDEX_HEADER = struct.Struct("<4sI")  # magic, entry count
_INDEX_ENTRY = struct.Struct("<QQI")  # first record index, byte offset, crc32

#: records per aligned chunk: the write/read syscall granularity, the
#: index granularity, and the vector kernel's decode unit
CHUNK_RECORDS = 4096


class TraceFormatError(ValueError):
    """A trace file is truncated, corrupt, or from an unknown format."""


class ChunkIndexEntry(NamedTuple):
    """One aligned chunk's position in the record payload."""

    #: trace index of the chunk's first record
    record_index: int
    #: byte offset of the chunk relative to the payload start
    byte_offset: int
    #: crc32 of exactly this chunk's bytes (windowed-replay validation)
    crc: int


def encode_into(
    handle, header: Dict[str, Any], accesses: Iterable[MemoryAccess],
    on_chunk=None,
) -> Iterator[MemoryAccess]:
    """Encode ``accesses`` into an open binary ``handle``, re-yielding
    each access after it is buffered.

    This is the single encode loop behind both :func:`write_trace`
    (which drains it) and the store's record-during-walk path (which
    forwards the yields to live consumers, so one generation pass both
    feeds a fan-out group and publishes the file). Each flushed chunk
    contributes one index entry; the index and footer are written
    when — and only when — the input is exhausted, so an abandoned walk
    leaves an unterminated file that readers reject.

    ``on_chunk(first_record_index, chunk_bytes, crc)``, when given, is
    called for every flushed chunk with exactly the bytes and CRC that
    went into the file — the broadcast plane taps this to stream a
    cold key's chunks to shared-memory consumers *while* the file is
    being recorded, so a cold sweep still costs one walk.

    Raises:
        ValueError: if ``accesses`` yields non-consecutive indices.
    """
    header_blob = json.dumps(header, sort_keys=True).encode()
    crc = 0
    count = 0
    offset = 0
    index_entries: List[bytes] = []
    pack = RECORD.pack
    handle.write(_PREAMBLE.pack(MAGIC, CODEC_VERSION, len(header_blob)))
    handle.write(header_blob)
    chunk = bytearray()
    chunk_start = 0

    def _flush() -> None:
        nonlocal crc, offset, chunk_start
        chunk_crc = zlib.crc32(chunk)
        index_entries.append(
            _INDEX_ENTRY.pack(chunk_start, offset, chunk_crc)
        )
        crc = zlib.crc32(chunk, crc)
        offset += len(chunk)
        handle.write(chunk)
        if on_chunk is not None:
            on_chunk(chunk_start, bytes(chunk), chunk_crc)
        chunk_start = count
        chunk.clear()

    for access in accesses:
        if access.index != count:
            raise ValueError(
                f"access index {access.index} does not continue the "
                f"stream (expected {count})"
            )
        depends = -1 if access.depends_on is None else access.depends_on
        chunk += pack(access.pc, access.address, depends,
                      access.instr_gap, 1 if access.is_write else 0)
        count += 1
        if len(chunk) >= CHUNK_RECORDS * RECORD_SIZE:
            _flush()
        yield access
    if chunk:
        _flush()
    index_blob = _INDEX_HEADER.pack(INDEX_MAGIC, len(index_entries))
    index_blob += b"".join(index_entries)
    handle.write(index_blob)
    handle.write(_FOOTER.pack(FOOTER_MAGIC, count, crc, len(index_blob)))


def write_trace(
    path: Union[str, Path],
    header: Dict[str, Any],
    accesses: Iterable[MemoryAccess],
) -> Tuple[int, int]:
    """Encode ``accesses`` into ``path`` (header, records, index, footer).

    Args:
        path: destination file (the caller owns atomicity — pass a
            temporary path and ``os.replace`` it after this returns).
        header: JSON-able identity/provenance metadata.
        accesses: trace records in order; indices must be consecutive
            from 0.

    Returns:
        ``(record_count, file_bytes)`` for accounting.
    """
    path = Path(path)
    with path.open("wb") as handle:
        count = sum(1 for _ in encode_into(handle, header, accesses))
        size = handle.tell()
    return count, size


class _Layout(NamedTuple):
    """Validated byte layout of one trace file."""

    header: Dict[str, Any]
    payload_start: int
    payload_bytes: int
    count: int
    crc: int
    index_start: int
    index_bytes: int


def _read_layout(path: Path) -> _Layout:
    """Validate ``path``'s framing and return its byte layout.

    The cheap structural checks: magic, codec version, header
    integrity, footer magic, index magic/arithmetic, and that the
    payload size matches the footer's record count. Record contents
    (the payload CRC) are verified during replay.
    """
    try:
        size = path.stat().st_size
        with path.open("rb") as handle:
            preamble = handle.read(_PREAMBLE.size)
            if len(preamble) != _PREAMBLE.size:
                raise TraceFormatError(f"{path}: truncated preamble")
            magic, version, header_len = _PREAMBLE.unpack(preamble)
            if magic != MAGIC:
                raise TraceFormatError(f"{path}: not a trace file")
            if version != CODEC_VERSION:
                raise TraceFormatError(
                    f"{path}: codec version {version} (expected {CODEC_VERSION})"
                )
            header_blob = handle.read(header_len)
            if len(header_blob) != header_len:
                raise TraceFormatError(f"{path}: truncated header")
            try:
                header = json.loads(header_blob)
            except ValueError as error:
                raise TraceFormatError(f"{path}: bad header JSON") from error
            if size < _PREAMBLE.size + header_len + FOOTER_SIZE:
                raise TraceFormatError(f"{path}: missing footer (truncated?)")
            handle.seek(size - FOOTER_SIZE)
            footer_magic, count, crc, index_bytes = _FOOTER.unpack(
                handle.read(FOOTER_SIZE)
            )
            if footer_magic != FOOTER_MAGIC:
                raise TraceFormatError(f"{path}: missing footer (truncated?)")
            payload_start = _PREAMBLE.size + header_len
            index_start = size - FOOTER_SIZE - index_bytes
            payload = index_start - payload_start
            if payload < 0 or payload % RECORD_SIZE:
                raise TraceFormatError(f"{path}: truncated record payload")
            if count * RECORD_SIZE != payload:
                raise TraceFormatError(
                    f"{path}: footer claims {count} records, "
                    f"payload holds {payload // RECORD_SIZE}"
                )
            expected_entries = -(-count // CHUNK_RECORDS)  # ceil
            if index_bytes != (
                _INDEX_HEADER.size + expected_entries * _INDEX_ENTRY.size
            ):
                raise TraceFormatError(f"{path}: malformed chunk index")
            handle.seek(index_start)
            index_preamble = handle.read(_INDEX_HEADER.size)
            if len(index_preamble) != _INDEX_HEADER.size:
                raise TraceFormatError(f"{path}: truncated chunk index")
            index_magic, entries = _INDEX_HEADER.unpack(index_preamble)
            if index_magic != INDEX_MAGIC or entries != expected_entries:
                raise TraceFormatError(f"{path}: malformed chunk index")
    except OSError as error:
        raise TraceFormatError(f"{path}: unreadable ({error})") from error
    return _Layout(
        header=header,
        payload_start=payload_start,
        payload_bytes=payload,
        count=count,
        crc=crc,
        index_start=index_start,
        index_bytes=index_bytes,
    )


def read_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Validate ``path``'s framing and return its header JSON.

    Raises:
        TraceFormatError: on any structural mismatch.
    """
    return _read_layout(Path(path)).header


def _read_index_entries(path: Path, layout: _Layout) -> List[ChunkIndexEntry]:
    """Decode the index section of an already-validated ``layout``."""
    entries: List[ChunkIndexEntry] = []
    with path.open("rb") as handle:
        handle.seek(layout.index_start + _INDEX_HEADER.size)
        blob = handle.read(layout.index_bytes - _INDEX_HEADER.size)
    expected_start = 0
    expected_offset = 0
    for record_index, byte_offset, crc in _INDEX_ENTRY.iter_unpack(blob):
        if record_index != expected_start or byte_offset != expected_offset:
            raise TraceFormatError(f"{path}: inconsistent chunk index")
        entries.append(ChunkIndexEntry(record_index, byte_offset, crc))
        expected_start += CHUNK_RECORDS
        expected_offset += CHUNK_RECORDS * RECORD_SIZE
    return entries


class TraceEntryInfo(NamedTuple):
    """Structural metadata of one trace file — no payload decode.

    Everything a reader needs to plan chunk-granular work (broadcast
    slot sizing, windowed seeks, span accounting) from one validation
    pass: the header, the record count, the payload geometry, and the
    per-chunk index. Produced by :func:`read_entry_info`; exposed as
    :meth:`repro.tracestore.TraceStore.open_entry`.
    """

    path: Path
    header: Dict[str, Any]
    record_count: int
    payload_start: int
    payload_bytes: int
    payload_crc: int
    chunks: List[ChunkIndexEntry]

    @property
    def chunk_count(self) -> int:
        return len(self.chunks)

    def record_spans(self) -> List[Tuple[int, int]]:
        """Half-open ``(first_record, end_record)`` span per chunk."""
        return [
            (entry.record_index,
             min(entry.record_index + CHUNK_RECORDS, self.record_count))
            for entry in self.chunks
        ]

    def chunk_bytes(self, position: int) -> int:
        """Byte length of chunk ``position`` (the tail may be short)."""
        entry = self.chunks[position]
        return min(CHUNK_RECORDS * RECORD_SIZE,
                   self.payload_bytes - entry.byte_offset)


def read_entry_info(path: Union[str, Path]) -> TraceEntryInfo:
    """Validate ``path`` once and return its structural metadata.

    One layout validation + one index read; payload bytes are never
    touched. This is the single entry point behind every "what shape is
    this trace?" question — windowed replay, the broadcast reader, and
    :meth:`TraceStore.open_entry` all plan from it instead of re-reading
    the footer per question.

    Raises:
        TraceFormatError: on structural damage or index inconsistency.
    """
    path = Path(path)
    layout = _read_layout(path)
    return TraceEntryInfo(
        path=path,
        header=layout.header,
        record_count=layout.count,
        payload_start=layout.payload_start,
        payload_bytes=layout.payload_bytes,
        payload_crc=layout.crc,
        chunks=_read_index_entries(path, layout),
    )


def read_chunk_index(path: Union[str, Path]) -> List[ChunkIndexEntry]:
    """The per-chunk byte-offset index from ``path``'s index section.

    One entry per aligned :data:`CHUNK_RECORDS`-record chunk, in trace
    order. Offsets are relative to the payload start; each entry's CRC
    covers exactly its chunk's bytes, which is what lets a windowed
    replay validate only the region it reads.

    Raises:
        TraceFormatError: on structural damage or index inconsistency.
    """
    path = Path(path)
    return _read_index_entries(path, _read_layout(path))


def _read_exact(handle, want: int, path: Path) -> bytes:
    chunk = handle.read(want)
    while 0 < len(chunk) < want:  # top up a short read
        more = handle.read(want - len(chunk))
        if not more:
            break
        chunk += more
    if len(chunk) != want:
        raise TraceFormatError(f"{path}: payload ended early")
    return chunk


def _iter_chunk_bytes(path: Path) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(first_record_index, chunk_bytes)`` for the full payload.

    Verifies the rolling payload CRC and the footer count as it goes —
    the same guarantees as a record-at-a-time replay, delivered at
    chunk granularity.
    """
    layout = _read_layout(path)
    with path.open("rb") as handle:
        handle.seek(layout.payload_start)
        remaining = layout.payload_bytes
        chunk_bytes = CHUNK_RECORDS * RECORD_SIZE
        crc = 0
        index = 0
        while remaining:
            want = min(chunk_bytes, remaining)
            chunk = _read_exact(handle, want, path)
            remaining -= want
            crc = zlib.crc32(chunk, crc)
            yield index, chunk
            index += want // RECORD_SIZE
        if index != layout.count:
            raise TraceFormatError(
                f"{path}: replayed {index} records, footer claims "
                f"{layout.count}"
            )
        if crc != layout.crc:
            raise TraceFormatError(f"{path}: payload CRC mismatch")


def _iter_chunk_bytes_from(
    path: Path, start_record: int
) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(first_record_index, chunk_bytes)`` from the chunk
    containing ``start_record`` onward.

    Uses the index section to seek straight to the right chunk and
    validates each chunk it reads against the indexed per-chunk CRC
    (the rolling whole-payload CRC cannot be checked without the
    skipped prefix — the per-chunk CRCs close exactly that gap).
    """
    if start_record < 0:
        raise ValueError(f"start_record must be >= 0, got {start_record}")
    info = read_entry_info(path)
    if start_record >= info.record_count:
        return
    first = start_record // CHUNK_RECORDS
    with path.open("rb") as handle:
        for position in range(first, info.chunk_count):
            entry = info.chunks[position]
            handle.seek(info.payload_start + entry.byte_offset)
            want = info.chunk_bytes(position)
            chunk = _read_exact(handle, want, path)
            if zlib.crc32(chunk) != entry.crc:
                raise TraceFormatError(
                    f"{path}: chunk CRC mismatch at record "
                    f"{entry.record_index}"
                )
            yield entry.record_index, chunk


#: chunk decode lives in :mod:`repro.kernels.decode` so the broadcast
#: plane shares it byte-for-byte; kept under the old private name for
#: in-package callers
_decode_chunk = decode_chunk


def read_access_chunks(
    path: Union[str, Path], start_record: int = 0
) -> Iterator[AccessChunk]:
    """Replay ``path`` as aligned :class:`AccessChunk` runs.

    The chunk-granular counterpart of :func:`read_accesses`: the
    decoded access objects are bit-identical to the record-at-a-time
    replay, batched per stored chunk with the address column attached
    for the vectorized pre-pass. A full replay (``start_record=0``)
    verifies the rolling payload CRC; a windowed replay seeks via the
    chunk index, verifies each read chunk's own CRC, and trims the
    leading chunk to start exactly at ``start_record``.

    Raises:
        TraceFormatError: on structural damage or a CRC mismatch.
    """
    path = Path(path)
    if start_record:
        raw = _iter_chunk_bytes_from(path, start_record)
    else:
        raw = _iter_chunk_bytes(path)
    for first_index, chunk in raw:
        decoded = _decode_chunk(first_index, chunk)
        if start_record > first_index:
            trim = start_record - first_index
            decoded = AccessChunk(
                decoded.accesses[trim:],
                start_index=start_record,
                addresses=(
                    decoded._addresses[trim:]
                    if decoded._addresses is not None else None
                ),
            )
        if decoded.accesses:
            yield decoded


def read_accesses(
    path: Union[str, Path], start_record: int = 0
) -> Iterator[MemoryAccess]:
    """Replay ``path``'s records as :class:`MemoryAccess` objects.

    Streams the payload in chunks (O(1) memory in trace length) and
    verifies the footer CRC as it goes; a corrupted payload raises
    :class:`TraceFormatError` at the end of the walk, before a consumer
    can treat the replay as complete. With ``start_record > 0`` the
    walk seeks via the chunk index and verifies per-chunk CRCs instead
    (see :func:`read_access_chunks`).

    Raises:
        TraceFormatError: on structural damage or a CRC mismatch.
    """
    path = Path(path)
    if start_record:
        for chunk in read_access_chunks(path, start_record):
            yield from chunk.accesses
        return
    for first_index, chunk in _iter_chunk_bytes(path):
        index = first_index
        for record in RECORD.iter_unpack(chunk):
            pc, address, depends, instr_gap, is_write = record
            yield MemoryAccess(
                index=index,
                pc=pc,
                address=address,
                is_write=bool(is_write),
                depends_on=None if depends < 0 else depends,
                instr_gap=instr_gap,
            )
            index += 1
