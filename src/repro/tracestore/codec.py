"""Compact binary trace codec: the record format of the trace plane.

A trace file is append-only and self-describing::

    magic "RTRC" | u16 version | u32 header-length | header JSON (utf-8)
    record * N                     (fixed 29-byte records, see RECORD)
    footer: magic "TEND" | u64 record count | u32 crc32(records)

The header JSON carries the trace's identity and provenance (workload
name, category, requested length, seed, generator metadata). Records
hold every :class:`~repro.trace.events.MemoryAccess` field except
``index``, which is implicit — records are stored in trace order, so
record *i* decodes to the access with ``index == i``. The footer's
record count and payload CRC are what let a reader reject truncated or
corrupted files instead of replaying garbage into a simulation.

Writers never expose a partial file: they stream records to a
temporary sibling and publish it with an atomic ``os.replace`` only
after the footer is written (see :mod:`repro.tracestore.store`).
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Tuple, Union

from repro.trace.events import MemoryAccess

MAGIC = b"RTRC"
FOOTER_MAGIC = b"TEND"
#: bumped when the record layout changes incompatibly
CODEC_VERSION = 1

#: one access: pc u64, address u64, depends_on i64 (-1 = None),
#: instr_gap u32, is_write u8
RECORD = struct.Struct("<QQqIB")
RECORD_SIZE = RECORD.size

_PREAMBLE = struct.Struct("<4sHI")  # magic, version, header length
_FOOTER = struct.Struct("<4sQI")  # magic, record count, payload crc32
FOOTER_SIZE = _FOOTER.size

#: records buffered per write / read syscall
_CHUNK_RECORDS = 4096


class TraceFormatError(ValueError):
    """A trace file is truncated, corrupt, or from an unknown format."""


def encode_access(access: MemoryAccess) -> bytes:
    """One access as a fixed-size record (``index`` stays implicit)."""
    depends = -1 if access.depends_on is None else access.depends_on
    return RECORD.pack(
        access.pc, access.address, depends, access.instr_gap,
        1 if access.is_write else 0,
    )


def decode_record(index: int, record: Tuple[int, int, int, int, int]) -> MemoryAccess:
    """Rebuild the access at trace position ``index`` from its record."""
    pc, address, depends, instr_gap, is_write = record
    return MemoryAccess(
        index=index,
        pc=pc,
        address=address,
        is_write=bool(is_write),
        depends_on=None if depends < 0 else depends,
        instr_gap=instr_gap,
    )


def encode_into(
    handle, header: Dict[str, Any], accesses: Iterable[MemoryAccess]
) -> Iterator[MemoryAccess]:
    """Encode ``accesses`` into an open binary ``handle``, re-yielding
    each access after it is buffered.

    This is the single encode loop behind both :func:`write_trace`
    (which drains it) and the store's record-during-walk path (which
    forwards the yields to live consumers, so one generation pass both
    feeds a fan-out group and publishes the file). The footer is written
    when — and only when — the input is exhausted, so an abandoned walk
    leaves an unterminated file that readers reject.

    Raises:
        ValueError: if ``accesses`` yields non-consecutive indices.
    """
    header_blob = json.dumps(header, sort_keys=True).encode()
    crc = 0
    count = 0
    pack = RECORD.pack
    handle.write(_PREAMBLE.pack(MAGIC, CODEC_VERSION, len(header_blob)))
    handle.write(header_blob)
    chunk = bytearray()
    for access in accesses:
        if access.index != count:
            raise ValueError(
                f"access index {access.index} does not continue the "
                f"stream (expected {count})"
            )
        depends = -1 if access.depends_on is None else access.depends_on
        chunk += pack(access.pc, access.address, depends,
                      access.instr_gap, 1 if access.is_write else 0)
        count += 1
        if len(chunk) >= _CHUNK_RECORDS * RECORD_SIZE:
            crc = zlib.crc32(chunk, crc)
            handle.write(chunk)
            chunk.clear()
        yield access
    if chunk:
        crc = zlib.crc32(chunk, crc)
        handle.write(chunk)
    handle.write(_FOOTER.pack(FOOTER_MAGIC, count, crc))


def write_trace(
    path: Union[str, Path],
    header: Dict[str, Any],
    accesses: Iterable[MemoryAccess],
) -> Tuple[int, int]:
    """Encode ``accesses`` into ``path`` (header, records, footer).

    Args:
        path: destination file (the caller owns atomicity — pass a
            temporary path and ``os.replace`` it after this returns).
        header: JSON-able identity/provenance metadata.
        accesses: trace records in order; indices must be consecutive
            from 0.

    Returns:
        ``(record_count, file_bytes)`` for accounting.
    """
    path = Path(path)
    with path.open("wb") as handle:
        count = sum(1 for _ in encode_into(handle, header, accesses))
        size = handle.tell()
    return count, size


def read_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Validate ``path``'s framing and return its header JSON.

    Checks magic, codec version, header integrity, footer magic, and
    that the payload size matches the footer's record count — the cheap
    structural checks that don't require reading the records themselves
    (the payload CRC is verified during replay).

    Raises:
        TraceFormatError: on any structural mismatch.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with path.open("rb") as handle:
            preamble = handle.read(_PREAMBLE.size)
            if len(preamble) != _PREAMBLE.size:
                raise TraceFormatError(f"{path}: truncated preamble")
            magic, version, header_len = _PREAMBLE.unpack(preamble)
            if magic != MAGIC:
                raise TraceFormatError(f"{path}: not a trace file")
            if version != CODEC_VERSION:
                raise TraceFormatError(
                    f"{path}: codec version {version} (expected {CODEC_VERSION})"
                )
            header_blob = handle.read(header_len)
            if len(header_blob) != header_len:
                raise TraceFormatError(f"{path}: truncated header")
            try:
                header = json.loads(header_blob)
            except ValueError as error:
                raise TraceFormatError(f"{path}: bad header JSON") from error
            payload = size - _PREAMBLE.size - header_len - FOOTER_SIZE
            if payload < 0 or payload % RECORD_SIZE:
                raise TraceFormatError(f"{path}: truncated record payload")
            handle.seek(size - FOOTER_SIZE)
            footer_magic, count, _crc = _FOOTER.unpack(handle.read(FOOTER_SIZE))
            if footer_magic != FOOTER_MAGIC:
                raise TraceFormatError(f"{path}: missing footer (truncated?)")
            if count * RECORD_SIZE != payload:
                raise TraceFormatError(
                    f"{path}: footer claims {count} records, "
                    f"payload holds {payload // RECORD_SIZE}"
                )
    except OSError as error:
        raise TraceFormatError(f"{path}: unreadable ({error})") from error
    return header


def read_accesses(path: Union[str, Path]) -> Iterator[MemoryAccess]:
    """Replay ``path``'s records as :class:`MemoryAccess` objects.

    Streams the payload in chunks (O(1) memory in trace length) and
    verifies the footer CRC as it goes; a corrupted payload raises
    :class:`TraceFormatError` at the end of the walk, before a consumer
    can treat the replay as complete.

    Raises:
        TraceFormatError: on structural damage or a CRC mismatch.
    """
    path = Path(path)
    read_header(path)  # structural validation (raises on damage)
    size = path.stat().st_size
    with path.open("rb") as handle:
        preamble = handle.read(_PREAMBLE.size)
        _, _, header_len = _PREAMBLE.unpack(preamble)
        handle.seek(_PREAMBLE.size + header_len)
        remaining = size - _PREAMBLE.size - header_len - FOOTER_SIZE
        handle.seek(size - FOOTER_SIZE)
        _, count, expected_crc = _FOOTER.unpack(handle.read(FOOTER_SIZE))
        handle.seek(_PREAMBLE.size + header_len)
        crc = 0
        index = 0
        iter_unpack = RECORD.iter_unpack
        chunk_bytes = _CHUNK_RECORDS * RECORD_SIZE
        while remaining:
            want = min(chunk_bytes, remaining)
            chunk = handle.read(want)
            while 0 < len(chunk) < want:  # top up a short read
                more = handle.read(want - len(chunk))
                if not more:
                    break
                chunk += more
            if len(chunk) != want:
                raise TraceFormatError(f"{path}: payload ended early")
            remaining -= len(chunk)
            crc = zlib.crc32(chunk, crc)
            for record in iter_unpack(chunk):
                pc, address, depends, instr_gap, is_write = record
                yield MemoryAccess(
                    index=index,
                    pc=pc,
                    address=address,
                    is_write=bool(is_write),
                    depends_on=None if depends < 0 else depends,
                    instr_gap=instr_gap,
                )
                index += 1
        if index != count:
            raise TraceFormatError(
                f"{path}: replayed {index} records, footer claims {count}"
            )
        if crc != expected_crc:
            raise TraceFormatError(f"{path}: payload CRC mismatch")
