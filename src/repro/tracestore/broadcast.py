"""Shared-memory broadcast: one trace walk feeds every worker.

With ``--jobs N``, workers replay the trace store independently — N
jobs over one trace key cost N replay walks (file IO, layout and index
validation, CRC sweep, chunk decode) even though every walk reads the
same bytes. This module turns the walk into a **broadcast**: a reader
process walks the key once and tees each raw chunk payload to every
consumer over a ``multiprocessing.shared_memory`` ring buffer. The
chunked codec (:mod:`repro.tracestore.codec`) is already the wire
format — per-chunk byte spans and CRCs frame exactly what a slot
carries — and consumers decode with the same
:func:`repro.kernels.decode.decode_chunk` a file replay uses, so the
access sequence is bit-identical by construction.

The ring is slot-per-chunk and **semaphore-paced per consumer**: the
producer acquires one ``free`` token from *every* consumer before
overwriting a slot and releases one ``avail`` token to each after
writing it, so the slowest consumer exerts backpressure and a slot is
never overwritten while anyone still needs it. Each consumer re-verifies
the chunk CRC against the slot header before decoding — shared memory is
trusted no more than the disk is.

Failure is survivable in both directions. A dead consumer is detached
(the producer stops pacing on it); a dead or erring reader aborts the
ring and every consumer **degrades to an independent replay** from its
cursor position — same records, same results, one fallback counter. The
engine (:mod:`repro.engine.engine`) orchestrates readers and consumers
per trace key and folds the accounting into ``EngineStats``.
"""

from __future__ import annotations

import os
import struct
import zlib
from time import perf_counter
from typing import Callable, Iterator, List, Optional

from repro.kernels.decode import RECORD_SIZE, decode_chunk
from repro.telemetry import process_registry, telemetry_enabled
from repro.kernels.prepass import AccessChunk, chunk_accesses
from repro.tracestore.codec import (
    CHUNK_RECORDS,
    FOOTER_SIZE,
    read_access_chunks,
    read_entry_info,
)

#: environment override for the engine's broadcast mode
ENV_VAR = "REPRO_BROADCAST"

MODE_AUTO = "auto"
MODE_ON = "on"
MODE_OFF = "off"
MODES = (MODE_AUTO, MODE_ON, MODE_OFF)

#: slots per ring: enough to keep the reader ahead of decode jitter
#: without ballooning the segment (8 slots ≈ 0.9 MiB of payload)
RING_SLOTS = 8

#: per-slot payload capacity: one full stored chunk
SLOT_PAYLOAD = CHUNK_RECORDS * RECORD_SIZE

#: slot kinds (the ``kind`` field of the slot header)
KIND_DATA = 0
KIND_DONE = 1
KIND_ABORT = 2

#: first_record u64, payload bytes u32, crc32 u32, kind u32
SLOT_HEADER = struct.Struct("<QIII")
SLOT_SIZE = SLOT_HEADER.size + SLOT_PAYLOAD

#: producer/consumer poll granularity while blocked on a semaphore —
#: bounds how long a peer death goes unnoticed
_POLL_SECONDS = 0.2


def resolve_broadcast(mode: Optional[str] = None) -> str:
    """Resolve an optional broadcast request to a concrete mode.

    Precedence mirrors the kernel selector: explicit argument, then the
    ``REPRO_BROADCAST`` environment variable, then ``auto``.

    Raises:
        ValueError: on an unknown mode (argument or environment).
    """
    if mode is None:
        mode = os.environ.get(ENV_VAR, "").strip() or None
    if mode is None:
        return MODE_AUTO
    mode = mode.lower()
    if mode not in MODES:
        raise ValueError(
            f"unknown broadcast mode {mode!r}; choose from {'/'.join(MODES)}"
        )
    return mode


def broadcast_supported() -> bool:
    """True when the platform can back a ring with shared memory."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - always present on CPython 3.8+
        return False
    return True


def _attach(name: str):
    """Attach an existing segment without adopting unlink responsibility.

    The parent creates and unlinks every segment; a child attaching via
    name must not let its ``resource_tracker`` also claim it (CPython
    < 3.13 registers on attach, producing double-unlink warnings at
    child exit). Registration is *suppressed* during the attach rather
    than undone after it: under the fork start method children share
    the parent's tracker daemon, so an unregister from a child would
    strip the parent's own registration and the parent's later unlink
    would log a spurious ``KeyError`` in the tracker.
    """
    from multiprocessing import shared_memory

    original = None
    try:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = (
            lambda target, rtype: None if rtype == "shared_memory"
            else original(target, rtype)
        )
    except Exception:  # pragma: no cover - tracker layout varies
        original = None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        if original is not None:
            from multiprocessing import resource_tracker

            resource_tracker.register = original


class ChunkRing:
    """One single-producer, N-consumer broadcast ring (parent-side owner).

    Creates the shared segment and the per-consumer semaphore pairs;
    hands out picklable :class:`RingProducer` / :class:`RingConsumer`
    endpoints to pass into child processes. The parent must call
    :meth:`close` (idempotent) when the wave is over — it is the only
    party that unlinks the segment.
    """

    def __init__(self, consumers: int, slots: int = RING_SLOTS,
                 slot_payload: int = SLOT_PAYLOAD) -> None:
        if consumers < 1:
            raise ValueError(f"need at least one consumer, got {consumers}")
        if slots < 2:
            raise ValueError(f"need at least two slots, got {slots}")
        import multiprocessing
        from multiprocessing import shared_memory

        self.consumers = consumers
        self.slots = slots
        self.slot_payload = slot_payload
        self.slot_size = SLOT_HEADER.size + slot_payload
        self._segment = shared_memory.SharedMemory(
            create=True, size=self.slots * self.slot_size
        )
        self.name = self._segment.name
        self.abort_event = multiprocessing.Event()
        self.detach_events = [multiprocessing.Event()
                              for _ in range(consumers)]
        self.free = [multiprocessing.Semaphore(slots)
                     for _ in range(consumers)]
        self.avail = [multiprocessing.Semaphore(0) for _ in range(consumers)]
        self._closed = False

    def producer(self) -> "RingProducer":
        return RingProducer(
            self.name, self.slots, self.slot_payload,
            self.abort_event, self.detach_events, self.free, self.avail,
        )

    def consumer(self, index: int) -> "RingConsumer":
        return RingConsumer(
            self.name, self.slots, self.slot_payload, index,
            self.abort_event, self.free[index], self.avail[index],
        )

    def abort(self) -> None:
        """Mark the stream dead (reader crashed): consumers degrade."""
        self.abort_event.set()

    def detach(self, index: int) -> None:
        """Stop pacing on a dead consumer so the producer never blocks
        on tokens it will never get back."""
        self.detach_events[index].set()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - double close race
            pass


class RingProducer:
    """Reader-side endpoint: write chunks, then a DONE/ABORT sentinel.

    Picklable (attaches to the segment lazily on first send), so it can
    cross a ``multiprocessing.Process`` boundary under any start method.
    """

    def __init__(self, name, slots, slot_payload, abort_event,
                 detach_events, free, avail) -> None:
        self._name = name
        self._slots = slots
        self._slot_payload = slot_payload
        self._slot_size = SLOT_HEADER.size + slot_payload
        self._abort = abort_event
        self._detached = detach_events
        self._free = free
        self._avail = avail
        self._segment = None
        self._seq = 0
        self.chunks_sent = 0
        self.bytes_sent = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_segment"] = None
        return state

    def _buffer(self):
        if self._segment is None:
            self._segment = _attach(self._name)
        return self._segment.buf

    def _active(self) -> List[int]:
        return [c for c in range(len(self._free))
                if not self._detached[c].is_set()]

    def _reserve(self) -> List[int]:
        """Acquire one free token from every live consumer (blocking,
        poll-checking detach/abort). Returns the consumers reserved."""
        reserved = []
        for index in range(len(self._free)):
            if self._detached[index].is_set():
                continue
            while True:
                if self._free[index].acquire(timeout=_POLL_SECONDS):
                    reserved.append(index)
                    break
                if self._detached[index].is_set() or self._abort.is_set():
                    break
        return reserved

    def _write_slot(self, first_record: int, payload: bytes, crc: int,
                    kind: int) -> bool:
        if len(payload) > self._slot_payload:
            raise ValueError(
                f"chunk of {len(payload)} bytes exceeds the "
                f"{self._slot_payload}-byte slot"
            )
        reserved = self._reserve()
        if not reserved and kind == KIND_DATA:
            return False  # everyone is gone: stop walking
        base = (self._seq % self._slots) * self._slot_size
        buffer = self._buffer()
        SLOT_HEADER.pack_into(
            buffer, base, first_record, len(payload), crc, kind
        )
        if payload:
            buffer[base + SLOT_HEADER.size:
                   base + SLOT_HEADER.size + len(payload)] = payload
        self._seq += 1
        for index in reserved:
            self._avail[index].release()
        return True

    def send(self, first_record: int, payload: bytes, crc: int) -> bool:
        """Broadcast one chunk. Returns False when no consumer remains
        (the reader should stop walking)."""
        if not self._write_slot(first_record, payload, crc, KIND_DATA):
            return False
        self.chunks_sent += 1
        self.bytes_sent += len(payload)
        return True

    def finish(self, record_count: int) -> None:
        """End-of-stream sentinel carrying the total record count."""
        self._write_slot(record_count, b"", 0, KIND_DONE)

    def fail(self) -> None:
        """Handled-error sentinel: consumers switch to fallback replay."""
        self._abort.set()
        self._write_slot(0, b"", 0, KIND_ABORT)

    def close(self) -> None:
        if self._segment is not None:
            self._segment.close()
            self._segment = None


class RingConsumer:
    """Consumer-side endpoint: blocking ``next_item`` over the ring."""

    def __init__(self, name, slots, slot_payload, index, abort_event,
                 free, avail) -> None:
        self._name = name
        self._slots = slots
        self._slot_size = SLOT_HEADER.size + slot_payload
        self.index = index
        self._abort = abort_event
        self._free = free
        self._avail = avail
        self._segment = None
        self._seq = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_segment"] = None
        return state

    def _buffer(self):
        if self._segment is None:
            self._segment = _attach(self._name)
        return self._segment.buf

    def next_item(self) -> "tuple[int, int, bytes, int]":
        """The next slot as ``(kind, first_record, payload, crc)``.

        Blocks until the producer publishes the consumer's next slot;
        returns a synthetic ABORT item when the abort event fires while
        waiting (reader death) — the caller degrades to replay.
        """
        while not self._avail.acquire(timeout=_POLL_SECONDS):
            if self._abort.is_set():
                return KIND_ABORT, 0, b"", 0
        base = (self._seq % self._slots) * self._slot_size
        buffer = self._buffer()
        first_record, n_bytes, crc, kind = SLOT_HEADER.unpack_from(
            buffer, base
        )
        payload = bytes(
            buffer[base + SLOT_HEADER.size: base + SLOT_HEADER.size + n_bytes]
        )
        self._seq += 1
        self._free.release()
        return kind, first_record, payload, crc

    def close(self) -> None:
        if self._segment is not None:
            self._segment.close()
            self._segment = None


class ChunkCursor:
    """A consumer's windowed view of one broadcast stream.

    Iterates :class:`AccessChunk` runs decoded straight from the shared
    buffer (CRC re-verified per slot, no file IO, no index decode). On
    an abort sentinel, a CRC mismatch, or a dead reader, the cursor
    **degrades seamlessly**: ``fallback(next_record)`` supplies the rest
    of the stream as an independent replay from exactly the first
    record this consumer has not yet seen — the simulation state never
    notices, so results stay bit-identical.

    Exposes both walk shapes the fan-out pump uses (``iter_chunks`` for
    the vector kernel, plain iteration for the python kernel).
    """

    def __init__(
        self,
        ring: RingConsumer,
        fallback: Callable[[int], Iterator[AccessChunk]],
    ) -> None:
        self._ring = ring
        self._fallback = fallback
        self.next_record = 0
        self.chunks_shared = 0
        self.bytes_shared = 0
        self.degraded = False
        self.complete = False

    def iter_chunks(self) -> Iterator[AccessChunk]:
        # with telemetry on, account time spent blocked on the ring
        # (producer-bound waits) separately from decode/walk time — the
        # counter rides home in the consumer's telemetry envelope
        registry = process_registry() if telemetry_enabled() else None
        while True:
            if registry is None:
                kind, first_record, payload, crc = self._ring.next_item()
            else:
                waited = perf_counter()
                kind, first_record, payload, crc = self._ring.next_item()
                registry.inc(
                    "broadcast.ring_wait_seconds", perf_counter() - waited
                )
            if kind == KIND_DONE:
                if first_record != self.next_record:
                    break  # short stream (torn writer): top up from file
                self.complete = True
                return
            if kind == KIND_ABORT:
                break
            if first_record != self.next_record or zlib.crc32(payload) != crc:
                break  # torn/corrupt slot: distrust the stream entirely
            chunk = decode_chunk(first_record, payload)
            self.next_record = first_record + len(chunk)
            self.chunks_shared += 1
            self.bytes_shared += len(payload)
            yield chunk
        self.degraded = True
        for chunk in self._fallback(self.next_record):
            self.next_record = chunk.start_index + len(chunk)
            yield chunk
        self.complete = True

    def __iter__(self):
        for chunk in self.iter_chunks():
            yield from chunk.accesses

    def accounting(self) -> "dict[str, int]":
        return {
            "broadcast_chunks": self.chunks_shared,
            "bytes_shared": self.bytes_shared,
            "broadcast_fallbacks": 1 if self.degraded else 0,
        }


def replay_fallback(
    store_dir: str, key: "tuple[str, int, int]"
) -> Callable[[int], Iterator[AccessChunk]]:
    """The cursor's independent-replay escape hatch for one trace key.

    Replays the stored entry from ``next_record`` when a valid entry
    exists; when the reader died before publishing one (cold-key
    broadcast), regenerates the workload and skips the records already
    consumed — both paths are deterministic, so the tail is exactly the
    stream the reader would have delivered.
    """
    from repro.tracestore.store import TraceStore
    from repro.workloads.registry import stream_workload

    def fallback(next_record: int) -> Iterator[AccessChunk]:
        store = TraceStore(store_dir)
        if store.has(key):
            path = store.path_for(key)
            count = 0
            for chunk in read_access_chunks(path, next_record):
                count += len(chunk)
                yield chunk
            store.stats.hits += 1
            store.stats.bytes_replayed += count * RECORD_SIZE + FOOTER_SIZE
        else:
            store.stats.misses += 1
            store.stats.generated += 1
            source = stream_workload(*key)
            tail = (a for a in source if a.index >= next_record)
            yield from chunk_accesses(tail)
        fallback.stats = store.stats.as_dict()

    fallback.stats = {}
    return fallback


def run_reader(producer: RingProducer, store_dir: str,
               key: "tuple[str, int, int]", status_queue) -> None:
    """Reader-process entry: walk ``key`` once, broadcasting every chunk.

    Warm key: stream the stored chunks (each verified against its
    indexed CRC *before* it is broadcast, so a corrupt chunk aborts the
    stream rather than reaching a consumer). Cold key: record the trace
    during the walk, teeing each flushed chunk into the ring — a cold
    N-job sweep still costs exactly one generation pass.

    Reports ``("ok"|"error", detail, store_stats)`` on ``status_queue``;
    any failure aborts the ring so consumers degrade to replay.
    """
    from repro.tracestore.store import TraceStore

    store = TraceStore(store_dir)
    try:
        if store.has(key):
            _stream_stored(producer, store, key)
        else:
            _stream_recording(producer, store, key)
    except BaseException as error:  # noqa: BLE001 - report-and-abort
        producer.fail()
        status_queue.put(("error", f"{type(error).__name__}: {error}",
                          store.stats.as_dict()))
        return
    finally:
        producer.close()
    status_queue.put(("ok", None, store.stats.as_dict()))


def _stream_stored(producer: RingProducer, store, key) -> None:
    from repro.engine.faultinject import maybe_kill_reader

    path = store.path_for(key)
    info = read_entry_info(path)
    store.stats.hits += 1
    with path.open("rb") as handle:
        for position, entry in enumerate(info.chunks):
            handle.seek(info.payload_start + entry.byte_offset)
            want = info.chunk_bytes(position)
            payload = handle.read(want)
            if len(payload) != want or zlib.crc32(payload) != entry.crc:
                from repro.tracestore.codec import TraceFormatError

                raise TraceFormatError(
                    f"{path}: chunk CRC mismatch at record "
                    f"{entry.record_index}"
                )
            if not producer.send(entry.record_index, payload, entry.crc):
                return  # every consumer is gone
            maybe_kill_reader()
    store.stats.bytes_replayed += info.payload_bytes + FOOTER_SIZE
    producer.finish(info.record_count)


def _stream_recording(producer: RingProducer, store, key) -> None:
    from repro.engine.faultinject import maybe_kill_reader

    count = 0

    def on_chunk(first_record: int, payload: bytes, crc: int) -> None:
        nonlocal count
        producer.send(first_record, payload, crc)
        count = first_record + len(payload) // RECORD_SIZE
        maybe_kill_reader()

    store.record(key, on_chunk=on_chunk)
    producer.finish(count)
