"""The trace plane: record-once/replay-many binary trace store.

Trace generation is the dominant cost of a configuration sweep — every
streaming job used to regenerate its workload trace from scratch. This
package makes generation a shared, cacheable resource instead:

* :mod:`repro.tracestore.codec` — the compact binary record format
  (header / fixed-size records / CRC footer) with truncation and
  corruption rejection;
* :mod:`repro.tracestore.store` — the sharded on-disk
  :class:`TraceStore` keyed by the ``(workload, length, seed)`` trace
  key, with atomic publication, replay as a lazy
  :class:`~repro.trace.container.TraceSource`, and record-during-walk
  so the first generation pass is never wasted.

* :mod:`repro.tracestore.broadcast` — the shared-memory broadcast
  plane: one reader process walks a key once and tees every chunk to
  all ``--jobs`` consumers over a slot-paced ring, so a multi-worker
  sweep over one key costs exactly one walk.

The engine (:mod:`repro.engine`) builds on this: serial runs fan one
trace walk out to every job sharing a trace key, and ``--jobs N``
workers broadcast from (or replay) the store instead of regenerating
per job.
"""

from repro.tracestore.broadcast import broadcast_supported, resolve_broadcast
from repro.tracestore.codec import (
    CODEC_VERSION,
    RECORD_SIZE,
    TraceEntryInfo,
    TraceFormatError,
    read_accesses,
    read_entry_info,
    read_header,
    write_trace,
)
from repro.tracestore.store import (
    TraceKey,
    TraceStore,
    TraceStoreStats,
    default_trace_store_dir,
    trace_key_hash,
)

__all__ = [
    "CODEC_VERSION",
    "RECORD_SIZE",
    "TraceEntryInfo",
    "TraceFormatError",
    "TraceKey",
    "TraceStore",
    "TraceStoreStats",
    "broadcast_supported",
    "default_trace_store_dir",
    "read_accesses",
    "read_entry_info",
    "read_header",
    "resolve_broadcast",
    "trace_key_hash",
    "write_trace",
]
