"""The trace plane: record-once/replay-many binary trace store.

Trace generation is the dominant cost of a configuration sweep — every
streaming job used to regenerate its workload trace from scratch. This
package makes generation a shared, cacheable resource instead:

* :mod:`repro.tracestore.codec` — the compact binary record format
  (header / fixed-size records / CRC footer) with truncation and
  corruption rejection;
* :mod:`repro.tracestore.store` — the sharded on-disk
  :class:`TraceStore` keyed by the ``(workload, length, seed)`` trace
  key, with atomic publication, replay as a lazy
  :class:`~repro.trace.container.TraceSource`, and record-during-walk
  so the first generation pass is never wasted.

The engine (:mod:`repro.engine`) builds on this: serial runs fan one
trace walk out to every job sharing a trace key, and ``--jobs N``
workers replay from the store instead of regenerating per job.
"""

from repro.tracestore.codec import (
    CODEC_VERSION,
    RECORD_SIZE,
    TraceFormatError,
    read_accesses,
    read_header,
    write_trace,
)
from repro.tracestore.store import (
    TraceKey,
    TraceStore,
    TraceStoreStats,
    default_trace_store_dir,
    trace_key_hash,
)

__all__ = [
    "CODEC_VERSION",
    "RECORD_SIZE",
    "TraceFormatError",
    "TraceKey",
    "TraceStore",
    "TraceStoreStats",
    "default_trace_store_dir",
    "read_accesses",
    "read_header",
    "trace_key_hash",
    "write_trace",
]
