"""Trace analyses backing Figures 6-8: joint predictability classification,
Sequitur-based temporal repetition, and intra-generation correlation
distance."""

from repro.analysis.sequitur import Sequitur, SequiturGrammar
from repro.analysis.repetition import (
    RepetitionBreakdown,
    classify_repetition,
    repetition_analysis,
)
from repro.analysis.correlation import correlation_distance_analysis
from repro.analysis.joint import joint_coverage_analysis
from repro.analysis.streams import stream_length_analysis

__all__ = [
    "Sequitur",
    "SequiturGrammar",
    "RepetitionBreakdown",
    "classify_repetition",
    "repetition_analysis",
    "correlation_distance_analysis",
    "joint_coverage_analysis",
    "stream_length_analysis",
]
