"""Trace analyses backing Figures 6-8 and the §2.1 stream-length study.

Every analysis is exposed two ways:

* an **incremental consumer** class (:class:`StreamingAnalysis`
  subclass) with the ``update(access)`` / ``finalize()`` lifecycle, for
  single-pass O(1)-memory runs over streaming traces;
* a **convenience function** taking a whole trace (materialized or
  streaming), kept for interactive use and the original call sites.
"""

from repro.analysis.base import StreamingAnalysis
from repro.analysis.sequitur import Sequitur, SequiturGrammar
from repro.analysis.repetition import (
    MissSequenceExtractor,
    RepetitionAnalysis,
    RepetitionBreakdown,
    classify_repetition,
    miss_and_trigger_sequences,
    repetition_analysis,
)
from repro.analysis.correlation import (
    CorrelationDistanceAnalysis,
    correlation_distance_analysis,
)
from repro.analysis.joint import (
    JointPredictabilityAnalysis,
    joint_coverage_analysis,
)
from repro.analysis.streams import (
    DEFAULT_HISTORY_LIMIT,
    GreedyStreamMatcher,
    StreamLengthAnalysis,
    stream_length_analysis,
)

__all__ = [
    "StreamingAnalysis",
    "Sequitur",
    "SequiturGrammar",
    "MissSequenceExtractor",
    "RepetitionAnalysis",
    "RepetitionBreakdown",
    "classify_repetition",
    "miss_and_trigger_sequences",
    "repetition_analysis",
    "CorrelationDistanceAnalysis",
    "correlation_distance_analysis",
    "JointPredictabilityAnalysis",
    "joint_coverage_analysis",
    "DEFAULT_HISTORY_LIMIT",
    "GreedyStreamMatcher",
    "StreamLengthAnalysis",
    "stream_length_analysis",
]
