"""Correlation distance within spatial generations (Fig. 8, §5.4).

For every completed generation whose spatial index has a prior recorded
occurrence, each *consecutive pair* of accesses in the new sequence is
scored by the distance between those same two offsets in the prior
sequence: +1 is perfect repetition, other values are reorderings, and
pairs whose offsets are absent from the prior sequence are unmatched.

The paper reports the cumulative distribution over distances -6..+6
(96% of spatial accesses fall in that range).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.memsys.hierarchy import Hierarchy, ServiceLevel
from repro.prefetch.sms.generations import (
    ActiveGenerationTable,
    GenerationRecord,
    SpatialIndex,
)
from repro.trace.container import Trace


@dataclass
class CorrelationDistanceResult:
    """Histogram of correlation distances for one workload."""

    workload: str
    histogram: Counter = field(default_factory=Counter)
    unmatched: int = 0

    @property
    def matched_pairs(self) -> int:
        """Pairs whose two offsets both exist in the prior sequence —
        the population Fig. 8's CDF is normalized over."""
        return sum(self.histogram.values())

    @property
    def total_pairs(self) -> int:
        return self.matched_pairs + self.unmatched

    @property
    def matched_fraction(self) -> float:
        total = self.total_pairs
        return self.matched_pairs / total if total else 0.0

    def fraction_at(self, distance: int) -> float:
        matched = self.matched_pairs
        return self.histogram[distance] / matched if matched else 0.0

    def cumulative_within(self, window: int) -> float:
        """Fraction of matched pairs with |distance| <= window (distance 0
        cannot occur; +1 is perfect repetition)."""
        matched = self.matched_pairs
        if matched == 0:
            return 0.0
        hits = sum(
            count
            for distance, count in self.histogram.items()
            if -window <= distance <= window
        )
        return hits / matched

    def cdf_rows(self, span: int = 6) -> List[Tuple[int, float]]:
        """(distance, cumulative fraction) rows as plotted in Fig. 8."""
        matched = self.matched_pairs
        rows: List[Tuple[int, float]] = []
        running = 0
        for distance in range(-span, span + 1):
            if distance == 0:
                continue
            running += self.histogram[distance]
            rows.append((distance, running / matched if matched else 0.0))
        return rows


def correlation_distance_analysis(
    trace: Trace, system: SystemConfig
) -> CorrelationDistanceResult:
    """Compute the Fig. 8 correlation-distance histogram for ``trace``."""
    amap = system.address_map
    hierarchy = Hierarchy(system)
    result = CorrelationDistanceResult(workload=trace.name)
    #: last completed sequence per spatial index
    prior: Dict[SpatialIndex, List[int]] = {}

    def on_end(record: GenerationRecord) -> None:
        sequence = [record.trigger_offset] + [e.offset for e in record.elements]
        previous = prior.get(record.index)
        prior[record.index] = sequence
        if previous is None or len(sequence) < 2:
            return
        positions = {offset: i for i, offset in enumerate(previous)}
        for a, b in zip(sequence, sequence[1:]):
            pa, pb = positions.get(a), positions.get(b)
            if pa is None or pb is None:
                result.unmatched += 1
                continue
            result.histogram[pb - pa] += 1

    agt = ActiveGenerationTable(64, amap, on_generation_end=on_end)
    for access in trace:
        block = amap.block_of(access.address)
        outcome = hierarchy.access(block)
        offchip = outcome.level is ServiceLevel.MEMORY
        agt.observe(access.pc, block, offchip=offchip)
        for evicted in outcome.l1_evictions:
            agt.on_l1_eviction(evicted)
    agt.flush()
    return result
