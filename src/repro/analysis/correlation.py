"""Correlation distance within spatial generations (Fig. 8, §5.4).

For every completed generation whose spatial index has a prior recorded
occurrence, each *consecutive pair* of accesses in the new sequence is
scored by the distance between those same two offsets in the prior
sequence: +1 is perfect repetition, other values are reorderings, and
pairs whose offsets are absent from the prior sequence are unmatched.

The paper reports the cumulative distribution over distances -6..+6
(96% of spatial accesses fall in that range).

The analysis is a single-pass incremental consumer
(:class:`CorrelationDistanceAnalysis`): generations are scored as the
active-generation table completes them, and only the most recent
completed sequence per spatial index is retained — peak memory tracks
the workload's (PC, offset) index footprint, not trace length.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.base import HierarchyReplayAnalysis
from repro.common.config import SystemConfig
from repro.prefetch.sms.generations import GenerationRecord, SpatialIndex
from repro.trace.container import TraceLike
from repro.trace.events import MemoryAccess


@dataclass
class CorrelationDistanceResult:
    """Histogram of correlation distances for one workload."""

    workload: str
    histogram: Counter = field(default_factory=Counter)
    unmatched: int = 0

    @property
    def matched_pairs(self) -> int:
        """Pairs whose two offsets both exist in the prior sequence —
        the population Fig. 8's CDF is normalized over."""
        return sum(self.histogram.values())

    @property
    def total_pairs(self) -> int:
        return self.matched_pairs + self.unmatched

    @property
    def matched_fraction(self) -> float:
        total = self.total_pairs
        return self.matched_pairs / total if total else 0.0

    def fraction_at(self, distance: int) -> float:
        matched = self.matched_pairs
        return self.histogram[distance] / matched if matched else 0.0

    def cumulative_within(self, window: int) -> float:
        """Fraction of matched pairs with |distance| <= window (distance 0
        cannot occur; +1 is perfect repetition)."""
        matched = self.matched_pairs
        if matched == 0:
            return 0.0
        hits = sum(
            count
            for distance, count in self.histogram.items()
            if -window <= distance <= window
        )
        return hits / matched

    def cdf_rows(self, span: int = 6) -> List[Tuple[int, float]]:
        """(distance, cumulative fraction) rows as plotted in Fig. 8."""
        matched = self.matched_pairs
        rows: List[Tuple[int, float]] = []
        running = 0
        for distance in range(-span, span + 1):
            if distance == 0:
                continue
            running += self.histogram[distance]
            rows.append((distance, running / matched if matched else 0.0))
        return rows


class CorrelationDistanceAnalysis(HierarchyReplayAnalysis):
    """Incremental Fig. 8 scorer over one access stream.

    Args:
        system: cache geometry feeding the generation tracker.
        workload: name stamped on the result.
    """

    def __init__(self, system: SystemConfig, workload: str = "") -> None:
        super().__init__(
            system, on_generation_end=self._on_generation_end
        )
        self._result = CorrelationDistanceResult(workload=workload)
        #: last completed sequence per spatial index
        self._prior: Dict[SpatialIndex, List[int]] = {}

    def _on_generation_end(self, record: GenerationRecord) -> None:
        sequence = [record.trigger_offset] + [e.offset for e in record.elements]
        previous = self._prior.get(record.index)
        self._prior[record.index] = sequence
        if previous is None or len(sequence) < 2:
            return
        result = self._result
        positions = {offset: i for i, offset in enumerate(previous)}
        for a, b in zip(sequence, sequence[1:]):
            pa, pb = positions.get(a), positions.get(b)
            if pa is None or pb is None:
                result.unmatched += 1
                continue
            result.histogram[pb - pa] += 1

    def _observe(self, access: MemoryAccess, block: int, offchip: bool,
                 generation) -> None:
        pass  # all accounting happens at generation end

    def _finalize(self) -> CorrelationDistanceResult:
        self._agt.flush()
        return self._result


def correlation_distance_analysis(
    trace: TraceLike, system: SystemConfig
) -> CorrelationDistanceResult:
    """Compute the Fig. 8 correlation-distance histogram for ``trace``.

    Materialized-convenience wrapper around
    :class:`CorrelationDistanceAnalysis`.
    """
    return CorrelationDistanceAnalysis(
        system, workload=trace.name
    ).consume(trace)
